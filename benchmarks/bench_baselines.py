"""Prior-work baselines: average-only estimators and Kumar's
statement-granularity analysis (paper section 3.1)."""

from conftest import run_once

from repro.harness.experiments import ablation_baselines


def test_baselines(benchmark, store, cap, save_output):
    output = run_once(benchmark, ablation_baselines, store, cap)
    save_output("abl-baselines", output)
    for row in output.tables[0].rows:
        name, paragraph_ap, average_ap, cp_match, stmt_ap, stmt_size = row[:6]
        # the average-only reimplementation agrees exactly with Paragraph
        assert cp_match is True, name
        assert abs(paragraph_ap - average_ap) < 1e-9, name
        # statements bundle several machine instructions (Kumar's units)
        assert stmt_size > 1.5, name
        assert stmt_ap > 0.0
