"""Paper-scale streaming smoke: analyze a multi-million-record trace
under a hard memory ceiling.

The paper analyzed 100M-instruction traces on a 16MB DECstation; the
streaming layer exists so this reproduction can do the paper-scale runs
without holding a decoded trace in memory. This script proves it:

1. the parent lazily writes a synthetic ~10M-record PGT2 trace to disk
   (records are generated on the fly — the parent never holds the trace
   either),
2. a child process pins its address space with ``RLIMIT_AS`` far below
   the decoded size of the trace and streams the analysis
   (:func:`repro.core.stream.stream_analyze_file`),
3. the child's ``repro.obs`` registry snapshot, throughput, and peak RSS
   are written to a metrics JSONL artifact, and the parent fails loudly
   if the child died (a whole-trace materialization under the ceiling
   dies on ``MemoryError``).

Usage::

    PYTHONPATH=src python benchmarks/scale_smoke.py \
        [--records 10000000] [--limit-mb 512] [--chunk-records 262144] \
        [--metrics scale-metrics.jsonl]
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.isa.opclasses import OpClass  # noqa: E402
from repro.trace.io import write_trace  # noqa: E402
from repro.trace.segments import DEFAULT_SEGMENTS  # noqa: E402
from repro.trace.synthetic import random_trace  # noqa: E402

#: One conservative-syscall firewall per this many records (~200 over 10M),
#: matching the density real workloads showed in the shard experiments.
SYSCALL_EVERY = 50_000

#: The deterministic dependency pattern cycled to trace length. Prime, so
#: the cycle never phase-locks with chunk or shard boundaries.
PATTERN_RECORDS = 4099


def generate_records(count):
    """Yield ``count`` records without materializing the trace: a fixed
    random dependency pattern cycled end to end, with a syscall record
    spliced in every :data:`SYSCALL_EVERY` instructions."""
    pattern = list(random_trace(3, PATTERN_RECORDS, syscall_fraction=0.0))
    syscall = (int(OpClass.SYSCALL), (), (), 0, -1)
    cycle = itertools.cycle(pattern)
    for index in range(count):
        if index and index % SYSCALL_EVERY == 0:
            yield syscall
        else:
            yield next(cycle)


def write_synthetic_trace(path, count):
    with open(path, "wb") as stream:
        return write_trace(stream, generate_records(count), DEFAULT_SEGMENTS, count)


def run_child(args):
    """Analyze the trace under RLIMIT_AS; exits non-zero on any failure."""
    limit = args.limit_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

    from repro.core.config import AnalysisConfig
    from repro.core.stream import stream_analyze_file
    from repro.obs import metrics as obs

    obs.enable()
    started = time.time()
    result = stream_analyze_file(
        args.child, AnalysisConfig(), chunk_records=args.chunk_records
    )
    elapsed = time.time() - started
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    summary = {
        "records": result.records_processed,
        "seconds": round(elapsed, 3),
        "records_per_second": round(result.records_processed / elapsed),
        "peak_rss_kb": peak_rss_kb,
        "limit_mb": args.limit_mb,
        "chunk_records": args.chunk_records,
        "critical_path_length": result.critical_path_length,
        "parallelism": round(result.available_parallelism, 3),
    }
    if peak_rss_kb > args.limit_mb * 1024:
        raise SystemExit(
            f"peak RSS {peak_rss_kb}kB exceeded the {args.limit_mb}MB ceiling"
        )
    with open(args.metrics, "w") as handle:
        handle.write(json.dumps({"event": "scale_smoke", **summary}) + "\n")
        handle.write(
            json.dumps({"event": "registry", "registry": obs.registry().snapshot()})
            + "\n"
        )
    print(json.dumps(summary))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000_000)
    parser.add_argument("--limit-mb", type=int, default=512)
    parser.add_argument("--chunk-records", type=int, default=262_144)
    parser.add_argument("--metrics", default="scale-metrics.jsonl")
    parser.add_argument("--keep-trace", help="write the trace here and keep it")
    parser.add_argument("--child", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return run_child(args)

    workdir = None
    if args.keep_trace:
        path = args.keep_trace
    else:
        workdir = tempfile.TemporaryDirectory(prefix="paragraph-scale-")
        path = os.path.join(workdir.name, "scale.pgt2")
    try:
        started = time.time()
        write_synthetic_trace(path, args.records)
        wrote = time.time() - started
        size_mb = os.path.getsize(path) / (1024 * 1024)
        print(
            f"wrote {args.records} records ({size_mb:.0f}MB) in {wrote:.1f}s; "
            f"streaming under a {args.limit_mb}MB address-space ceiling"
        )
        child = subprocess.run(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--child",
                path,
                "--limit-mb",
                str(args.limit_mb),
                "--chunk-records",
                str(args.chunk_records),
                "--metrics",
                args.metrics,
            ],
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path[:1])},
        )
        if child.returncode != 0:
            print(
                "::error title=scale smoke::streaming analysis died under the "
                f"{args.limit_mb}MB ceiling (exit {child.returncode})",
                file=sys.stderr,
            )
            return 1
        print(f"metrics written to {args.metrics}")
        return 0
    finally:
        if workdir is not None:
            workdir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
