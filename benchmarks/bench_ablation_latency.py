"""Ablation: operation-latency sensitivity (paper section 3.1 axis)."""

from conftest import run_once

from repro.harness.experiments import ablation_latency


def test_ablation_latency(benchmark, store, cap, save_output):
    output = run_once(benchmark, ablation_latency, store, cap)
    save_output("abl-latency", output)
    for row in output.tables[0].rows:
        name, unit, table1, doubled, slow_memory = row
        assert unit > 0 and table1 > 0 and doubled > 0 and slow_memory > 0
