"""Ablation: branch-prediction firewalls (the paper's section 4 discussion
that real predictors cannot expose hundreds of instructions)."""

from conftest import run_once

from repro.harness.experiments import ablation_branch


def test_ablation_branch(benchmark, store, cap, save_output):
    output = run_once(benchmark, ablation_branch, store, cap)
    save_output("abl-branch", output)
    for row in output.tables[0].rows:
        name = row[0]
        perfect, gshare, bimodal, taken, not_taken = row[1:6]
        mispred_rate = row[6]
        # perfect control flow is an upper bound on every predictor
        for value in (gshare, bimodal, taken, not_taken):
            assert value <= perfect + 1e-9, name
        # trained predictors beat or match the worse static choice
        assert gshare >= min(taken, not_taken) - 1e-9, name
        assert 0.0 <= mispred_rate <= 100.0
