"""Value lifetime / degree-of-sharing distributions (paper section 2.3)."""

from conftest import run_once

from repro.harness.experiments import lifetimes
from repro.workloads.suite import SUITE_NAMES


def test_lifetimes(benchmark, store, cap, save_output):
    output = run_once(benchmark, lifetimes, store, cap)
    save_output("lifetimes", output)
    table = output.tables[0]
    assert [row[0] for row in table.rows] == list(SUITE_NAMES)
    for row in table.rows:
        name, values, mean_life, p50, p90, sharing, dead = row
        assert values > 0
        assert 0 <= p50 <= p90
        assert sharing >= 0.0
        assert 0.0 <= dead <= 100.0
        # most computed values are consumed at least once
        assert dead < 60.0, name
