"""Ablation: forward single-pass vs reverse-annotated two-pass live-well
reclamation (paper section 3.2's two trace-processing methods)."""

from conftest import run_once

from repro.harness.experiments import ablation_twopass


def test_ablation_twopass(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, ablation_twopass, store, cap)
    save_output("abl-twopass", output)
    reductions = []
    for row in output.tables[0].rows:
        name, fwd_peak, tp_peak, reduction, same_cp = row[0], row[1], row[2], row[3], row[4]
        assert same_cp is True, name
        assert tp_peak <= fwd_peak, name
        reductions.append(reduction)
    if check_shapes:
        # eager reclamation must shrink the working set substantially for
        # the array-heavy workloads (naskerx/tomcatvx halve theirs; most
        # entries elsewhere are long-lived globals both methods must keep)
        assert max(reductions) > 1.5
