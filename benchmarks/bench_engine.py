"""Experiment engine scaling: jobs x {cold, warm} result cache.

Times the issue's reference grid (3 workloads x 4 configs) through
:class:`~repro.engine.api.ExperimentEngine` at ``--jobs`` 1, 2, and 4,
each with a cold result cache and again fully warm. The parallel rows
only show a speedup on a multi-core machine — the grid is embarrassingly
parallel across jobs, but each job is a serial trace scan — so no
speedup shape is asserted here. The warm-cache shape *is* asserted:
serving a grid from the content-addressed cache must cost a small
fraction of recomputing it.
"""

import time

import pytest

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.engine import AnalysisJob, ExperimentEngine, execute_jobs
from repro.engine.serialize import result_to_bytes

from conftest import run_once

WORKLOADS = ("xlispx", "cc1x", "eqntottx")
CONFIGS = (
    AnalysisConfig(),
    AnalysisConfig(syscall_policy=OPTIMISTIC),
    AnalysisConfig.no_renaming(),
    AnalysisConfig(window_size=64, collect_lifetimes=True),
)

#: cold/warm seconds per jobs level, printed once at teardown
_timings = {}


def _grid(cap):
    return [
        AnalysisJob(workload, cap, config)
        for workload in WORKLOADS
        for config in CONFIGS
    ]


@pytest.fixture(scope="module")
def serial_reference(store, cap):
    """Byte-canonical serial results every engine run must reproduce."""
    results = ExperimentEngine(store=store, jobs=1).analyze_grid(_grid(cap))
    return [result_to_bytes(result) for result in results]


@pytest.fixture(scope="module", autouse=True)
def report_scaling():
    yield
    if not _timings:
        return
    print()
    print("engine grid scaling (12 jobs):")
    print(f"  {'jobs':>4s} {'cold s':>10s} {'warm s':>10s} {'warm/cold':>10s}")
    for njobs in sorted(_timings):
        cold, warm = _timings[njobs]
        print(f"  {njobs:4d} {cold:10.2f} {warm:10.2f} {warm / cold:10.1%}")


@pytest.mark.parametrize("njobs", [1, 2, 4])
def test_grid_cold_vs_warm(benchmark, njobs, store, cap, check_shapes,
                           serial_reference, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp(f"results-j{njobs}"))
    jobs = _grid(cap)

    def cold_run():
        engine = ExperimentEngine(store=store, jobs=njobs, result_cache=cache_dir)
        return engine.analyze_grid(jobs)

    results = run_once(benchmark, cold_run)
    cold_seconds = benchmark.stats.stats.total
    assert [result_to_bytes(result) for result in results] == serial_reference

    warm_engine = ExperimentEngine(store=store, jobs=njobs, result_cache=cache_dir)
    started = time.perf_counter()
    warm_results = warm_engine.analyze_grid(jobs)
    warm_seconds = time.perf_counter() - started
    assert warm_engine.telemetry.cache_hits == len(jobs)
    assert [result_to_bytes(result) for result in warm_results] == serial_reference

    _timings[njobs] = (cold_seconds, warm_seconds)
    if check_shapes:
        # acceptance shape: a warm grid costs <10% of the cold one
        assert warm_seconds < 0.10 * cold_seconds


def test_resilience_overhead_clean_run(benchmark, store, cap, check_shapes,
                                       serial_reference):
    """The resilience layer (retry rounds, failure classification, shm
    manifest bookkeeping) must be free when nothing fails: a clean serial
    grid through ``ExperimentEngine(retries=2)`` versus the raw executor,
    <2% overhead target. Medians of interleaved runs — single-shot ratios
    on a shared single-core runner swing tens of percent either way."""
    jobs = _grid(cap)

    def raw_run():
        return execute_jobs(jobs, store, njobs=1)

    def resilient_run():
        return ExperimentEngine(store=store, jobs=1, retries=2).analyze_grid(jobs)

    # Warm both paths (store caches, kernel dispatch) and pin correctness.
    assert [result_to_bytes(o.result) for o in raw_run()] == serial_reference
    assert [result_to_bytes(r) for r in resilient_run()] == serial_reference

    raw_times, resilient_times = [], []
    for _ in range(3):
        started = time.perf_counter()
        raw_run()
        raw_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        resilient_run()
        resilient_times.append(time.perf_counter() - started)

    raw_median = sorted(raw_times)[1]
    resilient_median = sorted(resilient_times)[1]
    overhead = resilient_median / raw_median - 1.0
    print()
    print(
        f"resilience overhead on a clean 12-job serial grid: {overhead:+.2%} "
        f"(raw median {raw_median:.2f}s -> resilient median {resilient_median:.2f}s)"
    )

    run_once(benchmark, resilient_run)  # the committed-baseline row
    benchmark.extra_info["overhead_vs_raw"] = overhead
    benchmark.extra_info["raw_median_seconds"] = raw_median

    if check_shapes:
        # target <2%; gated at 5% to absorb residual runner noise
        assert overhead < 0.05
