"""Ablation: compiler optimization as a second-order parallelism effect
(paper section 3.2, caveat 2)."""

from conftest import run_once

from repro.harness.experiments import ablation_compiler


def test_ablation_compiler(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, ablation_compiler, store, cap)
    save_output("abl-compiler", output)
    for row in output.tables[0].rows:
        name, plain_len, opt_len, plain_ap, opt_ap, ratio = row
        assert plain_ap > 0 and opt_ap > 0
        # the optimizer never makes the measured stream longer per workload
        # run; within a fixed cap both streams fill the cap, so compare AP
        assert 0.2 < ratio < 5.0, name
    if check_shapes:
        ratios = [row[5] for row in output.tables[0].rows]
        # the effect exists: at least some workloads move by >2%
        assert any(abs(ratio - 1.0) > 0.02 for ratio in ratios)
