"""Regenerate paper Figure 8: window size vs % of available parallelism.

Shape assertions, per the paper's reading of the figure:

- exposure is monotone in window size for every workload;
- small windows (W<=16) expose only a small fraction for high-ILP programs;
- the high-ILP programs are still far from saturated at mid windows while
  low-ILP programs saturate much earlier;
- W~256 already yields modest absolute parallelism for every workload.
"""

from conftest import run_once

from repro.harness.experiments import fig8_window


def test_fig8(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, fig8_window, store, cap)
    save_output("fig8", output)
    percent_table, absolute_table = output.tables
    percent = {row[0]: row[1:] for row in percent_table.rows}
    absolute = {row[0]: row[1:] for row in absolute_table.rows}

    for name, series in percent.items():
        assert list(series) == sorted(series), name
        assert abs(series[-1] - 100.0) < 1e-6, name

    if not check_shapes:
        return

    # high-ILP analogs: a 16-instruction window exposes <20% of the total
    for name in ("matrix300x", "tomcatvx", "fppppx", "eqntottx"):
        assert percent[name][2] < 20.0, name

    # the xlisp analog saturates early (low ILP): W=1024 exposes >80%
    assert percent["xlispx"][5] > 80.0

    # absolute parallelism at W=256 is modest for everything (paper: 7-52)
    for name, series in absolute.items():
        w256 = series[4]
        assert 1.0 < w256 < 80.0, (name, w256)
