"""Diff fresh pytest-benchmark results against the committed baseline.

Usage::

    python benchmarks/check_regression.py bench-smoke.json \
        [--baseline benchmarks/BENCH_throughput.json] [--threshold 0.20]

Compares mean runtimes by benchmark name and prints one line per shared
benchmark. A slowdown at or past the threshold (default 20%) emits a
GitHub Actions ``::warning::`` annotation so it shows up on the run page.

Deliberately non-gating: shared CI runners are too noisy to fail merges
on, so the exit code is always 0 — the committed baseline
(``benchmarks/BENCH_throughput.json``) stays the reference for local,
quiet-machine comparisons.

The one exception is ``--stream-gate``: it compares the streaming and
pool-sharded pipelines against the in-memory pipeline *within the same
fresh run*, so machine speed cancels out and the overhead ratios are
stable enough to gate on. A streaming regression past the ratio bounds
exits non-zero and fails CI.
"""

from __future__ import annotations

import argparse
import json
import sys


class MetricsFormatError(Exception):
    """A benchmark JSON file is missing a key this script needs."""


def load_means(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    means = {}
    for position, bench in enumerate(data.get("benchmarks", [])):
        try:
            means[bench["name"]] = bench["stats"]["mean"]
        except (KeyError, TypeError) as error:
            label = f"entry {position}"
            if isinstance(bench, dict) and "name" in bench:
                label = bench["name"]
            raise MetricsFormatError(
                f"{path}: benchmark {label!r} has no 'stats'/'mean' metric "
                "(is this pytest-benchmark JSON?)"
            ) from error
    return means


#: Same-run ratio bounds for --stream-gate. Local quiet-machine ratios are
#: ~1.0x (stream) and ~1.3x (sharded, 2-worker pool incl. IPC); the bounds
#: leave headroom for runner jitter while still catching a structural
#: regression (an accidental extra decode, a chunk-boundary quadratic).
STREAM_GATE_BENCHES = {
    "stream": "test_stream_throughput_from_file",
    "sharded": "test_sharded_throughput_pool",
}
STREAM_GATE_BASELINE = "test_inmemory_throughput_from_file"
STREAM_GATE_MAX = {"stream": 1.6, "sharded": 3.0}


def stream_gate(fresh: dict) -> int:
    """Gate streaming/sharding overhead on same-run ratios; returns an
    exit code (0 ok, 1 regression, 2 missing benchmarks)."""
    missing = sorted(
        name
        for name in [STREAM_GATE_BASELINE, *STREAM_GATE_BENCHES.values()]
        if name not in fresh
    )
    if missing:
        print(
            f"check_regression: --stream-gate needs benchmarks {missing} "
            "in the fresh results (run bench_throughput.py with "
            '-k "from_file or sharded_throughput")',
            file=sys.stderr,
        )
        return 2
    baseline = fresh[STREAM_GATE_BASELINE]
    failed = False
    for label, name in sorted(STREAM_GATE_BENCHES.items()):
        ratio = fresh[name] / baseline if baseline else 0.0
        bound = STREAM_GATE_MAX[label]
        ok = ratio <= bound
        print(
            f"{label:<8} {fresh[name] * 1000:9.2f}ms / "
            f"{baseline * 1000:9.2f}ms in-memory = {ratio:5.2f}x "
            f"(bound {bound:.1f}x) {'ok' if ok else '<-- REGRESSION'}"
        )
        if not ok:
            print(
                f"::error title=streaming overhead::{name} runs {ratio:.2f}x "
                f"the in-memory pipeline (bound {bound:.1f}x, same-run ratio)"
            )
            failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_throughput.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that triggers a warning (default: %(default)s)",
    )
    parser.add_argument(
        "--stream-gate",
        action="store_true",
        help="gate on same-run streaming/sharding overhead ratios "
        "(exits non-zero on regression; skips the baseline diff)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = load_means(args.results)
        if args.stream_gate:
            return stream_gate(fresh)
        baseline = load_means(args.baseline)
    except MetricsFormatError as error:
        print(f"check_regression: {error}", file=sys.stderr)
        return 2  # malformed input is an error even though comparisons never gate
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        print("::warning::no benchmarks shared with the baseline; nothing compared")
        return 0

    regressions = []
    for name in shared:
        before, after = baseline[name], fresh[name]
        delta = (after - before) / before if before else 0.0
        marker = " <-- REGRESSION" if delta >= args.threshold else ""
        print(
            f"{name:<45} {before * 1000:9.2f}ms -> {after * 1000:9.2f}ms "
            f"({delta:+6.1%}){marker}"
        )
        if delta >= args.threshold:
            regressions.append((name, delta))

    only_fresh = sorted(set(fresh) - set(baseline))
    if only_fresh:
        print(f"(not in baseline: {', '.join(only_fresh)})")

    for name, delta in regressions:
        print(
            f"::warning title=benchmark regression::{name} is {delta:+.1%} "
            f"vs the committed baseline (threshold {args.threshold:.0%})"
        )
    if not regressions:
        print(f"no regressions >= {args.threshold:.0%} across {len(shared)} benchmarks")
    return 0  # informational only — never gate merges on shared-runner noise


if __name__ == "__main__":
    sys.exit(main())
