"""Diff fresh pytest-benchmark results against the committed baseline.

Usage::

    python benchmarks/check_regression.py bench-smoke.json \
        [--baseline benchmarks/BENCH_throughput.json] [--threshold 0.20]

Compares mean runtimes by benchmark name and prints one line per shared
benchmark. A slowdown at or past the threshold (default 20%) emits a
GitHub Actions ``::warning::`` annotation so it shows up on the run page.

Deliberately non-gating: shared CI runners are too noisy to fail merges
on, so the exit code is always 0 — the committed baseline
(``benchmarks/BENCH_throughput.json``) stays the reference for local,
quiet-machine comparisons.
"""

from __future__ import annotations

import argparse
import json
import sys


class MetricsFormatError(Exception):
    """A benchmark JSON file is missing a key this script needs."""


def load_means(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    means = {}
    for position, bench in enumerate(data.get("benchmarks", [])):
        try:
            means[bench["name"]] = bench["stats"]["mean"]
        except (KeyError, TypeError) as error:
            label = f"entry {position}"
            if isinstance(bench, dict) and "name" in bench:
                label = bench["name"]
            raise MetricsFormatError(
                f"{path}: benchmark {label!r} has no 'stats'/'mean' metric "
                "(is this pytest-benchmark JSON?)"
            ) from error
    return means


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_throughput.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that triggers a warning (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = load_means(args.results)
        baseline = load_means(args.baseline)
    except MetricsFormatError as error:
        print(f"check_regression: {error}", file=sys.stderr)
        return 2  # malformed input is an error even though comparisons never gate
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        print("::warning::no benchmarks shared with the baseline; nothing compared")
        return 0

    regressions = []
    for name in shared:
        before, after = baseline[name], fresh[name]
        delta = (after - before) / before if before else 0.0
        marker = " <-- REGRESSION" if delta >= args.threshold else ""
        print(
            f"{name:<45} {before * 1000:9.2f}ms -> {after * 1000:9.2f}ms "
            f"({delta:+6.1%}){marker}"
        )
        if delta >= args.threshold:
            regressions.append((name, delta))

    only_fresh = sorted(set(fresh) - set(baseline))
    if only_fresh:
        print(f"(not in baseline: {', '.join(only_fresh)})")

    for name, delta in regressions:
        print(
            f"::warning title=benchmark regression::{name} is {delta:+.1%} "
            f"vs the committed baseline (threshold {args.threshold:.0%})"
        )
    if not regressions:
        print(f"no regressions >= {args.threshold:.0%} across {len(shared)} benchmarks")
    return 0  # informational only — never gate merges on shared-runner noise


if __name__ == "__main__":
    sys.exit(main())
