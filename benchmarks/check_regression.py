"""Diff fresh pytest-benchmark results against the committed baseline.

Usage::

    python benchmarks/check_regression.py bench-smoke.json \
        [--baseline benchmarks/BENCH_throughput.json] [--threshold 0.20]

Compares mean runtimes by benchmark name and prints one line per shared
benchmark. A slowdown at or past the threshold (default 20%) emits a
GitHub Actions ``::warning::`` annotation so it shows up on the run page.

Deliberately non-gating: shared CI runners are too noisy to fail merges
on, so the exit code is always 0 — the committed baseline
(``benchmarks/BENCH_throughput.json``) stays the reference for local,
quiet-machine comparisons.

The exceptions are the same-run ratio gates, where machine speed cancels
out and the ratios are stable enough to gate on:

- ``--stream-gate`` compares the streaming and pool-sharded pipelines
  against the in-memory pipeline within the same fresh run; a ratio past
  the overhead bounds exits non-zero and fails CI.
- ``--backend-gate`` compares the python and numpy analysis backends over
  the same generic-kernel workload within the same fresh run, selecting
  the two rows by their stable ``extra_info`` metadata keys
  (``backend``/``kernel``/``gate``); a numpy speedup under the bound
  exits non-zero, and missing rows exit 2 with a pointer at the command
  that produces them.
"""

from __future__ import annotations

import argparse
import json
import sys


class MetricsFormatError(Exception):
    """A benchmark JSON file is missing a key this script needs."""


def load_benchmarks(path: str) -> list:
    """``(name, mean, extra_info)`` per row, with loud format errors."""
    with open(path) as handle:
        data = json.load(handle)
    rows = []
    for position, bench in enumerate(data.get("benchmarks", [])):
        try:
            name = bench["name"]
            mean = bench["stats"]["mean"]
        except (KeyError, TypeError) as error:
            label = f"entry {position}"
            if isinstance(bench, dict) and "name" in bench:
                label = bench["name"]
            raise MetricsFormatError(
                f"{path}: benchmark {label!r} has no 'stats'/'mean' metric "
                "(is this pytest-benchmark JSON?)"
            ) from error
        extra = bench.get("extra_info")
        rows.append((name, mean, extra if isinstance(extra, dict) else {}))
    return rows


def load_means(path: str) -> dict:
    return {name: mean for name, mean, _ in load_benchmarks(path)}


#: Same-run ratio bounds for --stream-gate. Local quiet-machine ratios are
#: ~1.0x (stream) and ~1.3x (sharded, 2-worker pool incl. IPC); the bounds
#: leave headroom for runner jitter while still catching a structural
#: regression (an accidental extra decode, a chunk-boundary quadratic).
STREAM_GATE_BENCHES = {
    "stream": "test_stream_throughput_from_file",
    "sharded": "test_sharded_throughput_pool",
}
STREAM_GATE_BASELINE = "test_inmemory_throughput_from_file"
STREAM_GATE_MAX = {"stream": 1.6, "sharded": 3.0}


def stream_gate(fresh: dict) -> int:
    """Gate streaming/sharding overhead on same-run ratios; returns an
    exit code (0 ok, 1 regression, 2 missing benchmarks)."""
    missing = sorted(
        name
        for name in [STREAM_GATE_BASELINE, *STREAM_GATE_BENCHES.values()]
        if name not in fresh
    )
    if missing:
        print(
            f"check_regression: --stream-gate needs benchmarks {missing} "
            "in the fresh results (run bench_throughput.py with "
            '-k "from_file or sharded_throughput")',
            file=sys.stderr,
        )
        return 2
    baseline = fresh[STREAM_GATE_BASELINE]
    failed = False
    for label, name in sorted(STREAM_GATE_BENCHES.items()):
        ratio = fresh[name] / baseline if baseline else 0.0
        bound = STREAM_GATE_MAX[label]
        ok = ratio <= bound
        print(
            f"{label:<8} {fresh[name] * 1000:9.2f}ms / "
            f"{baseline * 1000:9.2f}ms in-memory = {ratio:5.2f}x "
            f"(bound {bound:.1f}x) {'ok' if ok else '<-- REGRESSION'}"
        )
        if not ok:
            print(
                f"::error title=streaming overhead::{name} runs {ratio:.2f}x "
                f"the in-memory pipeline (bound {bound:.1f}x, same-run ratio)"
            )
            failed = True
    return 1 if failed else 0


#: Minimum same-run python/numpy speedup for --backend-gate. The gate pair
#: (matrix300x@100k, registers and stack renamed, generic kernel) runs
#: ~7x on a quiet machine; 5x leaves jitter headroom while catching a
#: structural loss (a de-vectorized hot path, an accidental per-record
#: fallback, an index rebuilt per run).
BACKEND_GATE_BACKENDS = ("python", "numpy")
BACKEND_GATE_MIN_SPEEDUP = 5.0


def backend_gate(rows) -> int:
    """Gate the numpy backend's throughput edge on the same-run ratio of
    the two ``extra_info``-tagged gate rows; returns an exit code
    (0 ok, 1 regression, 2 missing rows)."""
    gates = {}
    for name, mean, info in rows:
        if info.get("gate") == "backend" and info.get("backend"):
            gates[info["backend"]] = (name, mean)
    missing = sorted(b for b in BACKEND_GATE_BACKENDS if b not in gates)
    if missing:
        print(
            "check_regression: --backend-gate found no row tagged "
            f"extra_info gate='backend' for backend(s) {missing} in the "
            "fresh results; run bench_throughput.py -k backend_gate with "
            "NumPy installed to produce both gate rows",
            file=sys.stderr,
        )
        return 2
    py_name, py_mean = gates["python"]
    np_name, np_mean = gates["numpy"]
    speedup = py_mean / np_mean if np_mean else 0.0
    ok = speedup >= BACKEND_GATE_MIN_SPEEDUP
    print(
        f"backend  {py_name} {py_mean * 1000:9.2f}ms / "
        f"{np_name} {np_mean * 1000:9.2f}ms = {speedup:5.2f}x numpy speedup "
        f"(bound >= {BACKEND_GATE_MIN_SPEEDUP:.1f}x) "
        f"{'ok' if ok else '<-- REGRESSION'}"
    )
    if not ok:
        print(
            f"::error title=backend throughput::the numpy backend runs only "
            f"{speedup:.2f}x the python generic kernel (bound "
            f">= {BACKEND_GATE_MIN_SPEEDUP:.1f}x, same-run ratio)"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_throughput.json",
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that triggers a warning (default: %(default)s)",
    )
    parser.add_argument(
        "--stream-gate",
        action="store_true",
        help="gate on same-run streaming/sharding overhead ratios "
        "(exits non-zero on regression; skips the baseline diff)",
    )
    parser.add_argument(
        "--backend-gate",
        action="store_true",
        help="gate on the same-run python/numpy backend speedup ratio "
        "(exits non-zero on regression; skips the baseline diff)",
    )
    args = parser.parse_args(argv)

    try:
        rows = load_benchmarks(args.results)
        fresh = {name: mean for name, mean, _ in rows}
        if args.backend_gate:
            return backend_gate(rows)
        if args.stream_gate:
            return stream_gate(fresh)
        baseline = load_means(args.baseline)
    except MetricsFormatError as error:
        print(f"check_regression: {error}", file=sys.stderr)
        return 2  # malformed input is an error even though comparisons never gate
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        print("::warning::no benchmarks shared with the baseline; nothing compared")
        return 0

    regressions = []
    for name in shared:
        before, after = baseline[name], fresh[name]
        delta = (after - before) / before if before else 0.0
        marker = " <-- REGRESSION" if delta >= args.threshold else ""
        print(
            f"{name:<45} {before * 1000:9.2f}ms -> {after * 1000:9.2f}ms "
            f"({delta:+6.1%}){marker}"
        )
        if delta >= args.threshold:
            regressions.append((name, delta))

    only_fresh = sorted(set(fresh) - set(baseline))
    if only_fresh:
        print(f"(not in baseline: {', '.join(only_fresh)})")

    for name, delta in regressions:
        print(
            f"::warning title=benchmark regression::{name} is {delta:+.1%} "
            f"vs the committed baseline (threshold {args.threshold:.0%})"
        )
    if not regressions:
        print(f"no regressions >= {args.threshold:.0%} across {len(shared)} benchmarks")
    return 0  # informational only — never gate merges on shared-runner noise


if __name__ == "__main__":
    sys.exit(main())
