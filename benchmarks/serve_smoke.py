#!/usr/bin/env python
"""Scripted load/smoke test for ``repro serve`` (the CI serve-smoke job).

Runs the real CLI server as a subprocess and drives it with concurrent
clients through the full acceptance story:

1. two clients submit identical grids concurrently → the engine executes
   each distinct job exactly once (content-addressed dedupe);
2. resubmitting the finished grid is a pool no-op (deduped counter moves,
   executed counter does not);
3. a restarted server with the same result cache answers the same grid
   from cache without executing;
4. under ``REPRO_FAULTS=crash@0`` an injected worker crash surfaces as a
   retry, never an HTTP error — every client still gets its result;
5. SIGTERM drains cleanly (exit 0, journal on disk) and ``--resume``
   replays the drained run's completed jobs from the journal.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py [--cap N] [--keep]

Exits non-zero on the first violated expectation.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

from repro.serve import ServeClient  # noqa: E402


def say(message):
    print(f"serve-smoke: {message}", flush=True)


def fail(message):
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr, flush=True)
    sys.exit(1)


class Server:
    """One CLI server subprocess with port-file discovery."""

    def __init__(self, workdir, extra=(), env_extra=None):
        self.port_file = os.path.join(workdir, "port.json")
        if os.path.exists(self.port_file):
            os.remove(self.port_file)
        env = dict(os.environ, PYTHONPATH=SRC)
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--port-file", self.port_file,
                "--journal-dir", os.path.join(workdir, "journal"),
                "--result-cache", os.path.join(workdir, "cache"),
                "--result-cache-max-bytes", "64M",
                "--jobs", "2",
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 90
        while not os.path.exists(self.port_file):
            if self.proc.poll() is not None or time.monotonic() > deadline:
                output = self.proc.stdout.read().decode()
                self.proc.kill()
                fail(f"server failed to start:\n{output}")
            time.sleep(0.05)
        with open(self.port_file) as handle:
            self.info = json.load(handle)
        self.port = self.info["port"]
        self.run_id = self.info["run_id"]

    def client(self, client_id):
        return ServeClient("127.0.0.1", self.port, client_id=client_id, timeout=120)

    def sigterm(self):
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=90)
        output = self.proc.stdout.read().decode()
        if code != 0:
            fail(f"server exited {code} after SIGTERM:\n{output}")
        return output


def grid_body(cap):
    return {
        "workload": "xlispx",
        "cap": cap,
        "configs": [
            {"syscall_policy": "conservative"},
            {"syscall_policy": "optimistic"},
            {"window_size": 64},
        ],
    }


def submit_and_wait(server, client_id, cap, results, index):
    with server.client(client_id) as client:
        rows = client.submit(grid_body(cap))
        records = [client.wait(row["id"], timeout=180) for row in rows]
        results[index] = (rows, records)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cap", type=int, default=2000, help="instruction cap per job")
    parser.add_argument("--keep", action="store_true", help="keep the scratch directory")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    say(f"scratch dir {workdir}")
    try:
        run(args.cap, workdir)
    finally:
        if args.keep:
            say(f"kept {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)
    say("all scenarios passed")


def run(cap, workdir):
    # -- 1+2: concurrent identical grids dedupe to one execution ----------
    server = Server(workdir)
    say(f"server up on port {server.port} (run {server.run_id})")
    results = [None, None]
    threads = [
        threading.Thread(target=submit_and_wait, args=(server, name, cap, results, i))
        for i, name in enumerate(("alpha", "beta"))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=240)
    if any(result is None for result in results):
        fail("a concurrent client never finished")
    ids = [sorted(row["id"] for row in rows) for rows, _ in results]
    if ids[0] != ids[1]:
        fail("identical grids produced different job ids")
    for _, records in results:
        bad = [r for r in records if r["state"] != "done"]
        if bad:
            fail(f"jobs did not complete: {bad}")
    with server.client("checker") as client:
        stats = client.healthz()["stats"]
    if stats["executed"] != 3:
        fail(f"expected 3 executions for 3 distinct jobs, saw {stats['executed']}")
    if stats["deduped"] < 3:
        fail(f"expected >=3 deduped submissions, saw {stats['deduped']}")
    say(f"concurrent dedupe ok (executed={stats['executed']}, deduped={stats['deduped']})")

    with server.client("gamma") as client:
        rows = client.submit(grid_body(cap))
        if not all(row["deduped"] for row in rows):
            fail("resubmission of a finished grid was not deduped")
        after = client.healthz()["stats"]
    if after["executed"] != stats["executed"]:
        fail("resubmission reached the pool (executed moved)")
    say("cached resubmission is a pool no-op")

    # -- 5a: SIGTERM drains cleanly ---------------------------------------
    first_run = server.run_id
    server.sigterm()
    journal = os.path.join(workdir, "journal", f"{first_run}.jsonl")
    if not os.path.exists(journal):
        fail(f"no journal at {journal} after drain")
    say("SIGTERM drained cleanly, journal on disk")

    # -- 3: a fresh server answers the grid from the shared result cache --
    server = Server(workdir)
    with server.client("delta") as client:
        rows = client.submit(grid_body(cap))
        records = [client.wait(row["id"], timeout=180) for row in rows]
        stats = client.healthz()["stats"]
    if not all(record["status"] == "cached" for record in records):
        fail(f"expected cached answers after restart, saw "
             f"{[r['status'] for r in records]}")
    if stats["executed"] != 0:
        fail("restarted server re-executed cached work")
    say("cross-restart result cache hit (0 executions)")
    server.sigterm()

    # -- 4: injected worker crash surfaces as a retry, not an error -------
    faults_dir = os.path.join(workdir, "faults")
    os.makedirs(faults_dir, exist_ok=True)
    fault_cap = cap + 17  # distinct digests: miss the cache, reach the pool
    server = Server(
        workdir,
        env_extra={"REPRO_FAULTS": "crash@0", "REPRO_FAULTS_DIR": faults_dir},
    )
    fault_run = server.run_id
    with server.client("epsilon") as client:
        rows = client.submit(grid_body(fault_cap))
        records = [client.wait(row["id"], timeout=180) for row in rows]
        events = list(client.events(rows[0]["id"]))
    if not all(record["state"] == "done" for record in records):
        fail(f"jobs failed under fault injection: "
             f"{[(r['state'], r['error']) for r in records]}")
    kinds = [event["event"] for event in events]
    if "retry" not in kinds:
        fail(f"expected a retry event for the crashed job, saw {kinds}")
    say(f"worker crash retried transparently (job 0 events: {kinds})")
    server.sigterm()

    # -- 5b: --resume replays the drained run's jobs from its journal -----
    server = Server(workdir, extra=("--resume", fault_run))
    if server.run_id != fault_run:
        fail(f"resumed run id {server.run_id} != {fault_run}")
    with server.client("zeta") as client:
        rows = client.submit(grid_body(fault_cap))
        records = [client.wait(row["id"], timeout=180) for row in rows]
    statuses = [record["status"] for record in records]
    if statuses != ["replayed"] * len(records):
        fail(f"expected journal replays on --resume, saw {statuses}")
    say("journal resume replays completed jobs")
    server.sigterm()


if __name__ == "__main__":
    main()
