"""Regenerate paper Table 3: the dataflow parallelism limit.

Shape checks (absolute numbers are trace-length dependent; the paper's own
caveat about truncated traces applies to us even more strongly):

- available parallelism spans well over an order of magnitude;
- the xlisp analog is the least parallel benchmark (paper section 4);
- conservative vs optimistic syscall assumptions bound a modest
  measurement error.
"""

from conftest import run_once

from repro.harness.experiments import table3_dataflow


def test_table3(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, table3_dataflow, store, cap)
    save_output("table3", output)
    rows = {row[0]: row for row in output.tables[0].rows}

    for name, row in rows.items():
        conservative_cp, optimistic_cp, error = row[2], row[4], row[6]
        assert conservative_cp >= optimistic_cp
        assert 0.0 <= error <= 1.0

    if check_shapes:
        parallelism = {name: row[3] for name, row in rows.items()}
        assert max(parallelism.values()) / min(parallelism.values()) > 10
        assert min(parallelism, key=parallelism.get) == "xlispx"
