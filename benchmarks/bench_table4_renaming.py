"""Regenerate paper Table 4: parallelism under the renaming conditions.

This is the paper's centerpiece result. Shape assertions:

- no renaming crushes every workload to single digits;
- register renaming alone recovers a sizable fraction for most programs;
- the matrix300/tomcatv/doduc analogs need *stack* renaming on top of
  registers (FORTRAN static frames);
- the espresso/fpppp analogs additionally need full *memory* renaming;
- the nasker/xlisp analogs are insensitive beyond register renaming.
"""

from conftest import run_once

from repro.harness.experiments import table4_renaming


def test_table4(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, table4_renaming, store, cap)
    save_output("table4", output)
    rows = {row[0]: row[1:5] for row in output.tables[0].rows}

    for name, (none, regs, stack, full) in rows.items():
        assert none < 10.0, name
        assert none <= regs <= stack <= full, name

    if not check_shapes:
        return

    for name in ("matrix300x", "tomcatvx", "doducx"):
        none, regs, stack, full = rows[name]
        assert stack > 1.5 * regs, name
        assert full < 1.2 * stack, name  # memory renaming adds little more

    for name in ("espressox", "fppppx"):
        none, regs, stack, full = rows[name]
        assert full > 2.0 * stack, name

    for name in ("naskerx", "xlispx"):
        none, regs, stack, full = rows[name]
        assert full < 1.1 * regs, name

    # register renaming alone recovers most of eqntott (paper: 533 of 783)
    none, regs, stack, full = rows["eqntottx"]
    assert regs > 0.5 * full
