"""Tool throughput microbenchmarks (the paper quotes ~10 hours per 100M-
instruction analysis on a DECstation 3100; these measure our stack).

The ``test_analyzer_*`` / ``test_columnar_*`` pairs time the legacy
tuple-per-record analyzer against the columnar kernels on the same
100k-record espressox trace; the committed baseline numbers live in
``benchmarks/BENCH_throughput.json``. To refresh it after kernel work::

    PYTHONPATH=src python -m pytest benchmarks/bench_throughput.py \\
        --benchmark-json=benchmarks/BENCH_throughput.json -q
"""

import resource

import pytest

from repro.core import vkernels
from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.kernels import analyze_columnar
from repro.core.stream import stream_analyze_file
from repro.cpu.machine import Machine
from repro.engine import ExperimentEngine
from repro.engine.shards import shard_analyze_file
from repro.trace.columnar import ColumnarTrace
from repro.workloads.suite import load_workload

requires_numpy = pytest.mark.skipif(
    not vkernels.available(), reason="NumPy is not installed"
)


def _tag_backend(benchmark, backend, kernel, gate=None):
    """Stable metadata keys check_regression.py selects rows by."""
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["kernel"] = kernel
    if gate:
        benchmark.extra_info["gate"] = gate


@pytest.fixture(scope="module")
def bench_trace(store):
    return store.trace("espressox", 100_000)


@pytest.fixture(scope="module")
def bench_columnar(store):
    trace = store.columnar("espressox", 100_000)
    # Trace statistics are cached per trace, not part of a kernel run.
    trace.census()
    trace.operand_counts()
    return trace


def test_analyzer_throughput_full_renaming(benchmark, bench_trace):
    result = benchmark(analyze, bench_trace, AnalysisConfig())
    assert result.records_processed == 100_000


def test_analyzer_throughput_no_renaming(benchmark, bench_trace):
    result = benchmark(analyze, bench_trace, AnalysisConfig.no_renaming())
    assert result.records_processed == 100_000


def test_analyzer_throughput_windowed(benchmark, bench_trace):
    result = benchmark(analyze, bench_trace, AnalysisConfig(window_size=1024))
    assert result.records_processed == 100_000


def test_columnar_throughput_dataflow_kernel(benchmark, bench_columnar):
    result = benchmark(analyze_columnar, bench_columnar, AnalysisConfig())
    _tag_backend(benchmark, "python", "dataflow")
    assert result.records_processed == 100_000


def test_columnar_throughput_windowed_kernel(benchmark, bench_columnar):
    result = benchmark(
        analyze_columnar, bench_columnar, AnalysisConfig(window_size=1024)
    )
    _tag_backend(benchmark, "python", "windowed")
    assert result.records_processed == 100_000


def test_columnar_throughput_generic_kernel(benchmark, bench_columnar):
    result = benchmark(
        analyze_columnar, bench_columnar, AnalysisConfig.no_renaming()
    )
    _tag_backend(benchmark, "python", "generic")
    assert result.records_processed == 100_000


@requires_numpy
def test_vkernel_throughput_dataflow(benchmark, bench_columnar):
    """Informational numpy twin of the dataflow row (espressox's deep
    dependence chains bound the frontier, so the speedup here is modest)."""
    vkernels.analyze_vectorized(bench_columnar, AnalysisConfig())  # warm index
    result = benchmark(
        analyze_columnar, bench_columnar, AnalysisConfig(), backend="numpy"
    )
    _tag_backend(benchmark, "numpy", "dataflow")
    assert result.records_processed == 100_000


@requires_numpy
def test_vkernel_throughput_generic(benchmark, bench_columnar):
    result = benchmark(
        analyze_columnar, bench_columnar, AnalysisConfig.no_renaming(), backend="numpy"
    )
    _tag_backend(benchmark, "numpy", "generic")
    assert result.records_processed == 100_000


def test_columnar_decode_from_file(benchmark, store, bench_trace):
    path, _ = store.ensure_on_disk("espressox", 100_000)
    trace = benchmark(ColumnarTrace.from_file, path)
    benchmark.extra_info["decode"] = "buffered"
    assert len(trace) == 100_000


def test_columnar_decode_mmap(benchmark, store, bench_trace):
    """Zero-copy decode: read-only mmap + vectorized column gathers."""
    path, _ = store.ensure_on_disk("espressox", 100_000)
    trace = benchmark(ColumnarTrace.from_pgt2_mmap, path)
    benchmark.extra_info["decode"] = "mmap"
    assert len(trace) == 100_000


# --- backend gate -------------------------------------------------------------
# The same generic-kernel analysis (matrix300x@100k, registers and stack
# renamed — a wide-frontier numeric workload) on both backends in the same
# run. check_regression.py --backend-gate finds these two rows by their
# extra_info keys and fails CI if the numpy backend has lost its >= 5x
# throughput edge; machine speed cancels out of the same-run ratio.


@pytest.fixture(scope="module")
def gate_columnar(store):
    trace = store.columnar("matrix300x", 100_000)
    trace.census()
    trace.operand_counts()
    return trace


GATE_CONFIG = AnalysisConfig.registers_and_stack_renamed()


def test_backend_gate_python(benchmark, gate_columnar):
    result = benchmark(analyze_columnar, gate_columnar, GATE_CONFIG)
    _tag_backend(benchmark, "python", "generic", gate="backend")
    assert result.records_processed == 100_000


@requires_numpy
def test_backend_gate_numpy(benchmark, gate_columnar):
    # Warm the access-stream index: it is cached per trace (like census
    # above), so steady-state runs never pay it per analysis.
    vkernels.analyze_vectorized(gate_columnar, GATE_CONFIG)
    result = benchmark(
        analyze_columnar, gate_columnar, GATE_CONFIG, backend="numpy"
    )
    _tag_backend(benchmark, "numpy", "generic", gate="backend")
    assert result.records_processed == 100_000


# --- streaming vs in-memory -------------------------------------------------
# Same trace (cc1x@100k carries real conservative-syscall firewalls, so the
# sharded path genuinely splices), same dataflow config, three pipelines:
# whole-file decode + kernel, chunked frontier streaming, and pool-sharded
# stitch. check_regression.py --stream-gate turns the same-run ratios into a
# gating bound on streaming/sharding overhead (machine speed cancels out).


@pytest.fixture(scope="module")
def stream_file(store):
    path, _ = store.ensure_on_disk("cc1x", 100_000)
    return path


@pytest.fixture(scope="module")
def shard_engine():
    engine = ExperimentEngine(jobs=2)
    yield engine
    engine.close()


def _record_peak_rss(benchmark):
    benchmark.extra_info["peak_rss_kb"] = resource.getrusage(
        resource.RUSAGE_SELF
    ).ru_maxrss


def test_inmemory_throughput_from_file(benchmark, stream_file):
    def run():
        return analyze_columnar(ColumnarTrace.from_file(stream_file), AnalysisConfig())

    result = benchmark(run)
    _record_peak_rss(benchmark)
    assert result.records_processed == 100_000


def test_stream_throughput_from_file(benchmark, stream_file):
    result = benchmark(
        stream_analyze_file, stream_file, AnalysisConfig(), chunk_records=16_384
    )
    _record_peak_rss(benchmark)
    assert result.records_processed == 100_000


def test_sharded_throughput_pool(benchmark, stream_file, shard_engine):
    result = benchmark(
        shard_analyze_file,
        stream_file,
        AnalysisConfig(),
        shard_size=16_384,
        engine=shard_engine,
    )
    _record_peak_rss(benchmark)
    assert result.records_processed == 100_000


def test_simulator_throughput(benchmark):
    program = load_workload("espressox").program()

    def run():
        machine = Machine(program, trace=True)
        return machine.run(max_instructions=100_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.executed == 100_000


def test_compiler_throughput(benchmark):
    from repro.lang.compiler import compile_source

    source = load_workload("spice2g6x").source()
    program = benchmark(compile_source, source, static_frames=True)
    assert len(program.instructions) > 100
