"""Tool throughput microbenchmarks (the paper quotes ~10 hours per 100M-
instruction analysis on a DECstation 3100; these measure our stack)."""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.cpu.machine import Machine
from repro.workloads.suite import load_workload


@pytest.fixture(scope="module")
def bench_trace(store):
    return store.trace("espressox", 100_000)


def test_analyzer_throughput_full_renaming(benchmark, bench_trace):
    result = benchmark(analyze, bench_trace, AnalysisConfig())
    assert result.records_processed == 100_000


def test_analyzer_throughput_no_renaming(benchmark, bench_trace):
    result = benchmark(analyze, bench_trace, AnalysisConfig.no_renaming())
    assert result.records_processed == 100_000


def test_analyzer_throughput_windowed(benchmark, bench_trace):
    result = benchmark(analyze, bench_trace, AnalysisConfig(window_size=1024))
    assert result.records_processed == 100_000


def test_simulator_throughput(benchmark):
    program = load_workload("espressox").program()

    def run():
        machine = Machine(program, trace=True)
        return machine.run(max_instructions=100_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.executed == 100_000


def test_compiler_throughput(benchmark):
    from repro.lang.compiler import compile_source

    source = load_workload("spice2g6x").source()
    program = benchmark(compile_source, source, static_frames=True)
    assert len(program.instructions) > 100
