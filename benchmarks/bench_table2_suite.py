"""Regenerate paper Table 2: the benchmark inventory."""

from conftest import run_once

from repro.harness.experiments import table2_suite
from repro.workloads.suite import SUITE_NAMES


def test_table2(benchmark, store, cap, save_output):
    output = run_once(benchmark, table2_suite, store, cap)
    save_output("table2", output)
    table = output.tables[0]
    assert [row[0] for row in table.rows] == list(SUITE_NAMES)
    for row in table.rows:
        total, analyzed = row[3], row[4]
        assert analyzed <= total
        assert analyzed <= cap
