"""Service overhead: jobs/s through the HTTP server vs the direct engine.

Both benchmarks push the same batch shape through the same engine
configuration; the delta is the cost of the service surface (HTTP parsing,
queueing, dispatch, polling). Every round uses previously-unseen caps so
content-addressed dedupe and the result cache cannot short-circuit the
work — each round measures real executions plus dispatch overhead.

Baselines live in ``benchmarks/BENCH_throughput.json``; refresh with::

    PYTHONPATH=src python -m pytest benchmarks/bench_throughput.py \\
        benchmarks/bench_serve.py \\
        --benchmark-json=benchmarks/BENCH_throughput.json -q
"""

import itertools

import pytest

from repro.core.config import AnalysisConfig
from repro.engine.api import ExperimentEngine
from repro.engine.jobs import AnalysisJob
from repro.serve import ServeClient, ServeConfig, ServerThread

JOBS_PER_ROUND = 4
BASE_CAP = 2000

#: Shared across both benchmarks so no cap is ever analyzed twice.
_fresh_round = itertools.count()


def _round_caps():
    start = BASE_CAP + next(_fresh_round) * JOBS_PER_ROUND
    return list(range(start, start + JOBS_PER_ROUND))


@pytest.fixture(scope="module")
def serve_thread():
    with ServerThread(ServeConfig(port=0, jobs=1, metrics=False)) as server:
        yield server


def test_serve_http_batch(benchmark, serve_thread):
    with ServeClient("127.0.0.1", serve_thread.port, client_id="bench") as client:

        def submit_batch():
            caps = _round_caps()
            rows = client.submit(
                {"jobs": [{"workload": "xlispx", "cap": cap} for cap in caps]}
            )
            return [client.wait(row["id"], timeout=300, poll=0.005) for row in rows]

        records = benchmark(submit_batch)
    assert len(records) == JOBS_PER_ROUND
    assert all(record["state"] == "done" for record in records)


def test_engine_direct_batch(benchmark):
    engine = ExperimentEngine(jobs=1)

    def run_batch():
        grid = [
            AnalysisJob("xlispx", cap, AnalysisConfig()) for cap in _round_caps()
        ]
        return engine.run_grid(grid)

    outcomes = benchmark(run_batch)
    assert len(outcomes) == JOBS_PER_ROUND
    assert all(outcome.ok for outcome in outcomes)
