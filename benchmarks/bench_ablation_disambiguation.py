"""Ablation: memory disambiguation strategies (paper section 3.1 axis).

Perfect disambiguation is what the paper assumes throughout; the
conservative no-alias-information model reproduces the pessimistic end of
the prior limit studies (e.g. Wall 1991) and should cost every workload a
large factor of its parallelism.
"""

from conftest import run_once

from repro.harness.experiments import ablation_disambiguation


def test_ablation_disambiguation(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, ablation_disambiguation, store, cap)
    save_output("abl-disambiguation", output)
    for row in output.tables[0].rows:
        name, perfect, conservative, ratio = row
        assert conservative <= perfect + 1e-9, name
    if check_shapes:
        ratios = {row[0]: row[3] for row in output.tables[0].rows}
        # losing disambiguation costs the memory-parallel workloads dearly
        assert sum(1 for value in ratios.values() if value > 3.0) >= 5
