"""Regenerate paper Table 1: instruction class operation times."""

from conftest import run_once

from repro.harness.experiments import table1_latencies


def test_table1(benchmark, store, cap, save_output):
    output = run_once(benchmark, table1_latencies, store, cap)
    save_output("table1", output)
    assert all(ours == paper for _, ours, paper in output.tables[0].rows)
