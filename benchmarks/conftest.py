"""Shared benchmark fixtures.

Every benchmark regenerates one paper table or figure: it times the
Paragraph analysis with pytest-benchmark (one round — these are experiment
reproductions, not microbenchmarks) and writes the reproduced table to
``results/<experiment>.txt``/``.csv``.

Environment knobs:

- ``REPRO_BENCH_CAP``: instructions analyzed per workload (default 250000,
  the paper's 100M scaled to pure-Python analysis throughput).
"""

import os

import pytest

from repro.harness.runner import TraceStore

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
BENCH_CAP = int(os.environ.get("REPRO_BENCH_CAP", "250000"))


@pytest.fixture(scope="session")
def store():
    """Disk-backed trace store shared by every benchmark in the session."""
    cache = os.path.join(RESULTS_DIR, "trace-cache")
    return TraceStore(cache)


#: Shape assertions (who wins, by how much) presume traces long enough to
#: get past workload initialization; below this cap the benchmarks only
#: validate plumbing.
SHAPE_MIN_CAP = 150_000


@pytest.fixture(scope="session")
def cap():
    return BENCH_CAP


@pytest.fixture(scope="session")
def check_shapes():
    """True when the cap is large enough for paper-shape assertions."""
    return BENCH_CAP >= SHAPE_MIN_CAP


@pytest.fixture(scope="session")
def save_output():
    """Persist an ExperimentOutput under results/ and echo it."""

    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name, output):
        text = output.render()
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")
        for index, table in enumerate(output.tables):
            suffix = "" if len(output.tables) == 1 else f".{index}"
            with open(os.path.join(RESULTS_DIR, f"{name}{suffix}.csv"), "w") as handle:
                handle.write(table.to_csv() + "\n")
        print()
        print(text)
        return output

    return _save


def run_once(benchmark, function, *args, **kwargs):
    """Time one invocation (experiments are deterministic; one round)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
