"""Machine-model throttling (paper section 2.3): the same trace under the
constraint sets of successively more aggressive machine classes."""

from conftest import run_once

from repro.harness.experiments import machine_models


def test_machine_models(benchmark, store, cap, save_output):
    output = run_once(benchmark, machine_models, store, cap)
    save_output("machines", output)
    for row in output.tables[0].rows:
        name = row[0]
        scalar, ss4, ss16, restricted, ideal = row[1:]
        # a scalar in-order machine extracts ~1 instruction per cycle
        assert scalar <= 1.0 + 1e-9, name
        # each machine class dominates the weaker ones
        assert scalar <= ss4 + 1e-9, name
        assert ss4 <= ss16 * 1.05 + 1e-9, name  # predictors differ slightly
        assert ss16 <= restricted + 1e-9, name
        assert restricted <= ideal + 1e-9, name
        # the 4-wide core is resource/window bound well below ideal
        assert ss4 <= 4.0 + 1e-9, name
