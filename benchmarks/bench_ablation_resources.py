"""Ablation: functional-unit limits (generalizes paper Figure 4)."""

from conftest import run_once

from repro.harness.experiments import ablation_resources


def test_ablation_resources(benchmark, store, cap, save_output):
    output = run_once(benchmark, ablation_resources, store, cap)
    save_output("abl-resources", output)
    for row in output.tables[0].rows:
        name, series = row[0], row[1:]
        # AP is bounded by the FU count and monotone in it
        for count, value in zip((1, 2, 4, 8, 16, 32, 64), series[:-1]):
            assert value <= count + 1e-9, (name, count)
        assert list(series) == sorted(series), name
        # unconstrained column matches the k -> infinity trend
        assert series[-1] >= series[-2] - 1e-9
