"""Regenerate paper Figure 7: per-workload parallelism profiles.

The paper's observation: parallelism is bursty — periods of lots of
parallelism followed by periods of little. We assert burstiness via the
coefficient of variation of per-level operation counts, and emit ASCII
renderings plus CSV series as the figure stand-ins.
"""

import os

from conftest import RESULTS_DIR, run_once

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.harness.experiments import fig7_profiles
from repro.workloads.suite import SUITE_NAMES


def test_fig7(benchmark, store, cap, save_output, check_shapes):
    output = run_once(benchmark, fig7_profiles, store, cap)
    save_output("fig7", output)
    table = output.tables[0]
    assert [row[0] for row in table.rows] == list(SUITE_NAMES)
    if check_shapes:
        burstiness = {row[0]: row[4] for row in table.rows}
        # most of the suite shows strongly bursty profiles
        assert sum(1 for value in burstiness.values() if value > 1.0) >= 6
    assert len(output.figures) == len(SUITE_NAMES)


def test_fig7_series_csv(store, cap):
    """Write per-workload (level, ops) series for external plotting."""
    directory = os.path.join(RESULTS_DIR, "fig7-series")
    os.makedirs(directory, exist_ok=True)
    for name in SUITE_NAMES:
        result = analyze(store.trace(name, cap), AnalysisConfig())
        xs, ys = result.profile.series(max_points=400)
        path = os.path.join(directory, f"{name}.csv")
        with open(path, "w") as handle:
            handle.write("level,operations_per_level\n")
            for x, y in zip(xs, ys):
                handle.write(f"{x},{y}\n")
        assert os.path.getsize(path) > 0
