"""Analyze your own program: MiniC -> compile -> simulate -> Paragraph.

Writes a small MiniC program (a histogram kernel), compiles it with both
frame disciplines (C-style dynamic sp frames vs FORTRAN-style static
frames), and compares what Paragraph sees — a direct demonstration of why
the compiler's storage decisions shape the measured parallelism.

Run:  python examples/custom_workload.py
"""

from repro import AnalysisConfig, analyze
from repro.cpu import Machine
from repro.lang import compile_source

SOURCE = """
int hist[64];
int data[1024];

int bucket(int value) {
    int b = (value * 37 + 11) % 64;
    if (b < 0) { b = 0 - b; }
    return b;
}

void main() {
    int i;
    int blk;
    for (blk = 0; blk < 16; blk = blk + 1) {
        for (i = blk * 64; i < blk * 64 + 64; i = i + 1) {
            data[i] = (i * 389 + 17) % 997;
        }
    }
    for (blk = 0; blk < 16; blk = blk + 1) {
        for (i = blk * 64; i < blk * 64 + 64; i = i + 1) {
            int b = bucket(data[i]);
            hist[b] = hist[b] + 1;
        }
        if (blk % 8 == 0) { print_int(blk); }
    }
    print_int(hist[0] + hist[31] + hist[63]);
}
"""


def run(static_frames):
    program = compile_source(SOURCE, static_frames=static_frames)
    machine = Machine(program)
    result = machine.run(max_instructions=400_000)
    return result, machine.trace


def main():
    for static in (False, True):
        mode = "static (FORTRAN-style)" if static else "dynamic (C-style)"
        result, trace = run(static)
        print(f"\n=== {mode} frames ===")
        print(f"output: {result.output}   instructions: {result.executed:,}")
        for label, config in [
            ("registers renamed ", AnalysisConfig.registers_renamed()),
            ("+ stack renamed   ", AnalysisConfig.registers_and_stack_renamed()),
            ("+ memory renamed  ", AnalysisConfig()),
        ]:
            analysis = analyze(trace, config)
            print(
                f"  {label}: CP={analysis.critical_path_length:>7,}  "
                f"ILP={analysis.available_parallelism:6.2f}"
            )
    print(
        "\nThe bucket() kernel is called once per element. With dynamic"
        "\nframes the sp adjustments thread a true-dependency chain through"
        "\nevery call; with static frames the only cross-call coupling is"
        "\nargument-block reuse — pure WAR, removable by stack renaming."
    )


if __name__ == "__main__":
    main()
