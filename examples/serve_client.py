"""Analysis-as-a-service: drive a ``repro serve`` endpoint from a script.

Starts an in-process server (swap :class:`ServerThread` for a
``ServeClient`` pointed at a long-running ``python -m repro serve`` for the
real deployment), then walks the whole client surface: submit a config
grid, watch one job's SSE progress stream, read results, demonstrate that
an identical resubmission never reaches the engine pool, and upload a
custom trace for remote analysis.

Run:  PYTHONPATH=src python examples/serve_client.py
"""

import io

from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.trace.io import write_trace
from repro.workloads.suite import load_workload

CAP = 5_000


def trace_bytes(trace):
    stream = io.BytesIO()
    write_trace(stream, trace.records, trace.segments, len(trace))
    return stream.getvalue()


def main():
    config = ServeConfig(port=0, jobs=1)  # port=0: pick an ephemeral port
    with ServerThread(config) as server:
        print(f"server listening on 127.0.0.1:{server.port}")
        with ServeClient("127.0.0.1", server.port, client_id="example") as client:

            # A window-size grid over one workload: one job per config.
            rows = client.submit({
                "workload": "xlispx",
                "cap": CAP,
                "configs": [{"window_size": w} for w in (16, 64, 256)],
            })
            print(f"submitted {len(rows)} jobs")

            # Stream one job's progress over SSE (ends at the terminal event).
            for event in client.events(rows[0]["id"]):
                print(f"  sse: seq={event['seq']} {event['event']}")

            print("window  ILP")
            for row, window in zip(rows, (16, 64, 256)):
                record = client.wait(row["id"])
                ilp = record["summary"]["available_parallelism"]
                print(f"  {window:4d}  {ilp:6.2f}")

            # Identical resubmission: same content-addressed ids, no new
            # execution — the engine pool never sees it.
            again = client.submit({
                "workload": "xlispx",
                "cap": CAP,
                "configs": [{"window_size": w} for w in (16, 64, 256)],
            })
            stats = client.healthz()["stats"]
            print(f"resubmission deduped: {all(r['deduped'] for r in again)} "
                  f"(executed={stats['executed']}, deduped={stats['deduped']})")

            # Upload a trace the server has never seen and analyze it.
            trace = load_workload("naskerx").trace(max_instructions=2_000)
            info = client.upload_trace(trace_bytes(trace))
            print(f"uploaded {info['cap']}-record trace as {info['trace']}")
            row = client.submit({"workload": info["trace"]})[0]
            record = client.wait(row["id"])
            print(f"uploaded-trace ILP: "
                  f"{record['summary']['available_parallelism']:.2f}")


if __name__ == "__main__":
    main()
