"""Quickstart: extract and analyze a dynamic dependency graph.

Builds the paper's Figure 1/2 example (S := A + B + C + D) as assembly,
runs it on the simulator, and analyzes the trace with Paragraph under
several configurations — reproducing the worked numbers from the paper's
section 2 in a dozen lines of API.

Run:  python examples/quickstart.py
"""

from repro import AnalysisConfig, LatencyTable, analyze, build_ddg
from repro.asm import assemble
from repro.cpu import run_and_trace

SOURCE = """
.data
A:  .word 10
B:  .word 20
C:  .word 30
D:  .word 40
S:  .word 0

.text
main:
    lw   t0, A          # load r0, A
    lw   t1, B          # load r1, B
    add  t4, t0, t1     # r4 <- r0 + r1
    lw   t0, C          # load r0, C   (reuses t0/t1: storage deps!)
    lw   t1, D          # load r1, D
    add  t5, t0, t1     # r5 <- r2 + r3
    add  t6, t4, t5     # r6 <- r4 + r5
    sw   t6, S          # store r6, S
"""


def main():
    program = assemble(SOURCE)
    result, trace = run_and_trace(program)
    print(f"executed {result.executed} instructions; S = "
          f"{10 + 20 + 30 + 40} expected")

    unit = LatencyTable.unit()

    # Paper Figure 1: only true data dependencies (registers renamed).
    dataflow = analyze(trace, AnalysisConfig(latency=unit))
    print("\nwith renaming (Figure 1 semantics):")
    print(f"  critical path      = {dataflow.critical_path_length} levels")
    print(f"  parallelism profile= "
          f"{[dataflow.profile.counts.get(i, 0) for i in range(dataflow.critical_path_length)]}")
    print(f"  available ILP      = {dataflow.available_parallelism:.2f}")

    # Paper Figure 2: keep the storage (WAR) dependencies from t0/t1 reuse.
    storage = analyze(
        trace,
        AnalysisConfig(
            latency=unit,
            rename_registers=False,
            rename_stack=False,
            rename_data=False,
        ),
    )
    print("\nwithout renaming (Figure 2 semantics):")
    print(f"  critical path      = {storage.critical_path_length} levels")
    print(f"  parallelism profile= "
          f"{[storage.profile.counts.get(i, 0) for i in range(storage.critical_path_length)]}")

    # The explicit DDG for inspection: nodes, edges, the critical path.
    ddg = build_ddg(trace, AnalysisConfig(latency=unit))
    print("\nexplicit DDG:")
    print(f"  nodes = {ddg.placed_operations}, "
          f"edges = {ddg.graph.number_of_edges()}")
    print(f"  critical path (trace indices) = {ddg.critical_path_nodes()}")


if __name__ == "__main__":
    main()
