"""The xlisp effect: why interpreters defeat dependency analysis.

The paper's lowest-parallelism benchmark was xlisp, because the measured
program is an *interpreter*: the guest program's control structure turns
into data recurrences (the virtual pc and operand stack pointer) that no
amount of renaming removes. The interpreter acts as an "abstract serial
machine" (the paper's phrase) that caps the host-level parallelism at the
interpreter loop's own recurrence budget — no matter how parallel the
guest computation is.

This example shows the cap: a data-parallel kernel compiled natively
exposes far more ILP than the interpreter ever can, while a serial kernel
compiled natively lands *below* the interpreter (whose per-bytecode
decode work is itself mildly parallel).

Run:  python examples/interpreter_paradox.py
"""

from repro import AnalysisConfig, analyze
from repro.cpu import Machine
from repro.lang import compile_source
from repro.workloads import load_workload

#: Independent iterations: out[i] depends on nothing but i.
NATIVE_PARALLEL = """
int out[2048];
void main() {
    int blk;
    int i;
    for (blk = 0; blk < 32; blk = blk + 1) {
        for (i = blk * 64; i < blk * 64 + 64; i = i + 1) {
            out[i] = (i * 37 - (i ^ 21)) + (i * i) % 127;
        }
        if (blk % 16 == 0) { print_int(blk); }
    }
    print_int(out[2047]);
}
"""

#: One serial accumulator chain (the xlispx guest's actual computation).
NATIVE_SERIAL = """
void main() {
    int o;
    int i;
    int acc = 0;
    for (o = 0; o < 60; o = o + 1) {
        for (i = 0; i < 40; i = i + 1) {
            acc = acc + (o - i);
        }
    }
    print_int(acc);
}
"""


def measure(label, trace):
    result = analyze(trace, AnalysisConfig())
    print(
        f"  {label:28s} placed={result.placed_operations:>8,} "
        f"CP={result.critical_path_length:>7,} "
        f"ILP={result.available_parallelism:6.2f}"
    )
    return result


def native_trace(source, cap):
    machine = Machine(compile_source(source))
    machine.run(max_instructions=cap)
    return machine.trace


def main():
    cap = 150_000
    print("host-level available parallelism (full renaming):\n")
    parallel = measure("native, parallel kernel", native_trace(NATIVE_PARALLEL, cap))
    serial = measure("native, serial kernel", native_trace(NATIVE_SERIAL, cap))
    interp = measure(
        "interpreted (xlispx)", load_workload("xlispx").trace(max_instructions=cap)
    )

    print(
        f"\nthe interpreter pins ILP near {interp.available_parallelism:.0f} "
        f"regardless of the guest:"
        f"\n- a parallel guest would reach ~{parallel.available_parallelism:.0f} "
        f"compiled natively ({parallel.available_parallelism / interp.available_parallelism:.1f}x more),"
        "\n  but interpreted it still serializes through the virtual pc/sp"
        "\n  recurrences of the dispatch loop;"
        "\n- even a fully serial guest costs little extra, because the"
        "\n  interpreter's own decode work is what fills each level."
        "\nThis is the paper's explanation for xlisp's 13.28 (section 4)."
    )
    assert parallel.available_parallelism > 1.5 * interp.available_parallelism


if __name__ == "__main__":
    main()
