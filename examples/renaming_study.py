"""Renaming study: reproduce one row of the paper's Table 4.

Compiles a SPEC-analog workload, traces it, and sweeps Paragraph's renaming
switches — showing how storage dependencies on registers, the stack, and
the data segment each hide parallelism until renamed away.

Run:  python examples/renaming_study.py [workload] [instructions]
      e.g. python examples/renaming_study.py matrix300x 150000
"""

import sys

from repro import AnalysisConfig, analyze
from repro.workloads import load_workload

CONFIGS = [
    ("no renaming", AnalysisConfig.no_renaming()),
    ("registers renamed", AnalysisConfig.registers_renamed()),
    ("registers + stack", AnalysisConfig.registers_and_stack_renamed()),
    ("registers + memory", AnalysisConfig()),
]


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "matrix300x"
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000

    workload = load_workload(name)
    print(f"{workload.name} (analog of SPEC {workload.analog_of}): "
          f"{workload.description}")
    print(f"tracing the first {cap:,} instructions ...")
    trace = workload.trace(max_instructions=cap)

    print(f"\n{'configuration':22s} {'critical path':>14s} {'available ILP':>14s}")
    baseline = None
    for label, config in CONFIGS:
        result = analyze(trace, config)
        speedup = ""
        if baseline is not None and baseline > 0:
            speedup = f"  ({result.available_parallelism / baseline:5.1f}x vs none)"
        else:
            baseline = result.available_parallelism
        print(
            f"{label:22s} {result.critical_path_length:>14,} "
            f"{result.available_parallelism:>14.2f}{speedup}"
        )

    print(
        "\nReading: each renaming level removes one class of storage (WAR)"
        "\ndependencies; whichever class the workload reuses most is the one"
        "\nwhose renaming unlocks its parallelism (paper Table 4)."
    )


if __name__ == "__main__":
    main()
