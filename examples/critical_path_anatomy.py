"""Critical-path anatomy: what actually limits a workload's parallelism.

Builds the explicit DDG for a slice of each workload and reports what the
longest dependence chain is made of — operation classes, dependence kinds
(true/raw vs storage/war vs firewalls), and the hottest source statements.
This is the paper's analysis methodology turned into a profiling tool: the
answer tells you whether renaming, a bigger window, or an algorithm change
would help.

Run:  python examples/critical_path_anatomy.py [workload] [instructions]
"""

import sys

from repro import AnalysisConfig, build_ddg
from repro.core import summarize_critical_path
from repro.workloads import load_workload


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "spice2g6x"
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000

    workload = load_workload(name)
    trace = workload.trace(max_instructions=cap)
    print(f"{workload.name}: {cap:,} instructions\n")

    for label, config in [
        ("registers renamed only", AnalysisConfig.registers_renamed()),
        ("everything renamed", AnalysisConfig()),
    ]:
        ddg = build_ddg(trace, config)
        summary = summarize_critical_path(ddg, trace)
        print(f"--- {label} ---")
        print(summary.render())
        print()

    print(
        "Reading: 'war' edges on the path are storage dependencies the next"
        "\nrenaming level would remove; 'raw' edges are true dependencies"
        "\nonly an algorithm change can shorten; firewalls come from system"
        "\ncalls. The hottest statements say where in the source the chain"
        "\nlives."
    )


if __name__ == "__main__":
    main()
