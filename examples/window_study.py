"""Window study: one workload's Figure 8 curve plus its profile.

How many contiguous dynamic instructions must a processor examine to find
the parallelism? Sweeps Paragraph's instruction window and prints the
exposed fraction, then shows the parallelism profile (Figure 7 style).

Run:  python examples/window_study.py [workload] [instructions]
"""

import sys

from repro import AnalysisConfig, analyze
from repro.workloads import load_workload

WINDOWS = (1, 4, 16, 64, 256, 1024, 4096, 16384, None)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "tomcatvx"
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000

    workload = load_workload(name)
    print(f"{workload.name}: window size vs exposed parallelism "
          f"({cap:,} instructions)\n")
    trace = workload.trace(max_instructions=cap)

    results = []
    for window in WINDOWS:
        config = AnalysisConfig(window_size=window)
        results.append((window, analyze(trace, config)))
    total = results[-1][1].available_parallelism

    print(f"{'window':>8s} {'available ILP':>14s} {'% of total':>11s}  exposure")
    for window, result in results:
        label = "inf" if window is None else str(window)
        percent = 100.0 * result.available_parallelism / total if total else 0.0
        bar = "*" * int(percent / 2)
        print(f"{label:>8s} {result.available_parallelism:>14.2f} {percent:>10.1f}%  {bar}")

    print("\nparallelism profile (unlimited window, conservative syscalls):")
    print(results[-1][1].profile.ascii_plot(width=64, height=12))


if __name__ == "__main__":
    main()
