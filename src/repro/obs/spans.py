"""Lightweight phase spans: wall + CPU time per named pipeline phase.

A span brackets one phase of one job — queue wait, trace decode/shm
attach, kernel scan, serialization, retry backoff — and records its wall
and CPU time into the active registry as ``span.<name>.wall`` /
``span.<name>.cpu`` histograms plus a ``span.<name>.count`` counter.
Optionally it also accumulates the wall time into a plain ``phases`` dict,
which is how workers assemble the per-job phase breakdown that rides the
result queue back to the parent.

Disabled-mode contract: with metrics off and no ``phases`` sink,
:func:`span` returns a shared no-op singleton — no allocation, no clock
reads — so instrumented code paths cost one function call when
observability is off.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs import metrics as _metrics


class Span:
    """Context manager timing one phase. Reentrant-by-instance only (use
    one :func:`span` call per ``with`` statement)."""

    __slots__ = ("name", "registry", "phases", "wall", "cpu", "_wall0", "_cpu0")

    def __init__(self, name: str, registry, phases: Optional[Dict[str, float]]):
        self.name = name
        self.registry = registry
        self.phases = phases
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "Span":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall = time.perf_counter() - self._wall0
        self.cpu = time.process_time() - self._cpu0
        registry = self.registry
        if registry.enabled:
            name = self.name
            registry.histogram(f"span.{name}.wall").observe(self.wall)
            registry.histogram(f"span.{name}.cpu").observe(self.cpu)
            registry.counter(f"span.{name}.count").inc()
        if self.phases is not None:
            self.phases[self.name] = self.phases.get(self.name, 0.0) + self.wall
        return False


class _NullSpan:
    """Shared disabled-mode span: enters and exits without touching a
    clock."""

    __slots__ = ()

    wall = 0.0
    cpu = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(
    name: str,
    registry=None,
    phases: Optional[Dict[str, float]] = None,
):
    """A span for phase ``name`` against ``registry`` (the active global
    registry when not given). Returns the shared no-op span when there is
    nowhere to record to."""
    if registry is None:
        registry = _metrics.registry()
    if phases is None and not registry.enabled:
        return NULL_SPAN
    return Span(name, registry, phases)
