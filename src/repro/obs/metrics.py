"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency observability core for the experiment engine. One
:class:`MetricsRegistry` lives per process; instrumentation points reach it
through the module-level accessors (:func:`registry`, :func:`enabled`) so
the whole subsystem can be switched off — the default — at a single place.

Disabled-mode contract: when metrics are off, :func:`registry` returns the
shared :data:`NULL_REGISTRY` whose instruments are shared no-op singletons.
No names are interned, no objects are allocated per call, and every
operation is a constant-time method call — the hot paths of the engine and
the kernels stay within their <1% overhead budget without any call-site
``if`` beyond the ones this module provides (:func:`inc`, :func:`observe`,
:func:`gauge_set` check :func:`enabled` internally).

Merge semantics (cross-process): workers serialize their registry with
:meth:`MetricsRegistry.drain` (snapshot + reset, so repeated drains never
double-count) and ship the snapshot over the existing result queue; the
parent folds it in with :meth:`MetricsRegistry.merge`. Counters and
histogram buckets add; gauges keep the maximum (every engine gauge is a
high-watermark); histograms must agree on bucket edges — they always do,
because both sides run the same code.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, Iterator, Optional, Sequence, Tuple

#: Snapshot layout version (bump when the dict shape changes).
SNAPSHOT_SCHEMA = 1

#: Environment switch: any value but ""/"0" enables metrics process-wide
#: (how the CI fault-injection matrix runs with instrumentation on).
ENV_METRICS = "REPRO_METRICS"

#: Default histogram bucket upper edges for wall/CPU seconds: geometric,
#: sub-millisecond to a minute, matching the spread between a cache hit
#: and a production-cap analysis job.
TIME_BUCKETS: Tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)

#: Default buckets for small-integer distributions (attempt counts,
#: queue depths).
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 5, 10, 20, 50)


class Counter:
    """Monotonic counter (floats allowed — several track seconds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value; merges across processes as a maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with inclusive upper edges.

    A value lands in the first bucket whose edge is >= the value
    (``observe(edge)`` counts in that edge's bucket); values above the
    last edge land in the overflow bucket, so ``counts`` always has one
    more entry than ``edges`` and every observation is counted somewhere.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: Sequence[float] = TIME_BUCKETS) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram edges must be sorted and non-empty: {edges!r}")
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> Iterator[Tuple[Optional[float], int]]:
        """``(upper_edge, count)`` pairs; the overflow edge is ``None``."""
        for edge, count in zip(self.edges, self.counts):
            yield edge, count
        yield None, self.counts[-1]


class MetricsRegistry:
    """Named instruments for one process, lazily created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, edges: Sequence[float] = TIME_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(edges)
        return instrument

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument (the wire/merge format)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        """Zero every instrument, keeping the registered names."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * len(histogram.counts)
            histogram.total = 0.0
            histogram.count = 0

    def drain(self) -> dict:
        """Snapshot then reset — the worker-side handoff: each drain ships
        only the delta since the previous one, so the parent can merge
        per-job without double counting."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold a :meth:`snapshot` into this registry (counters add,
        gauges keep the max, histogram buckets add)."""
        if not snapshot:
            return
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"metrics snapshot schema {snapshot.get('schema')!r}, "
                f"expected {SNAPSHOT_SCHEMA}"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if value > gauge.value:
                gauge.value = value
        for name, dump in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, dump["edges"])
            if list(histogram.edges) != list(dump["edges"]):
                raise ValueError(
                    f"histogram {name!r} bucket edges differ: "
                    f"{list(histogram.edges)} vs {dump['edges']}"
                )
            for index, count in enumerate(dump["counts"]):
                histogram.counts[index] += count
            histogram.total += dump["total"]
            histogram.count += dump["count"]


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1) -> None:
        return None

    def dec(self, amount: float = 1) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Disabled-mode registry: every accessor returns a shared no-op
    singleton; snapshots are empty; merges are dropped. Allocation-free
    after module import."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, edges: Sequence[float] = TIME_BUCKETS) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"schema": SNAPSHOT_SCHEMA, "counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        return None

    def drain(self) -> dict:
        return self.snapshot()

    def merge(self, snapshot: Optional[dict]) -> None:
        return None


#: The shared disabled-mode registry.
NULL_REGISTRY = NullRegistry()

_registry = NULL_REGISTRY


def registry():
    """The active registry (:data:`NULL_REGISTRY` when metrics are off)."""
    return _registry


def enabled() -> bool:
    """True when a live registry is installed."""
    return _registry.enabled


def env_enabled() -> bool:
    """True when the :data:`ENV_METRICS` environment switch is set."""
    return os.environ.get(ENV_METRICS, "") not in ("", "0")


def enable(target: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install a live registry (idempotent: an already-live registry is
    kept unless an explicit ``target`` replaces it)."""
    global _registry
    if target is not None:
        _registry = target
    elif not _registry.enabled:
        _registry = MetricsRegistry()
    return _registry


def disable() -> None:
    """Return to the disabled-mode null registry."""
    global _registry
    _registry = NULL_REGISTRY


def set_registry(target) -> None:
    """Install an arbitrary registry object (worker per-job swaps, tests)."""
    global _registry
    _registry = target


# -- checked-enabled helpers (safe to call unconditionally) --------------------


def inc(name: str, amount: float = 1) -> None:
    """Bump a counter when metrics are on; a no-op otherwise."""
    if _registry.enabled:
        _registry.counter(name).inc(amount)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge when metrics are on; a no-op otherwise."""
    if _registry.enabled:
        _registry.gauge(name).set(value)


def observe(name: str, value: float, edges: Sequence[float] = TIME_BUCKETS) -> None:
    """Record a histogram observation when metrics are on."""
    if _registry.enabled:
        _registry.histogram(name, edges).observe(value)
