"""JSONL metrics export: one file per run, next to the run journal.

Layout (one JSON object per line, append-only):

- ``{"event": "run", "run_id": ...}`` — first line, written once;
- ``{"event": "job", ...}`` — one line per terminal job outcome (executed,
  cached, replayed, retried, quarantined — every journaled job gets a
  row), carrying status, wall seconds, attempt count, worker id, queue
  wait, and the per-phase wall-time breakdown measured in the process
  that ran the job;
- ``{"event": "grid", "registry": <snapshot>}`` — one line per completed
  grid, carrying the merged registry snapshot (parent + every worker)
  for that grid.

The format is deliberately journal-like: append-only, schema-versioned,
tolerant of a torn final line, and keyed by the same run id as the journal
(``<run-id>.metrics.jsonl`` beside ``<run-id>.jsonl``), so ``repro
report-run <run-id>`` needs only the journal directory.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

#: Bump when the row layout changes; the report refuses unknown schemas.
METRICS_SCHEMA = 1


class MetricsExportError(Exception):
    """Raised when a metrics file cannot be read for reporting."""


def metrics_path(directory: str, run_id: str) -> str:
    """Canonical metrics file location for a run."""
    return os.path.join(directory, f"{run_id}.metrics.jsonl")


class MetricsWriter:
    """Append-only writer for one run's metrics file."""

    def __init__(self, path: str, run_id: str):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self.run_id = run_id
        self._handle = open(path, "a")
        if self._handle.tell() == 0:
            self._append({"event": "run", "run_id": run_id})

    def _append(self, row: dict) -> None:
        row = {"schema": METRICS_SCHEMA, **row}
        self._handle.write(json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n")
        self._handle.flush()

    def write_job(self, row: dict) -> None:
        """One terminal job outcome (the caller builds the row — this
        module stays ignorant of engine types)."""
        self._append({"event": "job", **row})

    def write_grid(self, snapshot: dict, jobs: int) -> None:
        """One completed grid with its merged registry snapshot."""
        self._append({"event": "grid", "jobs": jobs, "registry": snapshot})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def load_run(path: str) -> dict:
    """Parse a metrics file into ``{"run_id", "jobs": [rows], "grids":
    [rows]}``. A torn final line (interrupted run) is ignored; damage
    anywhere else raises :class:`MetricsExportError`."""
    if not os.path.exists(path):
        raise MetricsExportError(f"no metrics file at {path}")
    run_id: Optional[str] = None
    jobs: List[dict] = []
    grids: List[dict] = []
    with open(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                remainder = handle.read(1)
                if remainder:
                    raise MetricsExportError(f"corrupt metrics line {lineno} in {path}") from None
                break  # torn tail: the run was interrupted mid-write
            if row.get("schema") != METRICS_SCHEMA:
                raise MetricsExportError(
                    f"metrics file {path} has schema {row.get('schema')!r}, "
                    f"expected {METRICS_SCHEMA}"
                )
            event = row.get("event")
            if event == "run":
                run_id = row.get("run_id")
            elif event == "job":
                jobs.append(row)
            elif event == "grid":
                grids.append(row)
    return {"run_id": run_id, "jobs": jobs, "grids": grids}
