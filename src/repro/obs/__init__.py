"""Observability layer: metrics, spans, and per-run reports.

``repro.obs`` instruments the execution stack — pool, caches, trace
store, kernels, resilience — without depending on any of it. Everything
is off by default: until :func:`enable` is called (or the
``REPRO_METRICS`` environment switch is set and the engine honors it),
every instrument is a shared no-op singleton and the instrumented hot
paths pay one guarded call at most.

Public surface:

- :class:`MetricsRegistry` / :data:`NULL_REGISTRY` — counters, gauges,
  fixed-bucket histograms; snapshot/drain/merge for cross-process
  aggregation (:mod:`repro.obs.metrics`);
- :func:`span` — wall+CPU phase timing (:mod:`repro.obs.spans`);
- :class:`MetricsWriter` / :func:`load_run` — per-run JSONL export
  (:mod:`repro.obs.export`);
- :func:`report_run` / :func:`render_run_report` — the ``repro
  report-run`` breakdown (:mod:`repro.obs.report`).
"""

from repro.obs.export import (
    METRICS_SCHEMA,
    MetricsExportError,
    MetricsWriter,
    load_run,
    metrics_path,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    ENV_METRICS,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled,
    env_enabled,
    gauge_set,
    inc,
    observe,
    registry,
    set_registry,
)
from repro.obs.report import render_run_report, report_run, resolve_metrics_file
from repro.obs.spans import NULL_SPAN, Span, span

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "ENV_METRICS",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsExportError",
    "MetricsRegistry",
    "MetricsWriter",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "Span",
    "TIME_BUCKETS",
    "disable",
    "enable",
    "enabled",
    "env_enabled",
    "gauge_set",
    "inc",
    "load_run",
    "metrics_path",
    "observe",
    "registry",
    "render_run_report",
    "report_run",
    "resolve_metrics_file",
    "set_registry",
    "span",
]
