"""Per-run metrics reports: phase shares, slowest jobs, cache ratios.

Renders the ``repro report-run <run-id>`` breakdown from a run's metrics
JSONL (see :mod:`repro.obs.export`): where the wall time went per phase,
which jobs dominated it, how the caches performed, and how often retries
were needed. Pure formatting over the exported rows — no engine imports,
so the report can be generated long after (and far away from) the run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.obs.export import MetricsExportError, load_run, metrics_path
from repro.obs.metrics import MetricsRegistry

#: Phase display order (anything unknown renders after these).
_PHASE_ORDER = ("queue_wait", "setup", "trace_load", "kernel", "serialize")


def merged_registry(run: dict) -> MetricsRegistry:
    """One registry holding the sum of every grid snapshot in the run."""
    registry = MetricsRegistry()
    for grid in run["grids"]:
        registry.merge(grid.get("registry"))
    return registry


def _phase_totals(rows: List[dict]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for row in rows:
        wait = row.get("queue_wait") or 0.0
        if wait:
            totals["queue_wait"] = totals.get("queue_wait", 0.0) + wait
        for name, seconds in (row.get("phases") or {}).items():
            totals[name] = totals.get(name, 0.0) + seconds
    return totals


def _ordered_phases(totals: Dict[str, float]) -> List[Tuple[str, float]]:
    known = [(name, totals[name]) for name in _PHASE_ORDER if name in totals]
    extra = sorted(
        (item for item in totals.items() if item[0] not in _PHASE_ORDER),
        key=lambda item: -item[1],
    )
    return known + extra


def _status(row: dict) -> str:
    if row.get("status"):
        return row["status"]
    return "ok" if row.get("ok") else "failed"


def _counter(registry: MetricsRegistry, name: str) -> float:
    return registry.counter(name).value


def _ratio_line(label: str, hits: float, misses: float) -> Optional[str]:
    lookups = hits + misses
    if not lookups:
        return None
    return (
        f"  {label:<14} {int(hits)} hit / {int(lookups)} lookups "
        f"({100.0 * hits / lookups:.1f}%)"
    )


def render_run_report(run: dict, top: int = 10) -> str:
    """The full per-run breakdown as printable text."""
    rows = run["jobs"]
    lines: List[str] = []
    executed = [r for r in rows if _status(r) in ("ok", "failed")]
    cached = sum(1 for r in rows if _status(r) == "cached")
    replayed = sum(1 for r in rows if _status(r) == "replayed")
    failed = sum(1 for r in rows if _status(r) == "failed")
    quarantined = sum(1 for r in rows if "quarantined" in (r.get("error") or ""))
    wall = sum(r.get("seconds") or 0.0 for r in rows)
    lines.append(f"run {run.get('run_id') or '<unknown>'}")
    lines.append(
        f"  {len(rows)} jobs: {len(rows) - failed} ok, {failed} failed "
        f"({quarantined} quarantined), {cached} cached, {replayed} replayed"
    )
    lines.append(f"  {wall:.2f}s total job wall time across {len(run['grids'])} grid(s)")

    totals = _phase_totals(rows)
    phase_sum = sum(totals.values())
    if totals:
        lines.append("")
        lines.append("phase time shares")
        for name, seconds in _ordered_phases(totals):
            share = 100.0 * seconds / phase_sum if phase_sum else 0.0
            lines.append(f"  {name:<12} {seconds:9.3f}s  {share:5.1f}%")

    slowest = sorted(executed, key=lambda r: -(r.get("seconds") or 0.0))[:top]
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} slowest jobs")
        for rank, row in enumerate(slowest, start=1):
            tag = _status(row)
            attempts = row.get("attempts") or 1
            extra = f" x{attempts}" if attempts > 1 else ""
            worker = row.get("worker")
            where = f" w{worker}" if worker is not None else ""
            lines.append(
                f"  {rank:2d}. {row.get('seconds') or 0.0:8.3f}s  "
                f"{row.get('describe') or row.get('job')}  [{tag}{extra}{where}]"
            )

    attempts_hist: Dict[int, int] = {}
    for row in rows:
        n = int(row.get("attempts") or 1)
        attempts_hist[n] = attempts_hist.get(n, 0) + 1
    if attempts_hist and (len(attempts_hist) > 1 or 1 not in attempts_hist):
        lines.append("")
        lines.append("retry histogram (attempts per job)")
        for n in sorted(attempts_hist):
            lines.append(f"  {n} attempt(s): {attempts_hist[n]} job(s)")

    registry = merged_registry(run)
    cache_lines = [
        _ratio_line(
            "result cache",
            _counter(registry, "result_cache.hit"),
            _counter(registry, "result_cache.miss"),
        ),
        _ratio_line(
            "trace store",
            _counter(registry, "trace_store.memory_hit")
            + _counter(registry, "trace_store.disk_hit"),
            _counter(registry, "trace_store.generate"),
        ),
    ]
    cache_lines = [line for line in cache_lines if line]
    if cache_lines:
        lines.append("")
        lines.append("cache ratios")
        lines.extend(cache_lines)
        quarantined_entries = _counter(registry, "result_cache.quarantined")
        if quarantined_entries:
            lines.append(f"  {int(quarantined_entries)} corrupt cache entrie(s) quarantined")

    pool_bits = []
    peak = registry.gauge("pool.workers.live").value
    if peak:
        pool_bits.append(f"peak {int(peak)} live worker(s)")
    respawns = _counter(registry, "pool.respawns")
    if respawns:
        pool_bits.append(f"{int(respawns)} respawn(s)")
    retries = _counter(registry, "retry.scheduled")
    if retries:
        pool_bits.append(f"{int(retries)} retry(ies) scheduled")
    quarantines = _counter(registry, "jobs.quarantined")
    if quarantines:
        pool_bits.append(f"{int(quarantines)} job(s) quarantined")
    if pool_bits:
        lines.append("")
        lines.append("pool health")
        lines.append("  " + ", ".join(pool_bits))

    return "\n".join(lines)


def resolve_metrics_file(run_id: str, journal_dir: Optional[str] = None) -> str:
    """Locate the metrics file for ``run_id``: a direct path wins, else
    ``<journal_dir>/<run-id>.metrics.jsonl``."""
    if os.path.isfile(run_id):
        return run_id
    candidate = metrics_path(journal_dir or ".", run_id)
    if os.path.isfile(candidate):
        return candidate
    raise MetricsExportError(
        f"no metrics file for run {run_id!r} "
        f"(looked for {candidate}; pass --journal-dir or a direct path)"
    )


def report_run(run_id: str, journal_dir: Optional[str] = None, top: int = 10) -> str:
    """Load and render the report for one run id (or metrics file path)."""
    path = resolve_metrics_file(run_id, journal_dir)
    return render_run_report(load_run(path), top=top)
