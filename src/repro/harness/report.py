"""EXPERIMENTS.md generator: paper-vs-measured for every table and figure.

``python -m repro.harness report [--cap N] [--out EXPERIMENTS.md]`` runs
every experiment and writes a single markdown report with the reproduced
tables, the paper's published numbers, and automatic shape commentary —
so the document in the repository is regenerable from one command.
"""

from __future__ import annotations

from typing import List

from repro.harness.experiments import EXPERIMENTS, TraceSource, as_engine, run_experiment
from repro.harness.paper_data import PAPER_TABLE4
from repro.harness.runner import DEFAULT_CAP
from repro.workloads.suite import all_workloads

_PREAMBLE = """# EXPERIMENTS — paper vs. measured

Reproduction record for Austin & Sohi, *Dynamic Dependency Analysis of
Ordinary Programs* (ISCA 1992). Regenerate with:

```bash
python -m repro.harness report --cap {cap} --out EXPERIMENTS.md
```

Setup: each workload is a SPEC-analog MiniC program compiled by this
repository's compiler and traced on its simulator; the first {cap:,}
dynamic instructions are analyzed (the paper analyzed up to 100M MIPS
instructions per benchmark, ~400x more). **Absolute values are therefore
not comparable; shapes are.** The per-experiment notes state which shape
properties the paper reports and whether they hold here; the same
properties are asserted mechanically by `benchmarks/`.

Workload key: every workload name is the SPEC benchmark it mirrors plus
`x` (e.g. `matrix300x` ~ `matrix300`); DESIGN.md section 5 documents how
each analog reproduces its original's dependency character.
"""

_SECTIONS = [
    (
        "table1",
        "Table 1 — Instruction class operation times",
        "Configuration, not measurement: our latency table equals the "
        "paper's exactly (asserted).",
    ),
    (
        "table2",
        "Table 2 — Workloads analyzed",
        "Stands in for the paper's benchmark inventory. Our full runs are "
        "10^2-10^4x shorter than SPEC's (the simulator and analyzer are "
        "pure Python); the analysis cap column mirrors the paper's 100M "
        "truncation policy.",
    ),
    (
        "table3",
        "Table 3 — Dataflow limit (conservative vs. optimistic syscalls)",
        None,  # generated dynamically below
    ),
    (
        "fig7",
        "Figure 7 — Parallelism profiles",
        "The paper's reading — parallelism is bursty, with bursts of many "
        "operations per level between droughts — is quantified here by the "
        "coefficient of variation; ASCII renderings and CSV series for all "
        "ten profiles are written to results/ by the fig7 benchmark.",
    ),
    (
        "table4",
        "Table 4 — Renaming conditions (the paper's centerpiece)",
        None,
    ),
    (
        "fig8",
        "Figure 8 — Window size vs. exposed parallelism",
        "Paper findings reproduced: exposure is monotone in window size; "
        "windows of a few hundred instructions yield modest parallelism "
        "for every workload; low-ILP programs saturate by ~10^3-10^4 while "
        "high-ILP programs are still climbing at the largest windows.",
    ),
    (
        "lifetimes",
        "Section 2.3 — Value lifetimes and degree of sharing",
        "The paper describes these distributions as obtainable from the "
        "DDG without publishing numbers; recorded here for completeness.",
    ),
    (
        "abl-resources",
        "Ablation — functional-unit limits (generalizes Figure 4)",
        "Available parallelism is capped by and monotone in the FU count, "
        "as the Figure 4 example implies.",
    ),
    (
        "abl-branch",
        "Ablation — branch-prediction firewalls",
        "The paper argues real predictors cannot expose hundreds of "
        "instructions; under misprediction firewalls every predictor falls "
        "below the perfect-control numbers published in the paper.",
    ),
    (
        "abl-twopass",
        "Ablation — trace-processing method 1 vs. method 2 (section 3.2)",
        "Identical analyses; the reverse-annotated pass shrinks the live "
        "well's working set (the paper needed 32 MB with method 2).",
    ),
    (
        "abl-baselines",
        "Baselines — prior work (section 3.1)",
        "The average-only (Wall/Tjaden-Flynn-style) reimplementation "
        "agrees with Paragraph exactly on every trace; Kumar-style "
        "statement granularity bundles several instructions per node, "
        "hiding intra-statement parallelism as the paper argues.",
    ),
    (
        "abl-disambiguation",
        "Ablation — memory disambiguation (section 3.1 axis)",
        "Losing alias information costs each workload a large factor of "
        "its parallelism, reproducing the perfect-vs-none spread of the "
        "earlier limit studies the paper cites.",
    ),
    (
        "abl-latency",
        "Ablation — operation latencies (section 3.1 axis)",
        "Latency scaling shifts available parallelism per workload in the "
        "direction of its bottleneck: chain-bound workloads lose, "
        "wide workloads gain levels to fill.",
    ),
    (
        "machines",
        "Machine models — throttling the DDG (section 2.3)",
        "The paper's 'suitably constrained DDG' idea as named presets: the "
        "same trace analyzed under a scalar pipeline, two superscalar "
        "cores, a windowed dataflow machine, and the paper's ideal "
        "abstract machine. Each class strictly dominates the weaker ones.",
    ),
    (
        "abl-compiler",
        "Ablation — compiler optimization (section 3.2, caveat 2)",
        "The paper warns that the compiler exerts a second-order effect on "
        "measured parallelism, citing MIPS loop unrolling weakening the "
        "loop-counter recurrences. Our optimizer reproduces exactly that: "
        "with 2-4x unrolling (plus folding, simplification and strength "
        "reduction) the counter-bound workloads gain parallelism while "
        "chain-bound ones barely move.",
    ),
]


def _table3_commentary(output) -> str:
    rows = {row[0]: row for row in output.tables[0].rows}
    parallelism = {name: row[3] for name, row in rows.items()}
    spread = max(parallelism.values()) / min(parallelism.values())
    lowest = min(parallelism, key=parallelism.get)
    worst_error = max(row[6] for row in rows.values())
    return (
        f"Paper shape checks: available parallelism spans a factor of "
        f"{spread:,.0f} across the suite (paper: 13.28 to 23,302); the "
        f"least-parallel workload is `{lowest}` (paper: xlisp, for the "
        f"interpreter-recurrence reason discussed in section 4); the "
        f"conservative-syscall measurement error peaks at "
        f"{worst_error:.2f} (paper: 0.32). Our syscall-error columns are "
        f"larger than the paper's for the bursty FP workloads because a "
        f"{DEFAULT_CAP:,}-instruction window amortizes each firewall over "
        f"far fewer instructions than 100M."
    )


def _table4_commentary(output) -> str:
    rows = {row[0]: row[1:5] for row in output.tables[0].rows}
    by_analog = {w.name: w.analog_of for w in all_workloads()}
    lines = [
        "Per-workload shape vs. the paper (ratios of adjacent renaming "
        "levels; the paper's ratios in parentheses):",
        "",
    ]
    for name, (none, regs, stack, full) in rows.items():
        paper = PAPER_TABLE4[by_analog[name]]
        ratio_stack = stack / regs if regs else float("nan")
        ratio_full = full / stack if stack else float("nan")
        paper_stack = paper[2] / paper[1]
        paper_full = paper[3] / paper[2]
        lines.append(
            f"- `{name}`: stack-renaming gain {ratio_stack:.1f}x "
            f"({paper_stack:.1f}x), memory-renaming gain {ratio_full:.1f}x "
            f"({paper_full:.1f}x)"
        )
    lines.append("")
    lines.append(
        "The qualitative pattern matches the paper row for row: nothing "
        "without renaming; registers recover most programs; the FORTRAN "
        "analogs (matrix300x/tomcatvx/doducx) additionally need the stack "
        "renamed; espressox/fppppx need full memory renaming; "
        "naskerx/xlispx are insensitive beyond registers. Magnitudes are "
        "compressed relative to the paper because short traces bound the "
        "attainable parallelism (a 250k-instruction trace cannot show "
        "23,000-wide levels) and our workloads are analogs."
    )
    return "\n".join(lines)


def generate_report(cap: int = DEFAULT_CAP, source: TraceSource = None) -> str:
    """Run every experiment and render the markdown report."""
    store = as_engine(source)
    parts: List[str] = [_PREAMBLE.format(cap=cap)]
    for name, title, commentary in _SECTIONS:
        output = run_experiment(name, store, cap)
        parts.append(f"## {title}\n")
        if name == "table3":
            commentary = _table3_commentary(output)
        elif name == "table4":
            commentary = _table4_commentary(output)
        if commentary:
            parts.append(commentary + "\n")
        for table in output.tables:
            parts.append("```\n" + table.render() + "\n```\n")
    unused = set(EXPERIMENTS) - {name for name, _, _ in _SECTIONS}
    assert not unused, f"experiments missing from the report: {unused}"
    return "\n".join(parts)


def write_report(path: str, cap: int = DEFAULT_CAP, source: TraceSource = None) -> None:
    """Generate and write the report to ``path``."""
    with open(path, "w") as handle:
        handle.write(generate_report(cap, source))
