"""Trace generation with caching.

Every experiment analyzes the same capped traces under different Paragraph
configurations (the paper likewise captured a Pixie trace once and reran
the analyzer). The store keeps traces in memory for the process lifetime
and optionally persists them to disk in the binary trace format.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.trace.buffer import TraceBuffer
from repro.trace.io import read_trace_file, write_trace_file
from repro.workloads.suite import load_workload

#: The paper analyzed at most 100M instructions per benchmark; our default
#: budget scales that to pure-Python analysis speeds.
DEFAULT_CAP = 250_000


class TraceStore:
    """Caches workload traces by (name, cap)."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[Tuple[str, int], TraceBuffer] = {}
        self._lengths: Dict[str, int] = {}
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _path(self, name: str, cap: int) -> Optional[str]:
        if not self.directory:
            return None
        return os.path.join(self.directory, f"{name}.{cap}.pgt")

    def trace(self, workload, cap: int = DEFAULT_CAP) -> TraceBuffer:
        """The first ``cap`` dynamic instructions of ``workload``."""
        if isinstance(workload, str):
            workload = load_workload(workload)
        key = (workload.name, cap)
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        path = self._path(workload.name, cap)
        if path and os.path.exists(path):
            trace = read_trace_file(path)
        else:
            trace = workload.trace(max_instructions=cap)
            if path:
                write_trace_file(path, trace)
        self._memory[key] = trace
        return trace

    def full_run_length(self, workload) -> int:
        """Dynamic instruction count of the complete (untraced) run — the
        paper's "Total Instructions in Trace" column."""
        if isinstance(workload, str):
            workload = load_workload(workload)
        cached = self._lengths.get(workload.name)
        if cached is not None:
            return cached
        result, _ = workload.run(max_instructions=20_000_000, trace=False)
        self._lengths[workload.name] = result.executed
        return result.executed


#: Shared default store (in-memory only).
DEFAULT_STORE = TraceStore()


def workload_trace(name: str, cap: int = DEFAULT_CAP) -> TraceBuffer:
    """Convenience accessor against the default store."""
    return DEFAULT_STORE.trace(name, cap)
