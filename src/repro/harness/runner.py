"""Trace generation with caching.

Every experiment analyzes the same capped traces under different Paragraph
configurations (the paper likewise captured a Pixie trace once and reran
the analyzer). The store keeps traces in memory for the process lifetime
and optionally persists them to disk in the binary trace format; the
parallel engine shares that on-disk cache with its worker processes so a
multi-hundred-thousand-record buffer is never pickled per job.

Disk-cache integrity: trace files embed a format version and content
digest (see :mod:`repro.trace.io`). A stale, truncated, or corrupted
cache file raises :class:`~repro.trace.io.TraceFormatError` on read; the
store logs a warning and regenerates it from the workload — loud recovery
instead of silently analyzing corrupt records.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, Optional, Tuple

from repro.obs import metrics as obs
from repro.obs.spans import span
from repro.trace.buffer import TraceBuffer
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import (
    TraceFormatError,
    read_trace_digest,
    read_trace_file,
    write_trace_file,
)
from repro.workloads.suite import load_workload

logger = logging.getLogger(__name__)

#: The paper analyzed at most 100M instructions per benchmark; our default
#: budget scales that to pure-Python analysis speeds.
DEFAULT_CAP = 250_000


class TraceStore:
    """Caches workload traces by (name, cap, optimized)."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[Tuple[str, int, bool], TraceBuffer] = {}
        self._columnar: Dict[Tuple[str, int, bool], ColumnarTrace] = {}
        self._lengths: Dict[str, int] = {}
        if directory:
            os.makedirs(directory, exist_ok=True)

    def persist_to(self, directory: str) -> None:
        """Attach (or switch) the on-disk cache directory. The engine calls
        this with a scratch directory when a parallel run needs disk-shared
        traces but the store was created memory-only."""
        os.makedirs(directory, exist_ok=True)
        self.directory = directory

    def _path(self, name: str, cap: int, optimize: bool = False) -> Optional[str]:
        if not self.directory:
            return None
        suffix = ".opt" if optimize else ""
        return os.path.join(self.directory, f"{name}.{cap}{suffix}.pgt")

    def trace(self, workload, cap: int = DEFAULT_CAP, optimize: bool = False) -> TraceBuffer:
        """The first ``cap`` dynamic instructions of ``workload``."""
        if isinstance(workload, str):
            workload = load_workload(workload)
        key = (workload.name, cap, optimize)
        cached = self._memory.get(key)
        if cached is not None:
            obs.inc("trace_store.memory_hit")
            return cached
        path = self._path(workload.name, cap, optimize)
        trace = None
        if path and os.path.exists(path):
            try:
                with span("trace_decode"):
                    trace = read_trace_file(path)
            except TraceFormatError as error:
                logger.warning(
                    "stale trace cache %s (%s); regenerating", path, error
                )
                trace = None
            else:
                if len(trace) > cap:
                    logger.warning(
                        "trace cache %s holds %d records for cap %d; regenerating",
                        path, len(trace), cap,
                    )
                    trace = None
        if trace is None:
            obs.inc("trace_store.generate")
            with span("trace_generate"):
                trace = workload.trace(max_instructions=cap, optimize=optimize)
            if path:
                write_trace_file(path, trace)
        else:
            obs.inc("trace_store.disk_hit")
        self._memory[key] = trace
        return trace

    def columnar(
        self, workload, cap: int = DEFAULT_CAP, optimize: bool = False
    ) -> ColumnarTrace:
        """The columnar form of a workload trace, cached per store.

        Built by flattening the in-memory buffer when one exists, else
        decoded straight from the on-disk ``.pgt`` file (no per-record
        tuples); a missing or stale file falls back through :meth:`trace`,
        which regenerates it. Either way the content digest is the same as
        the buffer/file digest, so result-cache keys are representation-
        independent.
        """
        name = workload if isinstance(workload, str) else workload.name
        key = (name, cap, optimize)
        cached = self._columnar.get(key)
        if cached is not None:
            obs.inc("trace_store.memory_hit")
            return cached
        obs.inc("trace_store.columnar_build")
        columnar = None
        buffer = self._memory.get(key)
        if buffer is not None:
            columnar = ColumnarTrace.from_buffer(buffer)
        else:
            path = self._path(name, cap, optimize)
            if path and os.path.exists(path):
                try:
                    with span("trace_decode"):
                        columnar = ColumnarTrace.from_file(path)
                except TraceFormatError as error:
                    logger.warning(
                        "stale trace cache %s (%s); regenerating", path, error
                    )
                else:
                    if len(columnar) > cap:
                        logger.warning(
                            "trace cache %s holds %d records for cap %d; regenerating",
                            path, len(columnar), cap,
                        )
                        columnar = None
            if columnar is None:
                columnar = ColumnarTrace.from_buffer(self.trace(workload, cap, optimize))
        self._columnar[key] = columnar
        return columnar

    def ensure_on_disk(
        self, workload, cap: int = DEFAULT_CAP, optimize: bool = False
    ) -> Tuple[str, str]:
        """Materialize a trace in the disk cache; returns ``(path, digest)``.

        Used by the parallel engine: workers receive the path and load the
        trace themselves, and the digest keys the result cache. When the
        file already exists and is wanted cold (not yet in memory), only
        its header is read — the digest comes for free without touching
        the record stream.
        """
        if not self.directory:
            raise ValueError("ensure_on_disk requires a disk-backed TraceStore")
        if isinstance(workload, str):
            workload = load_workload(workload)
        path = self._path(workload.name, cap, optimize)
        key = (workload.name, cap, optimize)
        cached = self._memory.get(key)
        if cached is not None:
            digest = cached.digest()
            on_disk = None
            if os.path.exists(path):
                try:
                    on_disk = read_trace_digest(path)
                except TraceFormatError:
                    on_disk = None
            if on_disk != digest:
                write_trace_file(path, cached)
            return path, digest
        if os.path.exists(path):
            try:
                return path, read_trace_digest(path)
            except TraceFormatError as error:
                logger.warning(
                    "stale trace cache %s (%s); regenerating", path, error
                )
        trace = self.trace(workload, cap, optimize)
        return path, trace.digest()

    def invalidate(self, workload, cap: int = DEFAULT_CAP, optimize: bool = False) -> bool:
        """Drop every cached form of one trace — memory buffer, columnar
        view, and the on-disk ``.pgt`` file — so the next request
        regenerates it from the workload. The resilience layer calls this
        before retrying a job that failed on a truncated or corrupted
        cached trace; returns ``True`` when anything was actually
        dropped."""
        name = workload if isinstance(workload, str) else workload.name
        key = (name, cap, optimize)
        dropped = self._memory.pop(key, None) is not None
        dropped = (self._columnar.pop(key, None) is not None) or dropped
        path = self._path(name, cap, optimize)
        if path and os.path.exists(path):
            try:
                os.remove(path)
                dropped = True
                logger.warning("invalidated cached trace %s", path)
            except OSError:
                pass
        return dropped

    def full_run_length(self, workload) -> int:
        """Dynamic instruction count of the complete (untraced) run — the
        paper's "Total Instructions in Trace" column."""
        if isinstance(workload, str):
            workload = load_workload(workload)
        cached = self._lengths.get(workload.name)
        if cached is not None:
            return cached
        result, _ = workload.run(max_instructions=20_000_000, trace=False)
        self._lengths[workload.name] = result.executed
        return result.executed


#: Shared default store (in-memory only).
DEFAULT_STORE = TraceStore()


def workload_trace(name: str, cap: int = DEFAULT_CAP) -> TraceBuffer:
    """Convenience accessor against the default store."""
    return DEFAULT_STORE.trace(name, cap)
