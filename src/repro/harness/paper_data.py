"""Published numbers from the paper, for side-by-side comparison columns.

Keyed by the SPEC benchmark name (our workloads carry ``analog_of``).
Sources: Tables 2, 3 and 4 of Austin & Sohi (ISCA 1992).
"""

#: Table 3: (syscalls, conservative CP, conservative AP, optimistic CP,
#: optimistic AP, max measurement error)
PAPER_TABLE3 = {
    "cc1": (3991, 1_321_698, 36.21, 903_622, 52.95, 0.32),
    "doduc": (428, 877_872, 103.59, 848_052, 107.22, 0.03),
    "eqntott": (44, 109_088, 782.52, 78_774, 942.35, 0.16),
    "espresso": (91, 742_678, 132.97, 560_225, 176.26, 0.25),
    "fpppp": (30, 49_240, 1999.86, 48_484, 2032.78, 0.02),
    "matrix300": (34, 4_191, 23302.60, 2_839, 33748.58, 0.31),
    "nasker": (23, 1_885_077, 50.97, 1_884_388, 50.99, 0.00),
    "spice2g6": (1849, 746_124, 111.45, 600_633, 138.44, 0.19),
    "tomcatv": (24, 17_008, 5806.13, 14_559, 6800.33, 0.15),
    "xlisp": (3470, 5_650_548, 13.28, 5_640_833, 13.30, 0.00),
}

#: Table 4: AP under (no renaming, regs renamed, regs+stack, regs+mem)
PAPER_TABLE4 = {
    "cc1": (3.65, 33.70, 36.19, 36.21),
    "doduc": (1.62, 29.97, 103.59, 103.59),
    "eqntott": (3.67, 532.69, 538.87, 782.52),
    "espresso": (2.53, 42.46, 42.49, 132.97),
    "fpppp": (1.69, 18.34, 81.32, 1999.86),
    "matrix300": (2.05, 1235.74, 23302.59, 23302.60),
    "nasker": (2.58, 50.84, 50.85, 50.97),
    "spice2g6": (1.85, 39.67, 57.36, 111.45),
    "tomcatv": (1.52, 66.63, 5772.38, 5806.13),
    "xlisp": (3.32, 13.27, 13.28, 13.28),
}

#: Table 2: (total instructions in trace, instructions analyzed)
PAPER_TABLE2 = {
    "cc1": (59_313_327, 59_313_327),
    "doduc": (1_619_374_300, 100_000_000),
    "eqntott": (1_241_913_236, 100_000_000),
    "espresso": (119_134_865, 119_134_865),
    "fpppp": (2_396_679_406, 100_000_000),
    "matrix300": (2_766_534_109, 100_000_000),
    "nasker": (919_571_920, 100_000_000),
    "spice2g6": (28_696_843_509, 100_000_000),
    "tomcatv": (1_872_460_468, 100_000_000),
    "xlisp": (1_234_252_567, 100_000_000),
}
