"""Plain-text table and CSV rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def _format_cell(value, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 10000:
            return f"{value:,.1f}"
        return format(value, floatfmt)
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class Table:
    """One experiment table, renderable as text or CSV."""

    title: str
    headers: List[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells) -> None:
        """Append one row."""
        self.rows.append(list(cells))

    def render(self, floatfmt: str = ".2f") -> str:
        """Monospace rendering with aligned columns."""
        cells = [[_format_cell(c, floatfmt) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting needed for our content)."""
        out = [",".join(self.headers)]
        for row in self.rows:
            out.append(",".join(str(c) for c in row))
        return "\n".join(out)
