"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.experiments import EXPERIMENTS, ExperimentOutput, run_experiment
from repro.harness.runner import DEFAULT_CAP, TraceStore, workload_trace
from repro.harness.tables import Table

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "run_experiment",
    "DEFAULT_CAP",
    "TraceStore",
    "workload_trace",
    "Table",
]
