"""Command-line interface: ``paragraph`` (or ``python -m repro.harness``).

Subcommands:

- ``list`` — available experiments and workloads;
- ``run`` — run experiments and print/save their tables;
- ``analyze`` — ad-hoc Paragraph analysis of one workload under explicit
  switches (the direct equivalent of invoking the original tool);
- ``verify`` — property-based differential verification of the analyzer
  implementations (see :mod:`repro.verify`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.engine import ExperimentEngine, console_listener
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.runner import DEFAULT_CAP, TraceStore
from repro.workloads.suite import SUITE_NAMES, load_workload


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="analysis worker processes (1 = in-process serial, the "
        "debuggable default)",
    )
    parser.add_argument(
        "--result-cache",
        help="directory for the content-addressed result cache; repeated "
        "runs with the same traces and configs skip recompute entirely",
    )
    parser.add_argument(
        "--result-cache-max-bytes",
        metavar="SIZE",
        default=None,
        help="size budget for --result-cache (bytes, or with a K/M/G "
        "suffix); stores past the budget evict least-recently-used "
        "entries (default: unbounded)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-job wall-clock limit in seconds (a stuck job fails alone; "
        "the rest of the grid continues)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed analysis job (stderr)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per job for transient failures (worker crash, "
        "timeout, shm attach, IO), with exponential backoff; a job still "
        "failing afterwards is quarantined (default: 2, 0 disables)",
    )
    parser.add_argument(
        "--journal-dir",
        help="directory for append-only run journals; outcomes are "
        "journaled as they land so an interrupted grid can be resumed "
        "with --resume <run-id>",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_ID",
        help="resume a journaled run: completed jobs replay from the "
        "journal, only the remainder re-executes (requires --journal-dir)",
    )
    fail_mode = parser.add_mutually_exclusive_group()
    fail_mode.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the grid at the first unretryable job failure",
    )
    fail_mode.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="run every job even when some fail (default)",
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="collect per-phase timings and cache/pool counters, exported "
        "as JSONL (default path: <journal-dir>/<run-id>.metrics.jsonl; "
        "render it later with 'report-run')",
    )


def _parse_cache_budget(args) -> Optional[int]:
    if args.result_cache_max_bytes is None:
        return None
    if not args.result_cache:
        raise SystemExit("--result-cache-max-bytes requires --result-cache")
    from repro.engine.cache import parse_size

    try:
        return parse_size(args.result_cache_max_bytes)
    except ValueError as error:
        raise SystemExit(f"--result-cache-max-bytes: {error}") from None


def _build_engine(args) -> ExperimentEngine:
    if args.resume and not args.journal_dir:
        raise SystemExit("--resume requires --journal-dir")
    engine = ExperimentEngine(
        store=TraceStore(args.trace_dir),
        jobs=args.jobs,
        result_cache=args.result_cache,
        result_cache_max_bytes=_parse_cache_budget(args),
        timeout=args.job_timeout,
        progress=console_listener() if args.progress else None,
        retries=args.retries,
        journal_dir=args.journal_dir,
        resume=args.resume,
        fail_fast=args.fail_fast,
        metrics=args.metrics is not None or None,
        metrics_path=args.metrics or None,
    )
    if engine.run_id:
        verb = "resuming" if args.resume else "journaling"
        print(f"{verb} run {engine.run_id} (journal: {args.journal_dir})", file=sys.stderr)
    if engine.metrics:
        print(f"metrics: {engine.metrics_file}", file=sys.stderr)
    return engine


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="paragraph",
        description=(
            "Dynamic dependency analysis of ordinary programs "
            "(Austin & Sohi, ISCA 1992 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads")

    run = sub.add_parser("run", help="run experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids (or 'all'): {', '.join(EXPERIMENTS)}",
    )
    run.add_argument("--cap", type=int, default=DEFAULT_CAP, help="instruction cap")
    run.add_argument("--out", help="directory for .txt/.csv artifacts")
    run.add_argument(
        "--trace-dir", help="directory for cached binary traces (reused across runs)"
    )
    _add_engine_arguments(run)

    report = sub.add_parser(
        "report", help="run every experiment and write EXPERIMENTS.md"
    )
    report.add_argument("--cap", type=int, default=DEFAULT_CAP)
    report.add_argument("--out", default="EXPERIMENTS.md")
    report.add_argument("--trace-dir", help="directory for cached binary traces")
    _add_engine_arguments(report)

    serve = sub.add_parser(
        "serve",
        help="run the analysis job server (async HTTP/JSON over one "
        "engine pool; see repro.serve)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    serve.add_argument(
        "--port",
        type=int,
        default=8037,
        help="bind port; 0 picks an ephemeral port (default: %(default)s)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, help="engine worker processes (default: 1)"
    )
    serve.add_argument("--trace-dir", help="directory for cached binary traces")
    serve.add_argument(
        "--result-cache",
        help="shared result-cache directory (dedupes identical work across "
        "server restarts and sibling processes)",
    )
    serve.add_argument(
        "--result-cache-max-bytes",
        metavar="SIZE",
        default=None,
        help="size budget for --result-cache (bytes or K/M/G suffix)",
    )
    serve.add_argument(
        "--journal-dir",
        help="run-journal directory; a drained server's run resumes with --resume",
    )
    serve.add_argument(
        "--resume", metavar="RUN_ID", help="resume a journaled run's completed jobs"
    )
    serve.add_argument(
        "--retries", type=int, default=2, help="transient-failure retries per job"
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, help="per-job wall-clock limit (s)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="bounded submission queue size; a full queue answers 429 "
        "(default: %(default)s)",
    )
    serve.add_argument(
        "--batch",
        type=int,
        default=None,
        help="jobs dispatched per engine grid (default: --jobs)",
    )
    serve.add_argument(
        "--no-metrics",
        dest="metrics",
        action="store_false",
        help="disable the repro.obs metrics registry and per-run export",
    )
    serve.add_argument(
        "--port-file",
        help="write a JSON {host, port, pid, run_id} document here once "
        "listening (subprocess port discovery)",
    )
    serve.add_argument(
        "--keepalive-timeout",
        type=float,
        default=75.0,
        metavar="SECONDS",
        help="close idle keep-alive connections after this long; 0 "
        "disables the timeout (default: %(default)s)",
    )
    serve.add_argument(
        "--upload-budget",
        metavar="SIZE",
        default=None,
        help="byte budget for uploaded traces held in memory; LRU uploads "
        "not referenced by live jobs are evicted past it (bytes or K/M/G "
        "suffix; default: 256M)",
    )

    report_run = sub.add_parser(
        "report-run",
        help="render the metrics report for a recorded run "
        "(requires the run to have executed with --metrics)",
    )
    report_run.add_argument(
        "run_id",
        help="a run id (looked up under --journal-dir) or a direct path "
        "to a .metrics.jsonl file",
    )
    report_run.add_argument(
        "--journal-dir",
        default=".",
        help="directory holding <run-id>.metrics.jsonl files (default: .)",
    )
    report_run.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest jobs to list (default: 10)",
    )

    verify = sub.add_parser(
        "verify",
        help="property-based differential verification of the analyzers "
        "(random cases, metamorphic invariants, shrunk counterexamples)",
    )
    verify.add_argument("--seed", type=int, default=0, help="root seed (default: 0)")
    verify.add_argument(
        "--cases", type=int, default=200, help="generated cases (default: 200)"
    )
    verify.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="persist failing traces as generated, without greedy shrinking",
    )
    verify.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="analysis worker processes (1 = in-process; required for --mutate)",
    )
    verify.add_argument(
        "--artifact-dir",
        default="results/verify",
        help="where failing cases are persisted as replayable .pgt2 + .json "
        "pairs (default: %(default)s)",
    )
    verify.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many failing cases (default: %(default)s)",
    )
    verify.add_argument(
        "--replay",
        metavar="ARTIFACT",
        help="re-run verification on a persisted counterexample (.pgt2 or "
        ".json) instead of fuzzing",
    )
    verify.add_argument(
        "--mutate",
        metavar="NAME",
        help="self-test: run with a deliberately injected analyzer bug "
        "(see repro.verify.mutations; forces --jobs 1)",
    )
    verify.add_argument(
        "--progress", action="store_true", help="print per-case progress (stderr)"
    )
    verify.add_argument(
        "--focus",
        choices=["all", "shard", "backend"],
        default="all",
        help="narrow the per-case plan: 'shard' runs only the "
        "exact-vs-sharded streaming invariant; 'backend' diffs the "
        "vectorized numpy backend against the python kernels across a "
        "rename x window grid (default: all checks)",
    )

    adhoc = sub.add_parser("analyze", help="analyze one workload or trace file")
    adhoc.add_argument(
        "workload",
        help=f"a suite workload ({', '.join(SUITE_NAMES)}) or a .pgt/.pgt2 "
        "trace file",
    )
    adhoc.add_argument(
        "--cap",
        type=int,
        default=None,
        help=f"instruction cap (default: {DEFAULT_CAP}; --stream defaults "
        "to the whole trace instead)",
    )
    adhoc.add_argument(
        "--stream",
        action="store_true",
        help="analyze with bounded memory: the trace streams through "
        "window-aligned segments instead of loading whole (identical "
        "results; required for traces larger than memory)",
    )
    adhoc.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="RECORDS",
        help="records per segment for --stream (rounded up to a window "
        "multiple; default: 1Mi)",
    )
    adhoc.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for --stream: eligible configurations "
        "analyze segments in parallel and stitch (default: 1, sequential)",
    )
    adhoc.add_argument(
        "--backend",
        choices=["python", "numpy"],
        default="python",
        help="analysis backend: 'numpy' evaluates the placement rule over "
        "level-frontier batches when NumPy is available and the "
        "configuration is eligible, falling back to the python loops "
        "otherwise (identical results either way; default: python)",
    )
    adhoc.add_argument("--window", type=int, default=None)
    adhoc.add_argument(
        "--syscalls", choices=["conservative", "optimistic"], default="conservative"
    )
    adhoc.add_argument("--no-rename-registers", action="store_true")
    adhoc.add_argument("--no-rename-stack", action="store_true")
    adhoc.add_argument("--no-rename-data", action="store_true")
    adhoc.add_argument("--branch-predictor", default=None)
    adhoc.add_argument("--profile", action="store_true", help="print the ASCII profile")
    adhoc.add_argument("--lifetimes", action="store_true")
    return parser


def _command_list() -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    print("workloads:")
    for name in SUITE_NAMES:
        workload = load_workload(name)
        print(f"  {name:12s} ({workload.analog_of}): {workload.description}")
    return 0


def _command_run(args) -> int:
    from repro.engine.shutdown import graceful_flush

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    engine = _build_engine(args)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    with graceful_flush(engine):
        for name in names:
            output = run_experiment(name, engine, args.cap)
            text = output.render()
            print(text)
            print()
            if args.out:
                with open(os.path.join(args.out, f"{name}.txt"), "w") as handle:
                    handle.write(text + "\n")
                for index, table in enumerate(output.tables):
                    suffix = "" if len(output.tables) == 1 else f".{index}"
                    path = os.path.join(args.out, f"{name}{suffix}.csv")
                    with open(path, "w") as handle:
                        handle.write(table.to_csv() + "\n")
    if args.progress:
        print(engine.telemetry.summary(), file=sys.stderr)
    return 0


def _command_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    upload_budget = ServeConfig.upload_budget_bytes
    if args.upload_budget is not None:
        from repro.engine.cache import parse_size

        try:
            upload_budget = parse_size(args.upload_budget)
        except ValueError as error:
            raise SystemExit(f"--upload-budget: {error}") from None
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        result_cache=args.result_cache,
        result_cache_max_bytes=_parse_cache_budget(args),
        journal_dir=args.journal_dir,
        resume=args.resume,
        retries=args.retries,
        job_timeout=args.job_timeout,
        queue_limit=args.queue_limit,
        batch=args.batch,
        metrics=args.metrics,
        port_file=args.port_file,
        keepalive_timeout=args.keepalive_timeout or None,
        upload_budget_bytes=upload_budget,
    )
    if config.resume and not config.journal_dir:
        raise SystemExit("--resume requires --journal-dir")
    return run_server(config)


def _command_verify(args) -> int:
    from contextlib import nullcontext

    from repro.verify.artifacts import replay_artifact
    from repro.verify.harness import run_verification
    from repro.verify.mutations import MUTATIONS, apply_mutation

    if args.replay:
        failures = replay_artifact(args.replay)
        if not failures:
            print(f"replay {args.replay}: no longer fails")
            return 0
        print(f"replay {args.replay}: still failing")
        for failure in failures:
            print(f"  {failure}")
        return 1

    mutation = nullcontext()
    if args.mutate:
        if args.mutate not in MUTATIONS:
            print(
                f"error: unknown mutation {args.mutate!r}; "
                f"choose from {', '.join(sorted(MUTATIONS))}",
                file=sys.stderr,
            )
            return 2
        if args.jobs != 1:
            print(
                "note: --mutate forces --jobs 1 (mutations are in-process)",
                file=sys.stderr,
            )
            args.jobs = 1
        mutation = apply_mutation(args.mutate)

    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            if done % 50 == 0 or done == total:
                print(f"verify: {done}/{total} cases evaluated", file=sys.stderr)

    with mutation:
        summary = run_verification(
            seed=args.seed,
            cases=args.cases,
            shrink=args.shrink,
            artifact_dir=args.artifact_dir,
            jobs=args.jobs,
            max_failures=args.max_failures,
            progress=progress,
            focus=args.focus,
        )
    print(summary.describe())
    if args.mutate:
        # Self-test semantics: the injected bug MUST be caught.
        if summary.ok:
            print(
                f"error: mutation {args.mutate!r} was NOT caught", file=sys.stderr
            )
            return 1
        print(f"mutation {args.mutate!r} caught, as expected")
        return 0
    return 0 if summary.ok else 1


def _analyze_streamed(args, config: AnalysisConfig, is_file: bool):
    """The ``analyze --stream`` path: bounded-memory file streaming, with
    parallel sharding when ``--jobs`` and the config allow it. Suite
    workloads are traced to a scratch .pgt2 first so the same file
    machinery (manifest, segments, digests) covers both inputs."""
    import tempfile

    from repro.engine.shards import shard_analyze_file

    engine = None
    if args.jobs > 1:
        engine = ExperimentEngine(jobs=args.jobs)
    if is_file:
        if args.cap is not None:
            # A cap stops a sequential stream mid-file; the parallel path
            # analyzes whole segments and cannot honor one.
            from repro.core.stream import DEFAULT_CHUNK_RECORDS, stream_analyze_file

            return stream_analyze_file(
                args.workload,
                config,
                chunk_records=args.shard_size or DEFAULT_CHUNK_RECORDS,
                cap=args.cap,
                backend=args.backend,
            )
        return shard_analyze_file(
            args.workload,
            config,
            shard_size=args.shard_size,
            engine=engine,
            backend=args.backend,
        )
    from repro.trace.io import write_trace_file

    workload = load_workload(args.workload)
    cap = args.cap if args.cap is not None else DEFAULT_CAP
    trace = workload.trace(max_instructions=cap)
    with tempfile.TemporaryDirectory(prefix="paragraph-stream-") as scratch:
        path = os.path.join(scratch, f"{args.workload}.pgt2")
        write_trace_file(path, trace)
        return shard_analyze_file(
            path,
            config,
            shard_size=args.shard_size,
            engine=engine,
            backend=args.backend,
        )


def _command_analyze(args) -> int:
    config = AnalysisConfig(
        syscall_policy=args.syscalls,
        rename_registers=not args.no_rename_registers,
        rename_stack=not args.no_rename_stack,
        rename_data=not args.no_rename_data,
        window_size=args.window,
        branch_predictor=args.branch_predictor,
        collect_lifetimes=args.lifetimes,
    )
    is_file = args.workload.endswith((".pgt", ".pgt2"))
    if args.stream:
        result = _analyze_streamed(args, config, is_file)
    elif is_file:
        from repro.trace.io import read_trace_file

        cap = args.cap if args.cap is not None else DEFAULT_CAP
        trace = read_trace_file(args.workload).head(cap)
        result = analyze(trace, config, backend=args.backend)
    else:
        cap = args.cap if args.cap is not None else DEFAULT_CAP
        workload = load_workload(args.workload)
        trace = workload.trace(max_instructions=cap)
        result = analyze(trace, config, backend=args.backend)
    print(result.summary())
    print(f"  placed operations : {result.placed_operations:,}")
    print(f"  critical path     : {result.critical_path_length:,}")
    print(f"  available ILP     : {result.available_parallelism:.2f}")
    print(f"  syscalls/firewalls: {result.syscalls}/{result.firewalls}")
    print(f"  peak live well    : {result.peak_live_well:,}")
    if result.mispredictions:
        print(f"  mispredictions    : {result.mispredictions:,}")
    if args.profile and result.profile is not None:
        print(result.profile.ascii_plot())
    if args.lifetimes and result.lifetimes is not None:
        stats = result.lifetimes
        print(
            f"  lifetimes: mean={stats.mean_lifetime:.1f} "
            f"p90={stats.quantile_lifetime(0.9)} "
            f"sharing={stats.mean_sharing:.2f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "report":
        from repro.engine.shutdown import graceful_flush
        from repro.harness.report import write_report

        engine = _build_engine(args)
        with graceful_flush(engine):
            write_report(args.out, args.cap, engine)
        print(f"wrote {args.out}")
        return 0
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "verify":
        return _command_verify(args)
    if args.command == "report-run":
        from repro.obs.export import MetricsExportError
        from repro.obs.report import report_run

        try:
            print(report_run(args.run_id, journal_dir=args.journal_dir, top=args.top))
        except (OSError, MetricsExportError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    return _command_analyze(args)


if __name__ == "__main__":
    sys.exit(main())
