"""Experiment definitions: one function per paper table/figure + ablations.

Every function takes a trace source — a
:class:`~repro.harness.runner.TraceStore` or a fully configured
:class:`~repro.engine.ExperimentEngine` — plus an instruction cap, and
returns an :class:`ExperimentOutput`. The registry :data:`EXPERIMENTS` maps
experiment ids (``table3``, ``fig8``, ...) to their functions; the benchmark
suite and the CLI both dispatch through it.

Analysis structure: each experiment builds its full (workload x config)
grid of :class:`~repro.engine.AnalysisJob` specs up front and submits the
batch through :meth:`ExperimentEngine.analyze_grid`, so the same code runs
serially under ``--jobs 1`` and fans out to worker processes under
``--jobs N`` — and hits the on-disk result cache either way. Jobs are
ordered workload-major, keeping each worker's small trace LRU hot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.baselines.average_only import average_parallelism
from repro.baselines.kumar import statement_parallelism
from repro.core.config import CONSERVATIVE, OPTIMISTIC, AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.core.results import measurement_error
from repro.engine import AnalysisJob, ExperimentEngine
from repro.harness.paper_data import PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4
from repro.harness.runner import DEFAULT_CAP, TraceStore
from repro.harness.tables import Table
from repro.isa.opclasses import OpClass
from repro.trace.stats import compute_stats
from repro.workloads.suite import all_workloads

#: What experiment functions accept as their trace source.
TraceSource = Union[TraceStore, ExperimentEngine]


def as_engine(source: Optional[TraceSource]) -> ExperimentEngine:
    """Coerce a trace source to an engine (a bare store gets the serial,
    uncached engine — the behavior the store alone used to provide)."""
    if source is None:
        return ExperimentEngine()
    if isinstance(source, ExperimentEngine):
        return source
    return ExperimentEngine(store=source)


@dataclass
class ExperimentOutput:
    """Tables plus optional named text figures (ASCII plots)."""

    tables: List[Table]
    figures: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        parts = [table.render() for table in self.tables]
        for name, text in self.figures.items():
            parts.append(f"--- {name} ---\n{text}")
        return "\n\n".join(parts)


def _grid_by_workload(
    engine: ExperimentEngine, cap: int, configs: List[AnalysisConfig], **job_kwargs
):
    """Run the (workload x config) product grid; returns
    ``(workloads, {workload name: [result per config]})``."""
    workloads = all_workloads()
    grid = [
        AnalysisJob(workload.name, cap, config, **job_kwargs)
        for workload in workloads
        for config in configs
    ]
    results = engine.analyze_grid(grid)
    width = len(configs)
    by_workload = {
        workload.name: results[i * width : (i + 1) * width]
        for i, workload in enumerate(workloads)
    }
    return workloads, by_workload


# -- Table 1 -----------------------------------------------------------------


def table1_latencies(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Instruction class operation times (paper Table 1)."""
    paper = {
        OpClass.IALU: 1,
        OpClass.IMUL: 6,
        OpClass.IDIV: 12,
        OpClass.FADD: 6,
        OpClass.FMUL: 6,
        OpClass.FDIV: 12,
        OpClass.LOAD: 1,
        OpClass.STORE: 1,
        OpClass.SYSCALL: 1,
    }
    table = Table(
        "Table 1: Instruction Class Operation Times (DDG levels)",
        ["Operation class", "Steps (ours)", "Steps (paper)"],
    )
    ours = LatencyTable.default()
    for opclass, steps in paper.items():
        table.add_row(opclass.name, ours.steps[opclass], steps)
    table.notes = "Configured in repro.core.latency.LatencyTable.default()."
    return ExperimentOutput([table])


# -- Table 2 -----------------------------------------------------------------


def table2_suite(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Benchmark inventory (paper Table 2)."""
    engine = as_engine(source)
    table = Table(
        "Table 2: Workloads Analyzed",
        [
            "Workload",
            "Analog of",
            "Type",
            "Total instrs (full run)",
            "Instrs analyzed",
            "Syscall interval",
            "Branch %",
            "Paper total instrs",
        ],
    )
    for workload in all_workloads():
        trace = engine.trace(workload, cap)
        stats = compute_stats(trace)
        total = engine.store.full_run_length(workload)
        paper_total, _ = PAPER_TABLE2[workload.analog_of]
        table.add_row(
            workload.name,
            workload.analog_of,
            workload.category,
            total,
            len(trace),
            stats.syscall_interval,
            100.0 * stats.branches / max(stats.total, 1),
            paper_total,
        )
    table.notes = (
        "Analyzed instructions are taken from the start of each trace, as in "
        "the paper (its cap was 100M; ours scales to pure-Python analysis)."
    )
    return ExperimentOutput([table])


# -- Table 3 -----------------------------------------------------------------


def table3_dataflow(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Dataflow limit under conservative vs optimistic syscalls (Table 3)."""
    engine = as_engine(source)
    table = Table(
        "Table 3: Dataflow Results (all renaming on, unlimited window)",
        [
            "Workload",
            "Syscalls",
            "Cons CP",
            "Cons AP",
            "Opt CP",
            "Opt AP",
            "Max error",
            "Paper cons AP",
            "Paper error",
        ],
    )
    configs = [
        AnalysisConfig.dataflow_limit(CONSERVATIVE),
        AnalysisConfig.dataflow_limit(OPTIMISTIC),
    ]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        conservative, optimistic = results[workload.name]
        paper = PAPER_TABLE3[workload.analog_of]
        table.add_row(
            workload.name,
            conservative.syscalls,
            conservative.critical_path_length,
            conservative.available_parallelism,
            optimistic.critical_path_length,
            optimistic.available_parallelism,
            measurement_error(conservative, optimistic),
            paper[2],
            paper[5],
        )
    table.notes = (
        "AP = placed operations / critical path length. The conservative "
        "assumption firewalls every system call; comparing the two columns "
        "bounds the measurement error, as in the paper."
    )
    return ExperimentOutput([table])


# -- Figure 7 ----------------------------------------------------------------


def fig7_profiles(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Parallelism profiles (paper Figure 7), as ASCII plots + burstiness."""
    engine = as_engine(source)
    table = Table(
        "Figure 7 summary: Parallelism Profile Statistics",
        [
            "Workload",
            "Levels",
            "Mean ops/level",
            "Peak ops/level",
            "Burstiness (CV)",
        ],
    )
    figures = {}
    configs = [AnalysisConfig.dataflow_limit(CONSERVATIVE)]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        (result,) = results[workload.name]
        profile = result.profile
        table.add_row(
            workload.name,
            profile.depth,
            profile.average_parallelism,
            profile.max_width,
            profile.burstiness(),
        )
        figures[f"{workload.name} parallelism profile"] = profile.ascii_plot()
    table.notes = (
        "Conservative syscalls, full renaming, no window — the Figure 7 "
        "configuration. Burstiness is the coefficient of variation of "
        "per-level operation counts (the paper notes the profiles are bursty)."
    )
    return ExperimentOutput([table], figures)


# -- Table 4 -----------------------------------------------------------------

_RENAMING_CONFIGS = [
    ("No renaming", AnalysisConfig.no_renaming),
    ("Regs renamed", AnalysisConfig.registers_renamed),
    ("Regs/stack renamed", AnalysisConfig.registers_and_stack_renamed),
    ("Reg/mem renamed", AnalysisConfig),
]


def table4_renaming(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Available parallelism under the four renaming conditions (Table 4)."""
    engine = as_engine(source)
    table = Table(
        "Table 4: Available Parallelism under Different Renaming Conditions",
        ["Workload"]
        + [name for name, _ in _RENAMING_CONFIGS]
        + ["Paper (none/regs/r+s/full)"],
    )
    configs = [make() for _, make in _RENAMING_CONFIGS]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        values = [result.available_parallelism for result in results[workload.name]]
        paper = PAPER_TABLE4[workload.analog_of]
        table.add_row(
            workload.name,
            *values,
            "/".join(f"{v:g}" for v in paper),
        )
    table.notes = (
        "Conservative syscalls, unlimited window, no resource limits — the "
        "Table 4 configuration. Compare shapes: which renaming level "
        "unlocks each workload."
    )
    return ExperimentOutput([table])


# -- Figure 8 ----------------------------------------------------------------

#: Window sizes swept for Figure 8 (None = whole trace).
FIG8_WINDOWS = (1, 4, 16, 64, 256, 1024, 4096, 16384, None)


def fig8_window(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Window size vs percent of total available parallelism (Figure 8)."""
    engine = as_engine(source)
    headers = ["Workload"] + [
        "inf" if w is None else str(w) for w in FIG8_WINDOWS
    ]
    table = Table("Figure 8: Window Size vs % of Total Available Parallelism", headers)
    absolute = Table(
        "Figure 8 (absolute): Window Size vs Available Parallelism",
        headers,
    )
    configs = [AnalysisConfig(window_size=window) for window in FIG8_WINDOWS]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        values = [result.available_parallelism for result in results[workload.name]]
        total = values[-1]
        table.add_row(
            workload.name, *[100.0 * v / total if total else 0.0 for v in values]
        )
        absolute.add_row(workload.name, *values)
    table.notes = (
        "All renaming on, conservative syscalls (the Figure 8 configuration). "
        "Each column is one full DDG extraction per workload. The paper's "
        "qualitative findings: modest parallelism (single digits to low tens) "
        "already at W~100; low-ILP programs saturate early; high-ILP programs "
        "keep climbing at the largest windows."
    )
    return ExperimentOutput([table, absolute])


# -- section 2.3 distributions -------------------------------------------------


def lifetimes(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Value lifetime and degree-of-sharing distributions (section 2.3)."""
    engine = as_engine(source)
    table = Table(
        "Value Lifetimes and Degree of Sharing (full renaming, conservative)",
        [
            "Workload",
            "Values",
            "Mean lifetime",
            "P50 lifetime",
            "P90 lifetime",
            "Mean sharing",
            "Dead value %",
        ],
    )
    configs = [AnalysisConfig(collect_lifetimes=True)]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        (result,) = results[workload.name]
        stats = result.lifetimes
        table.add_row(
            workload.name,
            stats.values_created,
            stats.mean_lifetime,
            stats.quantile_lifetime(0.5),
            stats.quantile_lifetime(0.9),
            stats.mean_sharing,
            100.0 * stats.dead_value_fraction,
        )
    table.notes = (
        "Lifetime = levels from creation to last use (temporary-storage "
        "requirement); sharing = consumers per computed value (token fan-out)."
    )
    return ExperimentOutput([table])


# -- ablations -----------------------------------------------------------------


def ablation_resources(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Figure 4 generalized: universal functional-unit count sweep."""
    engine = as_engine(source)
    counts = (1, 2, 4, 8, 16, 32, 64, None)
    table = Table(
        "Ablation: Available Parallelism vs Universal FU Count",
        ["Workload"] + ["inf" if c is None else str(c) for c in counts],
    )
    configs = [
        AnalysisConfig(
            resources=None if count is None else ResourceModel(universal=count)
        )
        for count in counts
    ]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        values = [result.available_parallelism for result in results[workload.name]]
        table.add_row(workload.name, *values)
    table.notes = (
        "Greedy first-fit placement; with k universal FUs no level holds "
        "more than k operations, so AP <= k by construction."
    )
    return ExperimentOutput([table])


def ablation_branch(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Extension: misprediction firewalls under real predictors."""
    engine = as_engine(source)
    models = (None, "gshare", "bimodal", "taken", "not-taken")
    table = Table(
        "Ablation: Available Parallelism under Branch-Prediction Firewalls",
        ["Workload"]
        + ["perfect" if m is None else m for m in models]
        + ["gshare mispred %"],
    )
    configs = [AnalysisConfig(branch_predictor=model) for model in models]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        values = []
        gshare_rate = 0.0
        for model, result in zip(models, results[workload.name]):
            values.append(result.available_parallelism)
            if model == "gshare" and result.branches:
                gshare_rate = 100.0 * result.mispredictions / result.branches
        table.add_row(workload.name, *values, gshare_rate)
    table.notes = (
        "Each mispredicted conditional branch firewalls the DDG at its "
        "resolution level (paper section 3.2's mispredicted-branch firewall). "
        "The paper's published numbers assume perfect prediction."
    )
    return ExperimentOutput([table])


def ablation_twopass(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Paper section 3.2: forward single-pass vs reverse-annotated two-pass."""
    engine = as_engine(source)
    table = Table(
        "Ablation: Live-Well Working Set, Forward (method 2) vs Two-Pass (method 1)",
        [
            "Workload",
            "Fwd peak live well",
            "2-pass peak live well",
            "Reduction",
            "Same CP",
            "Fwd sec",
            "2-pass sec",
        ],
    )
    workloads = all_workloads()
    config = AnalysisConfig()
    grid = [
        AnalysisJob(workload.name, cap, config, method=method)
        for workload in workloads
        for method in ("forward", "twopass")
    ]
    # run_grid (not analyze_grid) to read per-job wall-clock timings; a
    # result-cache hit reports 0s — the cached run did the work earlier.
    outcomes = engine.run_grid(grid)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        from repro.engine import JobFailedError

        raise JobFailedError(failures)
    for i, workload in enumerate(workloads):
        fwd, two = outcomes[2 * i], outcomes[2 * i + 1]
        forward, twopass = fwd.result, two.result
        reduction = (
            forward.peak_live_well / twopass.peak_live_well
            if twopass.peak_live_well
            else float("nan")
        )
        table.add_row(
            workload.name,
            forward.peak_live_well,
            twopass.peak_live_well,
            reduction,
            forward.critical_path_length == twopass.critical_path_length,
            fwd.seconds,
            two.seconds,
        )
    table.notes = (
        "Method 1 stores the whole trace but evicts dead values eagerly; the "
        "paper needed 32 MB for method 2's working set on SPEC. Results are "
        "identical by construction; only the working set differs. Timings "
        "are per-job wall clock (0 when served from the result cache)."
    )
    return ExperimentOutput([table])


def ablation_disambiguation(
    source: TraceSource, cap: int = DEFAULT_CAP
) -> ExperimentOutput:
    """Memory disambiguation strategies (the prior-work axis of section 3.1).

    Perfect disambiguation (the paper's setting) orders memory operations by
    their exact dynamic addresses; the conservative model has no alias
    information at all, so every load trails the last store. Wall's limit
    study showed this single assumption costs an order of magnitude; this
    ablation reproduces that comparison on our suite.
    """
    engine = as_engine(source)
    table = Table(
        "Ablation: Memory Disambiguation — Perfect vs None",
        [
            "Workload",
            "Perfect AP",
            "Conservative AP",
            "Perfect/Conservative",
        ],
    )
    configs = [
        AnalysisConfig(),
        AnalysisConfig(memory_disambiguation="conservative"),
    ]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        perfect, conservative = results[workload.name]
        ratio = (
            perfect.available_parallelism / conservative.available_parallelism
            if conservative.available_parallelism
            else float("nan")
        )
        table.add_row(
            workload.name,
            perfect.available_parallelism,
            conservative.available_parallelism,
            ratio,
        )
    table.notes = (
        "Conservative: loads depend on the last store; stores wait for every "
        "earlier memory access. All renaming on, conservative syscalls."
    )
    return ExperimentOutput([table])


def ablation_latency(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Operation-latency sensitivity (section 3.1 cites 'changes in
    operation latencies' as a prior-work axis)."""
    engine = as_engine(source)
    tables_by_name = [
        ("unit", LatencyTable.unit()),
        ("Table 1", LatencyTable.default()),
        ("2x Table 1", LatencyTable(
            {opclass: steps * 2 for opclass, steps in LatencyTable.default().steps.items()}
        )),
        ("slow memory", LatencyTable.default().with_overrides(LOAD=4, STORE=4)),
    ]
    table = Table(
        "Ablation: Available Parallelism vs Operation Latencies",
        ["Workload"] + [name for name, _ in tables_by_name],
    )
    configs = [AnalysisConfig(latency=latency) for _, latency in tables_by_name]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        values = [result.available_parallelism for result in results[workload.name]]
        table.add_row(workload.name, *values)
    table.notes = (
        "Longer latencies stretch dependence chains but also let more "
        "independent work overlap per level; the net effect is "
        "workload-specific (chain-bound workloads lose, parallel ones gain)."
    )
    return ExperimentOutput([table])


def machine_models(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Throttling the DDG to machine models (paper section 2.3)."""
    from repro.core.machines import MACHINE_MODELS

    engine = as_engine(source)
    table = Table(
        "Machine Models: Extractable Parallelism per Machine Class",
        ["Workload"] + list(MACHINE_MODELS),
    )
    configs = [model.config for model in MACHINE_MODELS.values()]
    workloads, results = _grid_by_workload(engine, cap, configs)
    for workload in workloads:
        values = [result.available_parallelism for result in results[workload.name]]
        table.add_row(workload.name, *values)
    table.notes = "Models, weakest first: " + "; ".join(
        f"{model.name} = {model.description}" for model in MACHINE_MODELS.values()
    )
    return ExperimentOutput([table])


def ablation_compiler(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """The compiler's second-order effect on parallelism (paper section 3.2
    caveat 2: 'the compiler can actually create a second order effect on
    the parallelism in the program')."""
    engine = as_engine(source)
    table = Table(
        "Ablation: Compiler Optimization vs Measured Parallelism",
        [
            "Workload",
            "Instrs (plain)",
            "Instrs (optimized)",
            "AP (plain)",
            "AP (optimized)",
            "AP ratio",
        ],
    )
    workloads = all_workloads()
    config = AnalysisConfig()
    grid = [
        AnalysisJob(workload.name, cap, config, optimize=optimize)
        for workload in workloads
        for optimize in (False, True)
    ]
    results = engine.analyze_grid(grid)
    for i, workload in enumerate(workloads):
        plain, optimized = results[2 * i], results[2 * i + 1]
        ratio = (
            optimized.available_parallelism / plain.available_parallelism
            if plain.available_parallelism
            else float("nan")
        )
        table.add_row(
            workload.name,
            plain.records_processed,
            optimized.records_processed,
            plain.available_parallelism,
            optimized.available_parallelism,
            ratio,
        )
    table.notes = (
        "Optimization: constant folding, algebraic simplification, "
        "dead-control elimination, power-of-two strength reduction, and "
        "2-4x counted-loop unrolling with induction-variable offsetting — "
        "the paper's own example ('loop unrolling ... tends to decrease "
        "the recurrences created by loop counters, thus increasing the "
        "parallelism'). AP moves per workload according to whether the "
        "removed work sat on its critical path."
    )
    return ExperimentOutput([table])


def ablation_baselines(source: TraceSource, cap: int = DEFAULT_CAP) -> ExperimentOutput:
    """Prior-work comparison: average-only and statement-granularity."""
    engine = as_engine(source)
    table = Table(
        "Baselines: Paragraph vs Average-Only vs Statement Granularity (Kumar)",
        [
            "Workload",
            "Paragraph AP",
            "Average-only AP",
            "CP match",
            "Stmt-level AP",
            "Instrs/stmt",
            "Intra-stmt factor",
        ],
    )
    config = AnalysisConfig()
    workloads, results = _grid_by_workload(engine, cap, [config])
    for workload in workloads:
        (paragraph,) = results[workload.name]
        # The baselines return their own result shapes (not AnalysisResult),
        # so they run in-process against the shared trace cache.
        trace = engine.trace(workload, cap)
        avg = average_parallelism(trace, config)
        stmt = statement_parallelism(trace, config)
        factor = (
            paragraph.available_parallelism
            / (stmt.average_parallelism * stmt.mean_statement_size)
            if stmt.average_parallelism
            else float("nan")
        )
        table.add_row(
            workload.name,
            paragraph.available_parallelism,
            avg.average_parallelism,
            paragraph.critical_path_length == avg.critical_path_length,
            stmt.average_parallelism,
            stmt.mean_statement_size,
            factor,
        )
    table.notes = (
        "Average-only reimplements the Wall/Tjaden-Flynn-style analyses "
        "(critical path only) and must agree with Paragraph. Kumar's "
        "statement-granularity analysis hides fine-grain parallelism within "
        "statements; the intra-statement factor shows how instruction-level "
        "operation counts relate to statement-level ones."
    )
    return ExperimentOutput([table])


#: Experiment id -> function.
EXPERIMENTS: Dict[str, Callable[..., ExperimentOutput]] = {
    "table1": table1_latencies,
    "table2": table2_suite,
    "table3": table3_dataflow,
    "fig7": fig7_profiles,
    "table4": table4_renaming,
    "fig8": fig8_window,
    "lifetimes": lifetimes,
    "abl-resources": ablation_resources,
    "abl-branch": ablation_branch,
    "abl-twopass": ablation_twopass,
    "abl-baselines": ablation_baselines,
    "abl-disambiguation": ablation_disambiguation,
    "abl-latency": ablation_latency,
    "abl-compiler": ablation_compiler,
    "machines": machine_models,
}


def run_experiment(
    name: str, source: Optional[TraceSource] = None, cap: int = DEFAULT_CAP
) -> ExperimentOutput:
    """Run one experiment by id against a store or engine."""
    engine = as_engine(source)
    try:
        function = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}"
        ) from None
    return function(engine, cap)
