"""Memory segment classification for renaming decisions.

Paragraph's *Rename Stack* and *Rename Data* switches distinguish memory
locations by segment. The classification is by word address against a single
boundary: addresses at or above ``stack_floor`` belong to the stack (it grows
down from the top of the address space), everything below is data/heap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.layout import DATA_BASE_WORDS, STACK_SEGMENT_FLOOR, STACK_TOP_WORDS
from repro.isa.locations import MEM_BASE, is_register_location, memory_address

SEG_REGISTER = "register"
SEG_STACK = "stack"
SEG_DATA = "data"


@dataclass(frozen=True)
class SegmentMap:
    """Address-space description attached to every trace.

    Attributes:
        data_base: first word address of the data segment.
        stack_floor: word addresses >= this are stack.
        stack_top: initial stack pointer.
    """

    data_base: int = DATA_BASE_WORDS
    stack_floor: int = STACK_SEGMENT_FLOOR
    stack_top: int = STACK_TOP_WORDS

    @property
    def stack_floor_location(self) -> int:
        """The storage-location id of the first stack word (precomputed
        boundary for analyzer hot loops)."""
        return MEM_BASE + self.stack_floor

    def classify(self, location: int) -> str:
        """Classify a storage-location id into register/stack/data."""
        if is_register_location(location):
            return SEG_REGISTER
        if memory_address(location) >= self.stack_floor:
            return SEG_STACK
        return SEG_DATA


#: The default segment map used by the simulator.
DEFAULT_SEGMENTS = SegmentMap()
