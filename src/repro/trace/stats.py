"""Instruction-mix statistics over a trace (the paper's Table 2 columns)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.isa.opclasses import PLACED_CLASSES, OpClass
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN, TraceRecord


@dataclass
class TraceStats:
    """Aggregate counts over one trace."""

    total: int = 0
    placed: int = 0
    branches: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    syscalls: int = 0
    loads: int = 0
    stores: int = 0
    fp_operations: int = 0
    by_class: Dict[str, int] = field(default_factory=dict)

    @property
    def syscall_interval(self) -> float:
        """Mean instructions between system calls (paper quotes cc1 at one
        per ~14,861 instructions)."""
        if not self.syscalls:
            return float("inf")
        return self.total / self.syscalls


_FP_CLASSES = {OpClass.FADD, OpClass.FMUL, OpClass.FDIV}


def compute_stats(records: Iterable[TraceRecord]) -> TraceStats:
    """Single pass over a trace computing :class:`TraceStats`."""
    stats = TraceStats()
    by_class: Dict[int, int] = {}
    for record in records:
        opclass = record[0]
        stats.total += 1
        by_class[opclass] = by_class.get(opclass, 0) + 1
        if opclass in PLACED_CLASSES:
            stats.placed += 1
        if opclass == OpClass.BRANCH or opclass == OpClass.JUMP:
            stats.branches += 1
            flags = record[3]
            if flags & FLAG_CONDITIONAL:
                stats.conditional_branches += 1
                if flags & FLAG_TAKEN:
                    stats.taken_branches += 1
        elif opclass == OpClass.SYSCALL:
            stats.syscalls += 1
        elif opclass == OpClass.LOAD:
            stats.loads += 1
        elif opclass == OpClass.STORE:
            stats.stores += 1
        if opclass in _FP_CLASSES:
            stats.fp_operations += 1
    stats.by_class = {OpClass(key).name: value for key, value in sorted(by_class.items())}
    return stats
