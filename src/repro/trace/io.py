"""Binary trace file format (streaming reader/writer).

The paper's Pixie traces were produced once and analyzed many times under
different Paragraph configurations; this module plays the same role. Because
cached trace files feed every experiment (and, since the parallel engine,
every worker process), the format carries a content digest: a stale,
truncated, or corrupted cache file fails loudly at read time instead of
silently skewing results.

Header (little-endian)::

    magic   4 bytes  b"PGT2"
    u32     format version (currently 2)
    u32     data_base (words)
    u32     stack_floor (words)
    u32     stack_top (words)
    u64     record count
    32 B    sha256 digest of (segments, count, record stream)

Each record::

    u8   opclass
    u8   flags
    u8   nsrcs
    u8   ndests
    i32  aux
    u32  * nsrcs   source locations
    u32  * ndests  destination locations

The digest covers the packed segment fields, the record count, and every
record byte — the full logical content of the trace — so
:meth:`repro.trace.buffer.TraceBuffer.digest` (computed in memory) and the
header digest of a written file always agree.
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from typing import BinaryIO, Iterable, Iterator, Optional, Tuple

from repro.trace.buffer import TraceBuffer
from repro.trace.record import TraceRecord
from repro.trace.segments import SegmentMap

try:  # Optional extra: decode falls back to the pure-python scan without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

MAGIC = b"PGT2"
#: Magic of the pre-digest format, recognized only to give a clear error.
LEGACY_MAGIC = b"PGT1"
FORMAT_VERSION = 2
_HEADER = struct.Struct("<4sIIIIQ32s")
_DIGEST_SEED = struct.Struct("<IIIQ")
_REC_HEAD = struct.Struct("<BBBBi")


class TraceFormatError(Exception):
    """Raised when a trace file is malformed, truncated, or corrupted."""


def _digest_hasher(segments: SegmentMap, count: int) -> "hashlib._Hash":
    """A sha256 hasher seeded with the segment map and record count."""
    hasher = hashlib.sha256()
    hasher.update(
        _DIGEST_SEED.pack(
            segments.data_base, segments.stack_floor, segments.stack_top, count
        )
    )
    return hasher


def _pack_record(record: TraceRecord) -> bytes:
    opclass, srcs, dests, flags, aux = record
    nsrcs = len(srcs)
    ndests = len(dests)
    head = _REC_HEAD.pack(opclass, flags, nsrcs, ndests, aux)
    if nsrcs + ndests:
        return head + struct.pack(f"<{nsrcs + ndests}I", *srcs, *dests)
    return head


def trace_digest(trace: TraceBuffer) -> str:
    """Content digest of an in-memory trace: identical to the digest embedded
    in the header when the same trace is written to disk."""
    return digest_records(trace.segments, len(trace), trace.records)


def digest_records(segments: SegmentMap, count: int, records: Iterable[TraceRecord]) -> str:
    """Content digest over an arbitrary record iterable (shared by
    :func:`trace_digest` and the columnar trace, which reconstructs records
    from its flat columns)."""
    hasher = _digest_hasher(segments, count)
    for record in records:
        hasher.update(_pack_record(record))
    return hasher.hexdigest()


def write_trace(
    stream: BinaryIO,
    records: Iterable[TraceRecord],
    segments: SegmentMap,
    count: int,
) -> str:
    """Write a trace to a seekable stream; returns the content digest.

    ``count`` must equal the number of records. The header is written first
    with a zero digest and patched once the record stream (and therefore the
    digest) is complete, so records are never buffered in memory.
    """
    header_pos = stream.tell()
    stream.write(
        _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            segments.data_base,
            segments.stack_floor,
            segments.stack_top,
            count,
            b"\x00" * 32,
        )
    )
    hasher = _digest_hasher(segments, count)
    written = 0
    for record in records:
        packed = _pack_record(record)
        hasher.update(packed)
        stream.write(packed)
        written += 1
    if written != count:
        raise TraceFormatError(f"record count mismatch: promised {count}, wrote {written}")
    digest = hasher.digest()
    end = stream.tell()
    stream.seek(header_pos)
    stream.write(
        _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            segments.data_base,
            segments.stack_floor,
            segments.stack_top,
            count,
            digest,
        )
    )
    stream.seek(end)
    return digest.hex()


def write_trace_file(path, trace: TraceBuffer) -> str:
    """Write an in-memory trace buffer to ``path``; returns its digest."""
    with open(path, "wb") as stream:
        return write_trace(stream, trace.records, trace.segments, len(trace))


def read_header(stream: BinaryIO) -> Tuple[SegmentMap, int, str]:
    """Read and validate the header; returns ``(segments, count, digest)``."""
    raw = stream.read(_HEADER.size)
    if len(raw) < len(MAGIC):
        raise TraceFormatError("truncated header")
    if raw[:4] == LEGACY_MAGIC:
        raise TraceFormatError(
            "legacy PGT1 trace file (no content digest); regenerate the "
            "trace cache with this version"
        )
    if len(raw) != _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, version, data_base, stack_floor, stack_top, count, digest = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic: {magic!r}")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {version} (expected {FORMAT_VERSION})"
        )
    segments = SegmentMap(
        data_base=data_base, stack_floor=stack_floor, stack_top=stack_top
    )
    return segments, count, digest.hex()


def read_trace_digest(path) -> str:
    """The content digest recorded in a trace file's header (header-only
    read: the engine uses this to key result caches without loading
    hundreds of thousands of records)."""
    with open(path, "rb") as stream:
        _, _, digest = read_header(stream)
    return digest


def iter_trace(
    stream: BinaryIO, hasher: Optional["hashlib._Hash"] = None
) -> Iterator[TraceRecord]:
    """Stream records from an open trace file positioned after the header.

    When ``hasher`` is given, every raw record byte is fed to it so the
    caller can verify the header digest after exhausting the iterator.
    """
    read = stream.read
    unpack_head = _REC_HEAD.unpack
    head_size = _REC_HEAD.size
    while True:
        raw = read(head_size)
        if not raw:
            return
        if len(raw) != head_size:
            raise TraceFormatError("truncated record header")
        opclass, flags, nsrcs, ndests, aux = unpack_head(raw)
        body = read(4 * (nsrcs + ndests))
        if len(body) != 4 * (nsrcs + ndests):
            raise TraceFormatError("truncated record body")
        if hasher is not None:
            hasher.update(raw)
            hasher.update(body)
        all_locs = struct.unpack(f"<{nsrcs + ndests}I", body) if nsrcs + ndests else ()
        srcs = all_locs[:nsrcs]
        dests = all_locs[nsrcs:]
        yield (opclass, srcs, dests, flags, aux)


def read_trace_payload(path) -> Tuple[SegmentMap, int, str, bytes]:
    """Read a trace file's header plus its raw packed record stream in one
    gulp, verifying the content digest.

    The digest covers the concatenated record bytes, so hashing the whole
    payload at once is equivalent to the per-record updates of
    :func:`write_trace` — and much faster. Used by the columnar decoder,
    which parses the packed stream without building per-record tuples.
    """
    with open(path, "rb") as stream:
        segments, count, digest = read_header(stream)
        payload = stream.read()
    hasher = _digest_hasher(segments, count)
    hasher.update(payload)
    if hasher.hexdigest() != digest:
        raise TraceFormatError(
            f"trace digest mismatch in {path}: file is stale or corrupted"
        )
    return segments, count, digest, payload


def scan_columns(payload: bytes, count: int):
    """Parse a packed record stream into flat columns.

    Returns ``(opclass, flags, aux, src_offsets, src_values, dest_offsets,
    dest_values)``, all ``array('q')``; the offset arrays are CSR-style with
    ``count + 1`` entries. Raises :class:`TraceFormatError` on truncation or
    trailing bytes (a digest-verified payload can still disagree with a
    tampered header count).
    """
    unpack_head = _REC_HEAD.unpack_from
    head_size = _REC_HEAD.size
    unpack_from = struct.unpack_from
    opclass = array("q", bytes(8 * count))
    flags = array("q", bytes(8 * count))
    aux = array("q", bytes(8 * count))
    src_offsets = array("q", bytes(8 * (count + 1)))
    dest_offsets = array("q", bytes(8 * (count + 1)))
    src_values = array("q")
    dest_values = array("q")
    src_append = src_values.append
    dest_append = dest_values.append
    size = len(payload)
    offset = 0
    try:
        for index in range(count):
            klass, flag, nsrcs, ndests, auxval = unpack_head(payload, offset)
            offset += head_size
            opclass[index] = klass
            flags[index] = flag
            aux[index] = auxval
            if nsrcs + ndests:
                locs = unpack_from(f"<{nsrcs + ndests}I", payload, offset)
                offset += 4 * (nsrcs + ndests)
                for loc in locs[:nsrcs]:
                    src_append(loc)
                for loc in locs[nsrcs:]:
                    dest_append(loc)
            src_offsets[index + 1] = len(src_values)
            dest_offsets[index + 1] = len(dest_values)
    except struct.error:
        raise TraceFormatError("truncated record stream") from None
    if offset != size:
        raise TraceFormatError(
            f"record stream holds {size - offset} trailing bytes after "
            f"{count} records"
        )
    return opclass, flags, aux, src_offsets, src_values, dest_offsets, dest_values


def walk_record_heads(payload, count: int):
    """One sequential pass over a packed record stream: the byte offset of
    every record head, plus the end offset (``count + 1`` entries).

    This walk is the only inherently serial part of PGT2 decode (each
    record's length lives in its own header byte pair), so it is shared
    between the vectorized and chunked decoders. Raises
    :class:`TraceFormatError` when the stream ends mid-record.
    """
    heads = [0] * (count + 1)
    size = len(payload)
    offset = 0
    try:
        for index in range(count):
            heads[index] = offset
            offset += _REC_HEAD.size + 4 * (payload[offset + 2] + payload[offset + 3])
    except IndexError:
        raise TraceFormatError("truncated record header") from None
    if offset > size:
        raise TraceFormatError("truncated record body")
    heads[count] = offset
    return heads


def gather_columns(payload, heads, count: int):
    """Vectorized column extraction over a packed record stream whose
    record-head offsets are already known (see :func:`walk_record_heads`).

    ``payload`` may be any buffer (bytes, or a ``memoryview`` over an
    ``mmap`` — the gathers read the mapped pages directly, no intermediate
    copy). Requires NumPy; same return contract as :func:`scan_columns`.
    Every header field and operand word is 4-byte aligned within the
    stream (records are ``8 + 4k`` bytes), so one ``frombuffer`` u32 view
    serves all of them.
    """
    u32 = _np.frombuffer(payload, dtype="<u4", count=heads[count] >> 2)
    hw = _np.asarray(heads[:count], dtype=_np.int64) >> 2
    w0 = u32[hw] if count else u32[:0]
    opclass = (w0 & 0xFF).astype(_np.int64)
    flags = ((w0 >> 8) & 0xFF).astype(_np.int64)
    nsrcs = ((w0 >> 16) & 0xFF).astype(_np.int64)
    ndests = (w0 >> 24).astype(_np.int64)
    aux = (u32[hw + 1] if count else u32[:0]).view(_np.int32).astype(_np.int64)

    src_offsets = _np.zeros(count + 1, dtype=_np.int64)
    dest_offsets = _np.zeros(count + 1, dtype=_np.int64)
    _np.cumsum(nsrcs, out=src_offsets[1:])
    _np.cumsum(ndests, out=dest_offsets[1:])
    total_src = int(src_offsets[count])
    total_dest = int(dest_offsets[count])
    src_idx = _np.repeat(hw + 2, nsrcs) + (
        _np.arange(total_src, dtype=_np.int64)
        - _np.repeat(src_offsets[:count], nsrcs)
    )
    dest_idx = _np.repeat(hw + 2 + nsrcs, ndests) + (
        _np.arange(total_dest, dtype=_np.int64)
        - _np.repeat(dest_offsets[:count], ndests)
    )
    src_values = u32[src_idx].astype(_np.int64)
    dest_values = u32[dest_idx].astype(_np.int64)

    def _as_q(arr):
        out = array("q")
        out.frombytes(arr.tobytes())
        return out

    return (
        _as_q(opclass),
        _as_q(flags),
        _as_q(aux),
        _as_q(src_offsets),
        _as_q(src_values),
        _as_q(dest_offsets),
        _as_q(dest_values),
    )


def scan_columns_fast(payload, count: int):
    """Like :func:`scan_columns`, but vectorized when NumPy is present.

    The record-head walk stays sequential (record lengths chain); all
    field and operand extraction happens through u32 gathers on a
    zero-copy ``frombuffer`` view of ``payload``. Identical output —
    columns, error behavior (truncation, trailing bytes) — to the
    pure-python scan, which it silently falls back to without NumPy.
    """
    if _np is None or len(payload) % 4:
        # A valid stream is always a multiple of 4 bytes; a ragged tail
        # means truncation, which the reference scan reports precisely.
        return scan_columns(payload, count)
    heads = walk_record_heads(payload, count)
    if heads[count] != len(payload):
        raise TraceFormatError(
            f"record stream holds {len(payload) - heads[count]} trailing "
            f"bytes after {count} records"
        )
    return gather_columns(payload, heads, count)


def read_trace_file(path) -> TraceBuffer:
    """Read a whole trace file into a :class:`TraceBuffer`, verifying the
    record count and content digest; any mismatch raises
    :class:`TraceFormatError` rather than returning corrupt data."""
    from repro.obs import metrics as obs

    obs.inc("trace_io.file_reads")
    with open(path, "rb") as stream:
        segments, count, digest = read_header(stream)
        hasher = _digest_hasher(segments, count)
        records = list(iter_trace(stream, hasher))
    if len(records) != count:
        raise TraceFormatError(f"header promised {count} records, file holds {len(records)}")
    if hasher.hexdigest() != digest:
        raise TraceFormatError(
            f"trace digest mismatch in {path}: file is stale or corrupted"
        )
    trace = TraceBuffer(records, segments)
    trace._digest = digest
    return trace
