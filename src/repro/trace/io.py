"""Binary trace file format (streaming reader/writer).

The paper's Pixie traces were produced once and analyzed many times under
different Paragraph configurations; this module plays the same role. The
format is deliberately simple:

Header (little-endian)::

    magic   4 bytes  b"PGT1"
    u32     data_base (words)
    u32     stack_floor (words)
    u32     stack_top (words)
    u64     record count

Each record::

    u8   opclass
    u8   flags
    u8   nsrcs
    u8   ndests
    i32  aux
    u32  * nsrcs   source locations
    u32  * ndests  destination locations
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.trace.buffer import TraceBuffer
from repro.trace.record import TraceRecord
from repro.trace.segments import SegmentMap

MAGIC = b"PGT1"
_HEADER = struct.Struct("<4sIIIQ")
_REC_HEAD = struct.Struct("<BBBBi")


class TraceFormatError(Exception):
    """Raised when a trace file is malformed."""


def write_trace(
    stream: BinaryIO,
    records: Iterable[TraceRecord],
    segments: SegmentMap,
    count: int,
) -> None:
    """Write a trace. ``count`` must equal the number of records."""
    stream.write(
        _HEADER.pack(MAGIC, segments.data_base, segments.stack_floor, segments.stack_top, count)
    )
    pack_head = _REC_HEAD.pack
    pack_loc = struct.Struct("<I").pack
    written = 0
    for opclass, srcs, dests, flags, aux in records:
        stream.write(pack_head(opclass, flags, len(srcs), len(dests), aux))
        for loc in srcs:
            stream.write(pack_loc(loc))
        for loc in dests:
            stream.write(pack_loc(loc))
        written += 1
    if written != count:
        raise TraceFormatError(f"record count mismatch: promised {count}, wrote {written}")


def write_trace_file(path, trace: TraceBuffer) -> None:
    """Write an in-memory trace buffer to ``path``."""
    with open(path, "wb") as stream:
        write_trace(stream, trace.records, trace.segments, len(trace))


def read_header(stream: BinaryIO):
    """Read and validate the header; returns ``(segments, count)``."""
    raw = stream.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, data_base, stack_floor, stack_top, count = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic: {magic!r}")
    return SegmentMap(data_base=data_base, stack_floor=stack_floor, stack_top=stack_top), count


def iter_trace(stream: BinaryIO) -> Iterator[TraceRecord]:
    """Stream records from an open trace file positioned after the header."""
    read = stream.read
    unpack_head = _REC_HEAD.unpack
    head_size = _REC_HEAD.size
    while True:
        raw = read(head_size)
        if not raw:
            return
        if len(raw) != head_size:
            raise TraceFormatError("truncated record header")
        opclass, flags, nsrcs, ndests, aux = unpack_head(raw)
        body = read(4 * (nsrcs + ndests))
        if len(body) != 4 * (nsrcs + ndests):
            raise TraceFormatError("truncated record body")
        all_locs = struct.unpack(f"<{nsrcs + ndests}I", body) if nsrcs + ndests else ()
        srcs = all_locs[:nsrcs]
        dests = all_locs[nsrcs:]
        yield (opclass, srcs, dests, flags, aux)


def read_trace_file(path) -> TraceBuffer:
    """Read a whole trace file into a :class:`TraceBuffer`."""
    with open(path, "rb") as stream:
        segments, count = read_header(stream)
        records = list(iter_trace(stream))
    if len(records) != count:
        raise TraceFormatError(f"header promised {count} records, file holds {len(records)}")
    return TraceBuffer(records, segments)
