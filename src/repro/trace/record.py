"""Dynamic trace record representation.

A trace is a sequence of *records*, one per dynamically executed instruction.
For speed and memory economy (traces run to hundreds of thousands of
records), a record is a plain 5-tuple rather than an object:

``(opclass, srcs, dests, flags, aux)``

========  ==================================================================
Field     Meaning
========  ==================================================================
opclass   :class:`~repro.isa.opclasses.OpClass` as an int (latency class)
srcs      tuple of source storage-location ids (see ``repro.isa.locations``)
dests     tuple of destination storage-location ids
flags     bitmask: :data:`FLAG_TAKEN`, :data:`FLAG_CONDITIONAL`
aux       instruction index (pc) for control records, source statement id
          for all others (``-1`` when unknown)
========  ==================================================================

Index constants (``R_CLASS`` ...) are provided so hot loops can unpack by
position without magic numbers.
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.opclasses import OpClass

R_CLASS = 0
R_SRCS = 1
R_DESTS = 2
R_FLAGS = 3
R_AUX = 4

#: Set on conditional branch records whose branch was taken.
FLAG_TAKEN = 1
#: Set on conditional-branch records (as opposed to unconditional jumps).
FLAG_CONDITIONAL = 2

TraceRecord = Tuple[int, Tuple[int, ...], Tuple[int, ...], int, int]


def make_record(
    opclass: int,
    srcs: Tuple[int, ...] = (),
    dests: Tuple[int, ...] = (),
    flags: int = 0,
    aux: int = -1,
) -> TraceRecord:
    """Build a trace record with validation (tests/builders; hot paths build
    tuples directly)."""
    opclass = int(opclass)
    if opclass not in OpClass._value2member_map_:
        raise ValueError(f"invalid opclass: {opclass}")
    for loc in srcs + dests:
        if loc < 0:
            raise ValueError(f"negative storage location: {loc}")
    return (opclass, tuple(srcs), tuple(dests), flags, aux)


def is_control(record: TraceRecord) -> bool:
    """True for branch and jump records."""
    return record[R_CLASS] in (OpClass.BRANCH, OpClass.JUMP)


def format_record(record: TraceRecord) -> str:
    """Human-readable rendering of one record (debugging aid)."""
    from repro.isa.locations import format_location

    opclass, srcs, dests, flags, aux = record
    name = OpClass(opclass).name
    parts = [name]
    if dests:
        parts.append(",".join(format_location(d) for d in dests))
    if srcs:
        parts.append("<- " + ",".join(format_location(s) for s in srcs))
    if flags & FLAG_CONDITIONAL:
        parts.append("taken" if flags & FLAG_TAKEN else "not-taken")
    if aux >= 0:
        parts.append(f"@{aux}")
    return " ".join(parts)
