"""Bounded-memory PGT2 access: segment manifests and chunked decode.

The whole-trace readers in :mod:`repro.trace.io` gulp the entire record
stream into memory, which is fine at the default ~100k-record experiment
cap and hopeless at the paper's 100M-instruction scale. This module breaks
that assumption without touching the file format:

- :func:`build_manifest` walks a trace file once (through ``mmap``, so the
  OS pages the file in and out behind a fixed-size window) and splits it
  into segments of ``shard_size`` records. Each segment entry records its
  byte extent, its record count, the index of its first system call, and a
  *per-segment content digest* — the same seeded sha256 the PGT2 header
  would carry if that segment were written as a standalone trace file. A
  segment handed to a worker process is therefore verifiable in isolation,
  and the digest doubles as the segment's identity in result caches and
  run journals.
- :func:`decode_slice` / :func:`decode_segment` decode one segment's byte
  extent into a :class:`~repro.trace.columnar.ColumnarTrace` without
  touching the rest of the file.
- :func:`iter_chunks` streams a trace as a sequence of columnar chunks,
  holding one chunk in memory at a time and verifying the header digest
  incrementally as the bytes flow past.

Manifests are cached in a JSON sidecar next to the trace file, keyed by
the trace's header digest: a rewritten trace invalidates its sidecar
automatically, and rebuilding is always safe (the manifest is a pure
function of the file).
"""

from __future__ import annotations

import json
import mmap
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.isa.opclasses import OpClass
from repro.trace import io as _io
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import (
    _HEADER,
    _digest_hasher,
    TraceFormatError,
    read_header,
    scan_columns,
    scan_columns_fast,
)
from repro.trace.segments import SegmentMap

_SYSCALL = int(OpClass.SYSCALL)
_HEAD_SIZE = 8  # struct "<BBBBi": opclass, flags, nsrcs, ndests, aux

#: Bump when the sidecar layout changes; old sidecars become rebuild misses.
MANIFEST_SCHEMA = 1

#: Default segment size in records. Large enough that per-segment overhead
#: (process dispatch, digest, frontier stitch) amortizes to nothing, small
#: enough that a decoded segment is tens of MB, not the whole trace.
DEFAULT_SHARD_RECORDS = 1 << 20


@dataclass(frozen=True)
class SegmentInfo:
    """One segment of a trace file, addressable and verifiable on its own.

    Attributes:
        index: segment position in the manifest.
        start: absolute record index of the segment's first record.
        count: records in the segment.
        offset: absolute byte offset of the segment's first record.
        length: byte length of the segment's record stream.
        digest: seeded sha256 of the segment as a standalone trace
            (segment map + ``count`` + record bytes), hex-encoded.
        first_syscall: absolute record index of the first SYSCALL in the
            segment, or ``-1`` when the segment has none.
        prefix_count: records up to and including the first syscall
            (``0`` when the segment has none).
        prefix_length: byte length of those ``prefix_count`` records.
    """

    index: int
    start: int
    count: int
    offset: int
    length: int
    digest: str
    first_syscall: int
    prefix_count: int
    prefix_length: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "count": self.count,
            "offset": self.offset,
            "length": self.length,
            "digest": self.digest,
            "first_syscall": self.first_syscall,
            "prefix_count": self.prefix_count,
            "prefix_length": self.prefix_length,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentInfo":
        return cls(
            index=int(data["index"]),
            start=int(data["start"]),
            count=int(data["count"]),
            offset=int(data["offset"]),
            length=int(data["length"]),
            digest=str(data["digest"]),
            first_syscall=int(data["first_syscall"]),
            prefix_count=int(data["prefix_count"]),
            prefix_length=int(data["prefix_length"]),
        )


@dataclass(frozen=True)
class TraceManifest:
    """A trace file's shard map: its identity plus per-segment extents."""

    trace_digest: str
    count: int
    shard_size: int
    segments: SegmentMap
    entries: Tuple[SegmentInfo, ...]

    def to_dict(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "trace_digest": self.trace_digest,
            "count": self.count,
            "shard_size": self.shard_size,
            "segments": {
                "data_base": self.segments.data_base,
                "stack_floor": self.segments.stack_floor,
                "stack_top": self.segments.stack_top,
            },
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceManifest":
        if data.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(f"manifest schema {data.get('schema')!r}")
        seg = data["segments"]
        return cls(
            trace_digest=str(data["trace_digest"]),
            count=int(data["count"]),
            shard_size=int(data["shard_size"]),
            segments=SegmentMap(
                data_base=int(seg["data_base"]),
                stack_floor=int(seg["stack_floor"]),
                stack_top=int(seg["stack_top"]),
            ),
            entries=tuple(SegmentInfo.from_dict(e) for e in data["entries"]),
        )


def manifest_path(path, shard_size: int) -> str:
    """The sidecar path caching ``path``'s manifest at ``shard_size``."""
    return f"{os.fspath(path)}.shard{shard_size}.manifest.json"


def _walk_segments(
    payload, count: int, shard_size: int, segments: SegmentMap
) -> List[SegmentInfo]:
    """One pass over the packed record stream: segment extents, first
    syscalls, and per-segment digests. Raises on truncation or trailing
    bytes (same contract as :func:`repro.trace.io.scan_columns`)."""
    entries: List[SegmentInfo] = []
    size = len(payload)
    offset = 0
    start = 0
    while start < count:
        seg_count = min(shard_size, count - start)
        seg_offset = offset
        first_syscall = -1
        prefix_count = 0
        prefix_length = 0
        for position in range(seg_count):
            head = offset
            if head + _HEAD_SIZE > size:
                raise TraceFormatError("truncated record header")
            offset = head + _HEAD_SIZE + 4 * (payload[head + 2] + payload[head + 3])
            if offset > size:
                raise TraceFormatError("truncated record body")
            if first_syscall < 0 and payload[head] == _SYSCALL:
                first_syscall = start + position
                prefix_count = position + 1
                prefix_length = offset - seg_offset
        hasher = _digest_hasher(segments, seg_count)
        hasher.update(payload[seg_offset:offset])
        entries.append(
            SegmentInfo(
                index=len(entries),
                start=start,
                count=seg_count,
                offset=_HEADER.size + seg_offset,
                length=offset - seg_offset,
                digest=hasher.hexdigest(),
                first_syscall=first_syscall,
                prefix_count=prefix_count,
                prefix_length=prefix_length,
            )
        )
        start += seg_count
    if offset != size:
        raise TraceFormatError(
            f"record stream holds {size - offset} trailing bytes after {count} records"
        )
    return entries


def build_manifest(path, shard_size: int = DEFAULT_SHARD_RECORDS) -> TraceManifest:
    """Walk ``path`` once and return its manifest at ``shard_size`` records
    per segment, verifying the header content digest along the way."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    with open(path, "rb") as stream:
        segments, count, digest = read_header(stream)
        file_size = os.fstat(stream.fileno()).st_size
        if file_size == _HEADER.size:
            entries = _walk_segments(b"", count, shard_size, segments)
        else:
            with mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
                view = memoryview(mapped)
                payload = view[_HEADER.size :]
                try:
                    hasher = _digest_hasher(segments, count)
                    hasher.update(payload)
                    if hasher.hexdigest() != digest:
                        raise TraceFormatError(
                            f"trace digest mismatch in {path}: file is stale or corrupted"
                        )
                    entries = _walk_segments(payload, count, shard_size, segments)
                finally:
                    payload.release()
                    view.release()
    return TraceManifest(
        trace_digest=digest,
        count=count,
        shard_size=shard_size,
        segments=segments,
        entries=tuple(entries),
    )


def load_manifest(path, shard_size: int) -> Optional[TraceManifest]:
    """The cached sidecar manifest for ``path`` at ``shard_size``, or
    ``None`` when absent, unreadable, schema-mismatched, or stale (its
    recorded digest disagrees with the trace header)."""
    sidecar = manifest_path(path, shard_size)
    try:
        with open(sidecar, "r") as handle:
            manifest = TraceManifest.from_dict(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if manifest.shard_size != shard_size:
        return None
    try:
        with open(path, "rb") as stream:
            _, _, digest = read_header(stream)
    except (OSError, TraceFormatError):
        return None
    if manifest.trace_digest != digest:
        return None
    return manifest


def segment_manifest(
    path, shard_size: int = DEFAULT_SHARD_RECORDS, cache: bool = True
) -> TraceManifest:
    """The manifest for ``path`` at ``shard_size``: from the sidecar when
    fresh, else rebuilt (and re-cached, best-effort — a read-only trace
    directory just pays the walk again next time)."""
    if cache:
        manifest = load_manifest(path, shard_size)
        if manifest is not None:
            return manifest
    manifest = build_manifest(path, shard_size)
    if cache:
        try:
            with open(manifest_path(path, shard_size), "w") as handle:
                json.dump(manifest.to_dict(), handle, separators=(",", ":"))
        except OSError:
            pass
    return manifest


def decode_slice(
    path,
    offset: int,
    length: int,
    count: int,
    segments: SegmentMap,
    digest: Optional[str] = None,
) -> ColumnarTrace:
    """Decode ``count`` records from ``length`` bytes at absolute file
    ``offset`` into a :class:`ColumnarTrace`, verifying ``digest`` (the
    segment's standalone content digest) when given. This is the worker
    side of a shard job: it reads exactly one segment's bytes."""
    with open(path, "rb") as stream:
        stream.seek(offset)
        payload = stream.read(length)
    if len(payload) != length:
        raise TraceFormatError(
            f"segment at {offset} truncated: wanted {length} bytes, got {len(payload)}"
        )
    if digest is not None:
        hasher = _digest_hasher(segments, count)
        hasher.update(payload)
        if hasher.hexdigest() != digest:
            raise TraceFormatError(
                f"segment digest mismatch at {offset} in {path}: "
                "file is stale or corrupted"
            )
    columns = scan_columns_fast(payload, count)
    return ColumnarTrace(*columns, segments, digest=digest)


def decode_segment(path, manifest: TraceManifest, index: int) -> ColumnarTrace:
    """Decode (and digest-verify) segment ``index`` of ``manifest``."""
    entry = manifest.entries[index]
    return decode_slice(
        path,
        entry.offset,
        entry.length,
        entry.count,
        manifest.segments,
        digest=entry.digest,
    )


def decode_prefix(path, manifest: TraceManifest, index: int) -> ColumnarTrace:
    """Decode segment ``index``'s records up to and including its first
    system call (the part the stitch pass replays in-process). The slice
    has no standalone digest — it is covered transitively by the segment
    digest its worker verifies — so decode errors surface as format
    errors, not digest mismatches."""
    entry = manifest.entries[index]
    if entry.prefix_count == 0:
        raise ValueError(f"segment {index} has no syscall prefix")
    return decode_slice(
        path,
        entry.offset,
        entry.prefix_length,
        entry.prefix_count,
        manifest.segments,
    )


def iter_chunks(
    path, chunk_records: int = DEFAULT_SHARD_RECORDS
) -> Iterator[ColumnarTrace]:
    """Stream ``path`` as columnar chunks of at most ``chunk_records``
    records, one resident at a time.

    The header digest is verified incrementally: every payload byte is fed
    to the seeded hasher as its chunk is read, and the final chunk's yield
    only happens once the whole stream has matched the header. (A mismatch
    raises :class:`TraceFormatError` before any trailing chunk is
    surfaced, mirroring the whole-file readers' fail-loudly contract.)
    """
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    from repro.obs import metrics as obs

    with open(path, "rb") as stream:
        segments, count, digest = read_header(stream)
        hasher = _digest_hasher(segments, count)
        file_size = os.fstat(stream.fileno()).st_size
        if file_size == _HEADER.size:
            if count != 0:
                raise TraceFormatError("truncated record stream")
            if hasher.hexdigest() != digest:
                raise TraceFormatError(
                    f"trace digest mismatch in {path}: file is stale or corrupted"
                )
            return
        with mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
            view = memoryview(mapped)
            payload = view[_HEADER.size :]
            try:
                size = len(payload)
                offset = 0
                start = 0
                while start < count:
                    chunk_count = min(chunk_records, count - start)
                    chunk_offset = offset
                    # Record heads (chunk-relative) collected during the
                    # boundary walk feed the vectorized column gather below,
                    # so numpy decode costs no second walk.
                    heads = [0] * (chunk_count + 1)
                    for position in range(chunk_count):
                        head = offset
                        if head + _HEAD_SIZE > size:
                            raise TraceFormatError("truncated record header")
                        heads[position] = head - chunk_offset
                        offset = head + _HEAD_SIZE + 4 * (
                            payload[head + 2] + payload[head + 3]
                        )
                        if offset > size:
                            raise TraceFormatError("truncated record body")
                    heads[chunk_count] = offset - chunk_offset
                    chunk_view = payload[chunk_offset:offset]
                    try:
                        hasher.update(chunk_view)
                        start += chunk_count
                        if start == count:
                            if offset != size:
                                raise TraceFormatError(
                                    f"record stream holds {size - offset} trailing "
                                    f"bytes after {count} records"
                                )
                            if hasher.hexdigest() != digest:
                                raise TraceFormatError(
                                    f"trace digest mismatch in {path}: "
                                    "file is stale or corrupted"
                                )
                        obs.inc("trace_stream.chunks")
                        if _io._np is not None:
                            columns = _io.gather_columns(chunk_view, heads, chunk_count)
                        else:
                            columns = scan_columns(bytes(chunk_view), chunk_count)
                    finally:
                        chunk_view.release()
                    yield ColumnarTrace(*columns, segments)
            finally:
                payload.release()
                view.release()
