"""Columnar trace representation: flat arrays instead of tuple-per-record.

A :class:`~repro.trace.buffer.TraceBuffer` stores one 5-tuple per dynamic
instruction — hundreds of thousands of small heap objects that the analyzer
hot loop then pointer-chases. A :class:`ColumnarTrace` stores the same
logical content as seven flat ``array('q')`` columns:

========  ====================================================================
Column    Meaning
========  ====================================================================
opclass   latency/placement class per record
flags     taken/conditional bitmask per record
aux       pc (control records) / statement id per record
src_offsets, src_values    CSR-encoded source-location lists
dest_offsets, dest_values  CSR-encoded destination-location lists
========  ====================================================================

Record ``i``'s sources are ``src_values[src_offsets[i]:src_offsets[i+1]]``
(likewise destinations), so the config-specialized kernels in
:mod:`repro.core.kernels` scan plain machine integers with no per-record
allocation. The columnar form is buildable from a ``TraceBuffer``, decodable
directly from PGT2 files (without materializing tuples), and packable
into POSIX shared memory so the parallel engine's workers can attach the
parent's copy zero-copy instead of re-decoding the trace file per process.

Content identity is preserved across every representation: ``digest()``
equals :meth:`TraceBuffer.digest` for the same records, the PGT2 header
digest, and the digest embedded in a shared-memory block's header.
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterator, Optional, Tuple

from repro.isa.opclasses import OpClass
from repro.trace.buffer import TraceBuffer
from repro.trace.io import (
    _HEADER,
    TraceFormatError,
    _digest_hasher,
    digest_records,
    read_header,
    read_trace_payload,
    scan_columns_fast,
)
from repro.trace.record import FLAG_CONDITIONAL, TraceRecord
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)

#: Shared-memory block header: magic, data_base, stack_floor, stack_top,
#: record count, source count, destination count, raw sha256 digest.
#: 72 bytes — a multiple of 8, so the ``q`` columns that follow stay aligned.
_SHM_MAGIC = b"PGC1"
_SHM_HEADER = struct.Struct("<4sIIIQQQ32s")


class SharedTraceError(Exception):
    """Raised when a shared-memory trace block is malformed."""


class ColumnarTrace:
    """A trace as flat columns (see module docstring).

    Columns are ``array('q')`` when built locally and zero-copy
    ``memoryview`` casts when attached to shared memory; both index
    identically, so the kernels never care which they were handed.
    """

    __slots__ = (
        "opclass",
        "flags",
        "aux",
        "src_offsets",
        "src_values",
        "dest_offsets",
        "dest_values",
        "segments",
        "_digest",
        "_census",
        "_operand_counts",
        "_buffer",
        "_shm",
        "_views",
        "_vk_index",
    )

    def __init__(
        self,
        opclass,
        flags,
        aux,
        src_offsets,
        src_values,
        dest_offsets,
        dest_values,
        segments: SegmentMap = DEFAULT_SEGMENTS,
        digest: Optional[str] = None,
    ):
        self.opclass = opclass
        self.flags = flags
        self.aux = aux
        self.src_offsets = src_offsets
        self.src_values = src_values
        self.dest_offsets = dest_offsets
        self.dest_values = dest_values
        self.segments = segments
        self._digest = digest
        self._census = None
        self._operand_counts = None
        self._buffer = None
        self._shm = None
        self._views = ()
        # Batch access-index cache for the vectorized backend
        # (repro.core.vkernels), keyed by (conservative, start, end).
        self._vk_index: dict = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_buffer(cls, buffer: TraceBuffer) -> "ColumnarTrace":
        """Flatten an in-memory tuple trace into columns. The buffer's
        cached digest (if already computed) carries over; otherwise the
        digest is computed lazily on first :meth:`digest` call."""
        count = len(buffer)
        opclass = array("q", bytes(8 * count))
        flags = array("q", bytes(8 * count))
        aux = array("q", bytes(8 * count))
        src_offsets = array("q", bytes(8 * (count + 1)))
        dest_offsets = array("q", bytes(8 * (count + 1)))
        src_values = array("q")
        dest_values = array("q")
        for index, (klass, srcs, dests, flag, auxval) in enumerate(buffer.records):
            opclass[index] = klass
            flags[index] = flag
            aux[index] = auxval
            src_values.extend(srcs)
            dest_values.extend(dests)
            src_offsets[index + 1] = len(src_values)
            dest_offsets[index + 1] = len(dest_values)
        trace = cls(
            opclass,
            flags,
            aux,
            src_offsets,
            src_values,
            dest_offsets,
            dest_values,
            buffer.segments,
            digest=buffer._digest,
        )
        trace._buffer = buffer  # to_buffer() round-trips for free
        return trace

    @classmethod
    def from_file(cls, path) -> "ColumnarTrace":
        """Decode a PGT2 trace file straight into columns — no per-record
        tuples — verifying the header content digest."""
        segments, count, digest, payload = read_trace_payload(path)
        columns = scan_columns_fast(payload, count)
        return cls(*columns, segments, digest=digest)

    @classmethod
    def from_pgt2_mmap(cls, path) -> "ColumnarTrace":
        """Decode a PGT2 trace file through a read-only memory map.

        The record stream is never copied into an intermediate ``bytes``
        object: the digest check and the column extraction both run over a
        ``memoryview`` of the mapped file (NumPy, when present, gathers the
        columns through zero-copy ``frombuffer`` views of that mapping).
        The content digest is verified *before* any parsing, so a stale or
        corrupted file raises :class:`~repro.trace.io.TraceFormatError`
        loudly rather than yielding a partial trace. The returned columns
        are ordinary owned arrays — the mapping is released before this
        method returns, so the trace does not pin the file.
        """
        import mmap

        with open(path, "rb") as stream:
            segments, count, digest = read_header(stream)
            mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            payload = memoryview(mapped)[_HEADER.size:]
            try:
                hasher = _digest_hasher(segments, count)
                hasher.update(payload)
                if hasher.hexdigest() != digest:
                    raise TraceFormatError(
                        f"trace digest mismatch in {path}: file is stale or corrupted"
                    )
                columns = scan_columns_fast(payload, count)
            finally:
                payload.release()
        finally:
            mapped.close()
        return cls(*columns, segments, digest=digest)

    # -- record views ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.opclass)

    def __getitem__(self, index: int) -> TraceRecord:
        if index < 0:
            index += len(self.opclass)
        srcs = tuple(self.src_values[self.src_offsets[index]:self.src_offsets[index + 1]])
        dests = tuple(self.dest_values[self.dest_offsets[index]:self.dest_offsets[index + 1]])
        return (self.opclass[index], srcs, dests, self.flags[index], self.aux[index])

    def __iter__(self) -> Iterator[TraceRecord]:
        """Reconstruct records lazily, so a ``ColumnarTrace`` is accepted
        everywhere a record iterable is (reference analyzer, DDG builder,
        trace statistics)."""
        src_values = self.src_values
        dest_values = self.dest_values
        src_offsets = self.src_offsets
        dest_offsets = self.dest_offsets
        s_lo = 0
        d_lo = 0
        for index, klass in enumerate(self.opclass):
            s_hi = src_offsets[index + 1]
            d_hi = dest_offsets[index + 1]
            yield (
                klass,
                tuple(src_values[s_lo:s_hi]),
                tuple(dest_values[d_lo:d_hi]),
                self.flags[index],
                self.aux[index],
            )
            s_lo = s_hi
            d_lo = d_hi

    def to_buffer(self) -> TraceBuffer:
        """Materialize back to a tuple-per-record buffer (for consumers that
        need ``.records``, e.g. the two-pass analyzer's reverse scan, or
        analysis configs the specialized kernels do not cover).

        Memoized: repeated calls — e.g. several generic-config jobs against
        one shared-memory trace — pay the tuple materialization once.
        """
        if self._buffer is None:
            buffer = TraceBuffer(list(self), self.segments)
            buffer._digest = self._digest
            self._buffer = buffer
        return self._buffer

    def digest(self) -> str:
        """Stable content digest — identical to the same trace's
        :meth:`TraceBuffer.digest` and PGT2 header digest."""
        if self._digest is None:
            self._digest = digest_records(self.segments, len(self), iter(self))
        return self._digest

    def census(self) -> Tuple[int, int]:
        """``(syscalls, conditional_branches)`` for this trace.

        Both are pure trace statistics — independent of any analysis
        configuration — so they are computed once and cached; the analysis
        kernels read them here instead of testing every record's class and
        flags in their hot loops. Across a config grid the single counting
        pass amortizes to nothing.
        """
        if self._census is None:
            syscalls = 0
            conditional_branches = 0
            conditional = FLAG_CONDITIONAL
            syscall = _SYSCALL
            branch = _BRANCH
            for klass, flag in zip(self.opclass, self.flags):
                if klass == syscall:
                    syscalls += 1
                elif klass == branch and flag & conditional:
                    conditional_branches += 1
            self._census = (syscalls, conditional_branches)
        return self._census

    def operand_counts(self) -> Tuple:
        """``(src_counts, dest_counts)``: per-record operand arities.

        The arities are the offset columns' first differences — pure trace
        shape, independent of any analysis configuration — so they are
        computed once and cached. With them in hand the specialized kernels
        drive running iterators over the value columns directly (C-speed
        ``next`` per operand) instead of slicing with boxed offsets; across
        a config grid the single differencing pass amortizes to nothing.
        """
        if self._operand_counts is None:
            count = len(self.opclass)
            src_counts = array("q", bytes(8 * count))
            dest_counts = array("q", bytes(8 * count))
            for offsets, counts in (
                (self.src_offsets, src_counts),
                (self.dest_offsets, dest_counts),
            ):
                lo = 0
                highs = iter(offsets)
                next(highs)
                for index, hi in enumerate(highs):
                    counts[index] = hi - lo
                    lo = hi
            self._operand_counts = (src_counts, dest_counts)
        return self._operand_counts

    # -- shared memory -----------------------------------------------------

    def _columns(self) -> Tuple:
        return (
            self.opclass,
            self.flags,
            self.aux,
            self.src_offsets,
            self.src_values,
            self.dest_offsets,
            self.dest_values,
        )

    def nbytes(self) -> int:
        """Size of a shared-memory block holding this trace."""
        return _SHM_HEADER.size + 8 * sum(len(column) for column in self._columns())

    def to_shared_memory(self, name: Optional[str] = None):
        """Pack this trace into a new ``multiprocessing.shared_memory``
        block and return the ``SharedMemory`` object.

        The caller owns the block: it must keep the returned handle alive
        while attachments exist and ``close()``/``unlink()`` it afterwards
        (the engine does this around a grid run).
        """
        from multiprocessing import shared_memory

        from repro.obs import metrics as obs

        obs.inc("trace_shm.packs")
        obs.inc("trace_shm.packed_bytes", self.nbytes())
        segments = self.segments
        shm = shared_memory.SharedMemory(name=name, create=True, size=self.nbytes())
        buf = shm.buf
        _SHM_HEADER.pack_into(
            buf,
            0,
            _SHM_MAGIC,
            segments.data_base,
            segments.stack_floor,
            segments.stack_top,
            len(self),
            len(self.src_values),
            len(self.dest_values),
            bytes.fromhex(self.digest()),
        )
        offset = _SHM_HEADER.size
        for column in self._columns():
            nbytes = 8 * len(column)
            if nbytes:
                chunk = buf[offset:offset + nbytes]
                view = chunk.cast("q")
                view[:] = column
                view.release()
                chunk.release()
            offset += nbytes
        return shm

    @classmethod
    def from_shared_memory(cls, name: str) -> "ColumnarTrace":
        """Attach to a block written by :meth:`to_shared_memory`.

        The columns are zero-copy ``memoryview`` casts into the block; the
        attachment is held by the returned trace and released by
        :meth:`close` (or process exit). The block itself stays owned by
        its creator — attaching never unlinks.
        """
        from multiprocessing import shared_memory

        from repro.obs import metrics as obs

        obs.inc("trace_shm.attaches")

        try:
            # Python >= 3.13: opt out of resource tracking for attachments.
            shm = shared_memory.SharedMemory(name=name, create=False, track=False)
        except TypeError:
            # Older interpreters register the attachment with the resource
            # tracker. Attachers here are always multiprocessing children of
            # the block's creator, so they share the creator's tracker and
            # the extra register is a duplicate set-add; the creator's
            # unlink-time unregister cleans it up exactly once.
            shm = shared_memory.SharedMemory(name=name, create=False)
        try:
            header = _SHM_HEADER.unpack_from(shm.buf, 0)
        except struct.error:
            shm.close()
            raise SharedTraceError(f"shared trace block {name!r}: truncated header")
        magic, data_base, stack_floor, stack_top, count, nsrc, ndest = header[:7]
        if magic != _SHM_MAGIC:
            shm.close()
            raise SharedTraceError(f"shared trace block {name!r}: bad magic {magic!r}")
        digest = header[7].hex()
        lengths = (count, count, count, count + 1, nsrc, count + 1, ndest)
        size = len(shm.buf)
        if size < _SHM_HEADER.size + 8 * sum(lengths):
            shm.close()
            raise SharedTraceError(
                f"shared trace block {name!r}: {size} bytes is too "
                f"small for {count} records"
            )
        views = []
        columns = []
        offset = _SHM_HEADER.size
        for length in lengths:
            chunk = shm.buf[offset:offset + 8 * length]
            column = chunk.cast("q")
            views.append(chunk)
            views.append(column)
            columns.append(column)
            offset += 8 * length
        trace = cls(
            *columns,
            SegmentMap(data_base=data_base, stack_floor=stack_floor, stack_top=stack_top),
            digest=digest,
        )
        trace._shm = shm
        trace._views = tuple(views)
        return trace

    def close(self) -> None:
        """Release a shared-memory attachment (no-op for local traces)."""
        if self._shm is None:
            return
        # The vectorized backend caches zero-copy frombuffer views of the
        # columns; they pin the block and must go before the views do.
        self._vk_index.clear()
        for view in self._views:
            view.release()
        self._views = ()
        shm, self._shm = self._shm, None
        shm.close()
