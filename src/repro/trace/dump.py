"""Trace file inspection: ``python -m repro.trace.dump <file.pgt>``.

Prints the header, instruction-mix statistics, and optionally a window of
records in human-readable form — the equivalent of Pixie's trace dumpers.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.trace.io import read_trace_file
from repro.trace.record import format_record
from repro.trace.stats import compute_stats


def dump_text(path: str, start: int = 0, count: int = 0) -> str:
    """Render a dump of the trace file at ``path``."""
    trace = read_trace_file(path)
    stats = compute_stats(trace)
    lines = [
        f"trace file : {path}",
        f"records    : {stats.total:,}",
        f"segments   : data base {trace.segments.data_base:#x}, "
        f"stack floor {trace.segments.stack_floor:#x}, "
        f"stack top {trace.segments.stack_top:#x}",
        f"placed ops : {stats.placed:,}",
        f"branches   : {stats.branches:,} "
        f"({stats.conditional_branches:,} conditional, "
        f"{stats.taken_branches:,} taken)",
        f"memory     : {stats.loads:,} loads, {stats.stores:,} stores",
        f"fp ops     : {stats.fp_operations:,}",
        f"syscalls   : {stats.syscalls:,} "
        f"(every {stats.syscall_interval:,.0f} instructions)",
        "mix        : "
        + ", ".join(f"{name}={count:,}" for name, count in stats.by_class.items()),
    ]
    if count:
        lines.append("")
        lines.append(f"records {start}..{start + count - 1}:")
        for index in range(start, min(start + count, len(trace))):
            lines.append(f"  {index:>8d}  {format_record(trace[index])}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.dump",
        description="Inspect a binary Paragraph trace (.pgt)",
    )
    parser.add_argument("path", help="trace file")
    parser.add_argument("--start", type=int, default=0, help="first record to show")
    parser.add_argument(
        "--count", type=int, default=0, help="number of records to show (0 = none)"
    )
    args = parser.parse_args(argv)
    print(dump_text(args.path, args.start, args.count))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
