"""Synthetic trace construction: an ergonomic builder plus random generators.

These serve three audiences:

- unit tests encoding the paper's worked examples (Figures 1-5),
- hypothesis property tests (random but valid traces),
- micro-benchmarks that need traces with known dependency structure.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.isa.locations import memory_location
from repro.isa.opclasses import OpClass
from repro.trace.buffer import TraceBuffer
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap


class TraceBuilder:
    """Builds a :class:`TraceBuffer` record by record.

    Register operands are storage-location ids (0..63); memory operands are
    word addresses (converted internally).
    """

    def __init__(self, segments: SegmentMap = DEFAULT_SEGMENTS):
        self.segments = segments
        self.records = []

    def op(
        self,
        opclass: OpClass,
        dests: Sequence[int] = (),
        srcs: Sequence[int] = (),
        flags: int = 0,
        aux: int = -1,
    ) -> "TraceBuilder":
        """Append a raw record (operands are already location ids)."""
        self.records.append((int(opclass), tuple(srcs), tuple(dests), flags, aux))
        return self

    def ialu(self, dst: int, *srcs: int) -> "TraceBuilder":
        """Integer ALU op writing register ``dst`` from register sources."""
        return self.op(OpClass.IALU, (dst,), srcs)

    def fop(self, opclass: OpClass, dst: int, *srcs: int) -> "TraceBuilder":
        """Floating-point op of the given class."""
        return self.op(opclass, (dst,), srcs)

    def load(self, reg: int, addr: int, base: Optional[int] = None) -> "TraceBuilder":
        """Load ``mem[addr]`` into register ``reg`` (optional base register)."""
        srcs = (memory_location(addr),) if base is None else (base, memory_location(addr))
        return self.op(OpClass.LOAD, (reg,), srcs)

    def store(self, reg: int, addr: int, base: Optional[int] = None) -> "TraceBuilder":
        """Store register ``reg`` to ``mem[addr]``."""
        srcs = (reg,) if base is None else (reg, base)
        return self.op(OpClass.STORE, (memory_location(addr),), srcs)

    def syscall(self, *srcs: int) -> "TraceBuilder":
        """System call record."""
        return self.op(OpClass.SYSCALL, (), srcs)

    def branch(self, *srcs: int, taken: bool = True, pc: int = 0) -> "TraceBuilder":
        """Conditional branch record."""
        flags = FLAG_CONDITIONAL | (FLAG_TAKEN if taken else 0)
        return self.op(OpClass.BRANCH, (), srcs, flags=flags, aux=pc)

    def jump(self, pc: int = 0) -> "TraceBuilder":
        """Unconditional jump record."""
        return self.op(OpClass.JUMP, aux=pc)

    def build(self) -> TraceBuffer:
        """Finish and return the trace."""
        return TraceBuffer(self.records, self.segments)


def serial_chain(length: int, opclass: OpClass = OpClass.IALU) -> TraceBuffer:
    """A fully serial trace: each op reads the previous op's result.

    Critical path (unit latency) == ``length``; available parallelism == 1.
    """
    builder = TraceBuilder()
    for _ in range(length):
        builder.op(opclass, (1,), (1,))
    return builder.build()


def independent_ops(length: int, registers: int = 32) -> TraceBuffer:
    """A trace of operations with no true dependencies (distinct dests,
    pre-existing sources). Fully parallel when renamed."""
    builder = TraceBuilder()
    for index in range(length):
        builder.ialu(index % registers + 1)
    return builder.build()


def random_trace(
    seed: int,
    length: int,
    memory_words: int = 64,
    fp_fraction: float = 0.2,
    store_fraction: float = 0.15,
    branch_fraction: float = 0.1,
    syscall_fraction: float = 0.01,
    segments: SegmentMap = DEFAULT_SEGMENTS,
) -> TraceBuffer:
    """A random, structurally valid trace for property tests.

    Memory references split evenly between the data segment (from
    ``segments.data_base``) and the stack segment (below
    ``segments.stack_top``).
    """
    rng = random.Random(seed)
    builder = TraceBuilder(segments)
    int_regs = list(range(1, 32))
    fp_regs = list(range(32, 64))
    data_addrs = [segments.data_base + i for i in range(memory_words)]
    stack_addrs = [segments.stack_top - 1 - i for i in range(memory_words)]

    for _ in range(length):
        roll = rng.random()
        if roll < syscall_fraction:
            builder.syscall()
        elif roll < syscall_fraction + branch_fraction:
            builder.branch(rng.choice(int_regs), taken=rng.random() < 0.6, pc=rng.randrange(1000))
        elif roll < syscall_fraction + branch_fraction + store_fraction:
            addr = rng.choice(data_addrs if rng.random() < 0.5 else stack_addrs)
            builder.store(rng.choice(int_regs), addr, base=rng.choice(int_regs))
        elif roll < syscall_fraction + branch_fraction + 2 * store_fraction:
            addr = rng.choice(data_addrs if rng.random() < 0.5 else stack_addrs)
            builder.load(rng.choice(int_regs), addr, base=rng.choice(int_regs))
        elif roll < syscall_fraction + branch_fraction + 2 * store_fraction + fp_fraction:
            opclass = rng.choice([OpClass.FADD, OpClass.FMUL, OpClass.FDIV])
            builder.fop(opclass, rng.choice(fp_regs), rng.choice(fp_regs), rng.choice(fp_regs))
        else:
            opclass = rng.choice([OpClass.IALU, OpClass.IALU, OpClass.IALU, OpClass.IMUL, OpClass.IDIV])
            nsrc = rng.randrange(3)
            srcs = tuple(rng.choice(int_regs) for _ in range(nsrc))
            builder.op(opclass, (rng.choice(int_regs),), srcs)
    return builder.build()
