"""In-memory trace container."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.trace.record import TraceRecord
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap


class TraceBuffer:
    """A trace held in memory: a list of records plus its segment map.

    The buffer is iterable (yielding records) and indexable. The simulator
    appends directly to :attr:`records` via a bound-method alias for speed.
    """

    def __init__(
        self,
        records: Optional[Iterable[TraceRecord]] = None,
        segments: SegmentMap = DEFAULT_SEGMENTS,
    ):
        self.records: List[TraceRecord] = list(records) if records is not None else []
        self.segments = segments
        #: Cached content digest; invalidated on mutation.
        self._digest: Optional[str] = None

    def append(self, record: TraceRecord) -> None:
        """Append one record."""
        self.records.append(record)
        self._digest = None

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append many records."""
        self.records.extend(records)
        self._digest = None

    def digest(self) -> str:
        """Stable content digest over segments and records — equal to the
        digest embedded in this trace's on-disk file header, and the
        trace half of every engine result-cache key. Cached; the cache is
        dropped on append/extend (hot appends go straight to
        :attr:`records`, so mutate-then-digest callers should not rely on
        the cache anyway — the engine digests only finished traces)."""
        if self._digest is None:
            from repro.trace.io import trace_digest

            self._digest = trace_digest(self)
        return self._digest

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def head(self, count: int) -> "TraceBuffer":
        """A new buffer holding the first ``count`` records (the paper caps
        analysis at a fixed instruction budget from the start of the trace)."""
        return TraceBuffer(self.records[:count], self.segments)
