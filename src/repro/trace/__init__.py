"""Trace layer: record format, buffers, binary IO, statistics, synthesis."""

from repro.trace.buffer import TraceBuffer
from repro.trace.columnar import ColumnarTrace, SharedTraceError
from repro.trace.io import read_trace_file, write_trace_file
from repro.trace.record import (
    FLAG_CONDITIONAL,
    FLAG_TAKEN,
    R_AUX,
    R_CLASS,
    R_DESTS,
    R_FLAGS,
    R_SRCS,
    TraceRecord,
    format_record,
    make_record,
)
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.synthetic import TraceBuilder, independent_ops, random_trace, serial_chain

__all__ = [
    "TraceBuffer",
    "ColumnarTrace",
    "SharedTraceError",
    "read_trace_file",
    "write_trace_file",
    "FLAG_CONDITIONAL",
    "FLAG_TAKEN",
    "R_AUX",
    "R_CLASS",
    "R_DESTS",
    "R_FLAGS",
    "R_SRCS",
    "TraceRecord",
    "format_record",
    "make_record",
    "DEFAULT_SEGMENTS",
    "SegmentMap",
    "TraceStats",
    "compute_stats",
    "TraceBuilder",
    "independent_ops",
    "random_trace",
    "serial_chain",
]
