"""Reproduction of Austin & Sohi, "Dynamic Dependency Analysis of Ordinary
Programs" (ISCA 1992).

The package rebuilds the paper's whole stack:

- :mod:`repro.core` — **Paragraph**, the dynamic-dependency-graph analyzer
  (the paper's contribution);
- :mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.cpu` — a MIPS-like ISA,
  assembler, and tracing simulator standing in for the DECstation + Pixie;
- :mod:`repro.lang` — a MiniC compiler so workloads are "ordinary programs
  written in an imperative language" with real register-reuse pressure;
- :mod:`repro.workloads` — ten SPEC-analog benchmark programs;
- :mod:`repro.baselines` — prior-work analyzers the paper positions against;
- :mod:`repro.harness` — experiment definitions regenerating every table
  and figure.

Quickstart::

    from repro import analyze, AnalysisConfig
    from repro.workloads import load_workload

    trace = load_workload("matrix300x").trace(max_instructions=100_000)
    result = analyze(trace, AnalysisConfig.dataflow_limit())
    print(result.available_parallelism)
"""

from repro.core import (
    AnalysisConfig,
    AnalysisResult,
    LatencyTable,
    ParallelismProfile,
    ResourceModel,
    analyze,
    build_ddg,
    measurement_error,
    reference_analyze,
    twopass_analyze,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "LatencyTable",
    "ParallelismProfile",
    "ResourceModel",
    "analyze",
    "build_ddg",
    "measurement_error",
    "reference_analyze",
    "twopass_analyze",
    "__version__",
]
