"""Two-pass assembler: assembly text -> :class:`~repro.asm.program.Program`.

Pass one lays out the data segment and records label addresses (text labels
get instruction indices, data labels get word addresses). Pass two encodes
instructions with all labels resolved.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.asm.errors import AsmError
from repro.asm.parser import (
    SourceLine,
    is_int_literal,
    parse_int,
    parse_mem_operand,
    parse_number,
    parse_source,
)
from repro.asm.program import Program
from repro.isa.instruction import Instruction
from repro.isa.layout import DATA_BASE_WORDS, STACK_SEGMENT_FLOOR
from repro.isa.opcodes import OPCODES
from repro.isa.registers import is_fp_location, parse_register

_DATA_DIRECTIVES = {".word", ".float", ".space"}


class _Assembler:
    def __init__(self, source: str):
        self.lines = parse_source(source)
        self.text_labels: Dict[str, int] = {}
        self.data_labels: Dict[str, int] = {}
        self.data: Dict[int, Union[int, float]] = {}
        self.data_ptr = DATA_BASE_WORDS
        self.instructions: List[Instruction] = []

    def assemble(self) -> Program:
        self._layout_pass()
        self._encode_pass()
        program = Program(
            instructions=self.instructions,
            labels=dict(self.text_labels),
            data=dict(self.data),
            data_base=DATA_BASE_WORDS,
            data_end=self.data_ptr,
            entry=self.text_labels.get("main", 0),
        )
        if program.data_end > STACK_SEGMENT_FLOOR:
            raise AsmError(
                f"data segment overflows into stack segment "
                f"({program.data_end:#x} > {STACK_SEGMENT_FLOOR:#x})"
            )
        return program

    # -- pass one -------------------------------------------------------

    def _layout_pass(self) -> None:
        segment = "text"
        instr_index = 0
        for line in self.lines:
            head = line.head
            if head == ".text":
                segment = "text"
            elif head == ".data":
                segment = "data"
            if segment == "data":
                self._define_labels(line, self.data_labels, self.data_ptr)
                if head in _DATA_DIRECTIVES:
                    self._layout_data(line)
                elif head and not head.startswith("."):
                    raise AsmError("instruction in .data segment", line.number)
            else:
                self._define_labels(line, self.text_labels, instr_index)
                if head and not head.startswith("."):
                    instr_index += 1

    def _define_labels(self, line: SourceLine, table: Dict[str, int], value: int) -> None:
        for name in line.labels:
            if name in self.text_labels or name in self.data_labels:
                raise AsmError(f"duplicate label {name!r}", line.number)
            table[name] = value

    def _layout_data(self, line: SourceLine) -> None:
        head = line.head
        if head == ".space":
            if len(line.operands) != 1:
                raise AsmError(".space takes one operand", line.number)
            count = parse_int(line.operands[0], line.number)
            if count < 0:
                raise AsmError(".space size must be non-negative", line.number)
            self.data_ptr += count
            return
        if not line.operands:
            raise AsmError(f"{head} needs at least one value", line.number)
        for text in line.operands:
            value = parse_number(text, line.number)
            if head == ".word":
                if not isinstance(value, int):
                    raise AsmError(f".word value must be integer: {text!r}", line.number)
                self.data[self.data_ptr] = value
            else:  # .float
                self.data[self.data_ptr] = float(value)
            self.data_ptr += 1

    # -- pass two -------------------------------------------------------

    def _encode_pass(self) -> None:
        segment = "text"
        stmt_id = -1
        for line in self.lines:
            head = line.head
            if head == ".text":
                segment = "text"
                continue
            if head == ".data":
                segment = "data"
                continue
            if segment == "data" or head is None:
                continue
            if head == ".stmt":
                if len(line.operands) != 1:
                    raise AsmError(".stmt takes one operand", line.number)
                stmt_id = parse_int(line.operands[0], line.number)
                continue
            if head.startswith("."):
                raise AsmError(f"unknown directive {head!r}", line.number)
            self.instructions.append(self._encode(head, line, stmt_id))

    def _encode(self, op: str, line: SourceLine, stmt_id: int) -> Instruction:
        spec = OPCODES.get(op)
        if spec is None:
            raise AsmError(f"unknown opcode {op!r}", line.number)
        ops = line.operands
        n = line.number
        instr = Instruction(op=op, stmt_id=stmt_id, line=n)
        fmt = spec.fmt
        try:
            if fmt in ("rrr", "fff", "rff"):
                self._arity(ops, 3, op, n)
                instr.dst = self._reg(ops[0], fmt[0], n)
                instr.src1 = self._reg(ops[1], fmt[1], n)
                instr.src2 = self._reg(ops[2], fmt[2], n)
            elif fmt == "rri":
                if op == "move":
                    self._arity(ops, 2, op, n)
                    instr.dst = self._reg(ops[0], "r", n)
                    instr.src1 = self._reg(ops[1], "r", n)
                    instr.imm = 0
                else:
                    self._arity(ops, 3, op, n)
                    instr.dst = self._reg(ops[0], "r", n)
                    instr.src1 = self._reg(ops[1], "r", n)
                    instr.imm = parse_int(ops[2], n)
            elif fmt == "ri":
                self._arity(ops, 2, op, n)
                instr.dst = self._reg(ops[0], "r", n)
                instr.imm = parse_int(ops[1], n)
            elif fmt == "fi":
                self._arity(ops, 2, op, n)
                instr.dst = self._reg(ops[0], "f", n)
                instr.imm = float(parse_number(ops[1], n))
            elif fmt == "rl":
                self._arity(ops, 2, op, n)
                instr.dst = self._reg(ops[0], "r", n)
                instr.imm = self._address(ops[1], n)
            elif fmt in ("ff", "fr", "rf"):
                self._arity(ops, 2, op, n)
                instr.dst = self._reg(ops[0], fmt[0], n)
                instr.src1 = self._reg(ops[1], fmt[1], n)
            elif fmt in ("rm", "fm"):
                self._arity(ops, 2, op, n)
                instr.dst = self._reg(ops[0], fmt[0], n)
                offset_text, base_text = parse_mem_operand(ops[1], n)
                instr.imm = self._address(offset_text, n)
                instr.src1 = self._reg(base_text, "r", n) if base_text else 0
            elif fmt == "rrb":
                self._arity(ops, 3, op, n)
                instr.src1 = self._reg(ops[0], "r", n)
                instr.src2 = self._reg(ops[1], "r", n)
                instr.target = self._text_target(ops[2], n)
            elif fmt == "rb":
                self._arity(ops, 2, op, n)
                instr.src1 = self._reg(ops[0], "r", n)
                instr.target = self._text_target(ops[1], n)
            elif fmt == "b":
                self._arity(ops, 1, op, n)
                instr.target = self._text_target(ops[0], n)
            elif fmt == "r":
                self._arity(ops, 1, op, n)
                instr.src1 = self._reg(ops[0], "r", n)
            elif fmt == "n":
                self._arity(ops, 0, op, n)
            else:  # pragma: no cover - registry always consistent
                raise AsmError(f"unhandled format {fmt!r} for {op}", n)
        except ValueError as exc:
            raise AsmError(str(exc), n) from exc
        return instr

    @staticmethod
    def _arity(ops: List[str], expected: int, op: str, line: int) -> None:
        if len(ops) != expected:
            raise AsmError(
                f"{op} expects {expected} operand(s), got {len(ops)}", line
            )

    @staticmethod
    def _reg(text: str, kind: str, line: int) -> int:
        location = parse_register(text)
        if kind == "r" and is_fp_location(location):
            raise AsmError(f"expected integer register, got {text!r}", line)
        if kind == "f" and not is_fp_location(location):
            raise AsmError(f"expected fp register, got {text!r}", line)
        return location

    def _address(self, text: str, line: int) -> int:
        """Resolve an integer literal or data label to a word value."""
        if is_int_literal(text):
            return parse_int(text, line)
        if text in self.data_labels:
            return self.data_labels[text]
        raise AsmError(f"undefined data label or offset {text!r}", line)

    def _text_target(self, text: str, line: int) -> int:
        if is_int_literal(text):
            index = parse_int(text, line)
        elif text in self.text_labels:
            index = self.text_labels[text]
        else:
            raise AsmError(f"undefined text label {text!r}", line)
        if not 0 <= index <= len(self.instructions) + 10**9:
            raise AsmError(f"branch target out of range: {index}", line)
        return index


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Raises:
        AsmError: on any syntax or semantic error, tagged with a line number.
    """
    return _Assembler(source).assemble()
