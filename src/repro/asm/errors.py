"""Assembler diagnostics."""

from __future__ import annotations


class AsmError(Exception):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
