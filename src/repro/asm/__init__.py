"""Two-pass assembler for the reproduction ISA."""

from repro.asm.assembler import assemble
from repro.asm.errors import AsmError
from repro.asm.program import Program

__all__ = ["assemble", "AsmError", "Program"]
