"""Assembled program container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.isa.instruction import Instruction, format_instruction
from repro.isa.layout import DATA_BASE_WORDS


@dataclass
class Program:
    """An assembled program ready for the simulator.

    Attributes:
        instructions: the text segment; branch/jump targets are instruction
            indices into this list.
        labels: label name -> instruction index (text labels only).
        data: initial contents of the data segment, word address -> value.
        data_base: first word address of the data segment.
        data_end: one past the last word reserved in the data segment; the
            heap starts here.
        entry: instruction index where execution starts (the ``main`` label
            when present, else 0).
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, Union[int, float]] = field(default_factory=dict)
    data_base: int = DATA_BASE_WORDS
    data_end: int = DATA_BASE_WORDS
    entry: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Render the text segment with one instruction per line."""
        index_labels: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            index_labels.setdefault(index, []).append(name)
        lines = []
        for index, instr in enumerate(self.instructions):
            for name in sorted(index_labels.get(index, [])):
                lines.append(f"{name}:")
            lines.append(f"    {format_instruction(instr)}")
        return "\n".join(lines)
