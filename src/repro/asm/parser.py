"""Line-level parsing for the assembler.

Assembly is line oriented. Each line is::

    [label:]... [opcode operand, operand, ...]   [# comment]

or a directive (``.data``, ``.text``, ``.word``, ``.float``, ``.space``,
``.stmt``). Operands are separated by commas; memory operands use
``offset(base)`` syntax where ``offset`` may be an integer or a data label.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.asm.errors import AsmError

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*([eE][+-]?\d+)?|\d+[eE][+-]?\d+|\.\d+([eE][+-]?\d+)?)$")
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\(\s*(?P<base>[$\w]+)\s*\)$")


@dataclass
class SourceLine:
    """One meaningful source line after label/comment stripping."""

    number: int
    labels: List[str] = field(default_factory=list)
    #: Directive name (with leading dot) or opcode mnemonic; None for a
    #: label-only line.
    head: Optional[str] = None
    operands: List[str] = field(default_factory=list)


def strip_comment(text: str) -> str:
    """Remove ``#`` and ``;`` comments (no string literals in this ISA)."""
    for marker in ("#", ";"):
        pos = text.find(marker)
        if pos >= 0:
            text = text[:pos]
    return text


def split_operands(text: str) -> List[str]:
    """Split an operand list on commas, trimming whitespace."""
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


def parse_source(source: str) -> List[SourceLine]:
    """Parse assembly text into :class:`SourceLine` records."""
    parsed: List[SourceLine] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = strip_comment(raw).strip()
        if not text:
            continue
        line = SourceLine(number=number)
        while True:
            match = _LABEL_RE.match(text)
            if not match or match.group(1).startswith("."):
                break
            line.labels.append(match.group(1))
            text = match.group(2).strip()
        if text:
            parts = text.split(None, 1)
            line.head = parts[0].lower() if not parts[0].startswith(".") else parts[0]
            line.operands = split_operands(parts[1]) if len(parts) > 1 else []
        if line.labels or line.head:
            parsed.append(line)
    return parsed


def parse_int(text: str, line: int) -> int:
    """Parse an integer literal (decimal or hex)."""
    if not _INT_RE.match(text):
        raise AsmError(f"expected integer, got {text!r}", line)
    return int(text, 0)


def parse_number(text: str, line: int):
    """Parse an int or float literal."""
    if _INT_RE.match(text):
        return int(text, 0)
    if _FLOAT_RE.match(text):
        return float(text)
    raise AsmError(f"expected number, got {text!r}", line)


def is_int_literal(text: str) -> bool:
    """True if the text is an integer literal."""
    return bool(_INT_RE.match(text))


def parse_mem_operand(text: str, line: int) -> Tuple[str, Optional[str]]:
    """Split a memory operand into ``(offset_text, base_text_or_None)``.

    ``4(sp)`` -> ``("4", "sp")``; ``(t0)`` -> ``("0", "t0")``;
    ``table`` -> ``("table", None)``.
    """
    match = _MEM_RE.match(text)
    if match:
        offset = match.group("off").strip() or "0"
        return offset, match.group("base")
    return text.strip(), None
