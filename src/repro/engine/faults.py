"""Deterministic fault injection for the engine (test and CI harness).

Production dynamic-analysis runs die in ways unit tests never exercise:
workers are OOM-killed mid-job, hang past their deadline, ship back a
payload mangled by a bad DIMM, or fail to attach a shared-memory block the
parent swears it created. This module makes every one of those failures
*injectable on demand and reproducible bit-for-bit*, so the recovery paths
in :mod:`repro.engine.resilience` are pinned by tests instead of trusted.

Activation is environment-driven so the faults reach worker processes under
both ``fork`` and ``spawn`` with zero plumbing:

- ``REPRO_FAULTS`` — comma-separated fault specs, e.g.
  ``"crash@2,hang@5"`` or ``"crash@*x99"``:

  ========== =========================================================
  spec       worker-side effect when executing grid index *k*
  ========== =========================================================
  crash@k    hard process death (``os._exit``) — models OOM kill/segv
  hang@k     sleep far past any per-job timeout — models a stuck job
  corrupt@k  mangle the result payload after its checksum is taken
  shm@k      raise on the shared-memory attach — models a reaped block
  ========== =========================================================

  The target is a grid index or ``*`` (every job). An ``xN`` suffix fires
  the fault N times (default once).

- ``REPRO_FAULTS_DIR`` — state directory holding fire tickets. Each spec
  claims one ticket file per firing with ``O_CREAT | O_EXCL`` (atomic
  across worker processes and respawns), which is what makes "the k-th
  job fails once, its retry succeeds" deterministic. Without a state
  directory a spec fires every time it matches.

Hooks live only in the worker path (:func:`repro.engine.pool._worker_main`),
never in serial in-process execution — which is exactly what lets the
degraded serial fallback complete a grid whose pool is being crash-looped.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

#: Environment variable naming the active fault specs.
ENV_SPEC = "REPRO_FAULTS"
#: Environment variable naming the fire-ticket state directory.
ENV_DIR = "REPRO_FAULTS_DIR"

#: Recognized fault kinds, in the order the worker checks them.
KINDS = ("crash", "hang", "corrupt", "shm")

#: Seconds a ``hang`` fault sleeps — far past any sane per-job timeout.
HANG_SECONDS = 3600.0

#: Exit code of a ``crash`` fault (distinguishable from normal deaths).
CRASH_EXIT_CODE = 17


class FaultSpecError(ValueError):
    """Raised for an unparseable ``REPRO_FAULTS`` value."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: ``kind`` fired at ``target`` up to ``times``."""

    kind: str
    target: Union[int, str]  # a grid index, or "*" for every job
    times: int = 1

    def matches(self, kind: str, index: int) -> bool:
        return self.kind == kind and (self.target == "*" or self.target == index)

    @property
    def label(self) -> str:
        return f"{self.kind}@{self.target}"


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value into specs; raises
    :class:`FaultSpecError` on malformed input (a typo'd spec silently
    doing nothing would be worse than failing loudly)."""
    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "@" not in chunk:
            raise FaultSpecError(f"fault spec {chunk!r} is missing '@target'")
        kind, _, target = chunk.partition("@")
        times = 1
        if "x" in target:
            target, _, count = target.partition("x")
            try:
                times = int(count)
            except ValueError:
                raise FaultSpecError(f"bad fire count in fault spec {chunk!r}") from None
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; choose from {', '.join(KINDS)}"
            )
        if target != "*":
            try:
                target = int(target)
            except ValueError:
                raise FaultSpecError(f"bad target in fault spec {chunk!r}") from None
        if times < 1:
            raise FaultSpecError(f"fire count must be >= 1 in {chunk!r}")
        specs.append(FaultSpec(kind, target, times))
    return tuple(specs)


class FaultPlan:
    """A set of fault specs plus the shared fire-ticket state."""

    def __init__(self, specs: Tuple[FaultSpec, ...], state_dir: Optional[str] = None):
        self.specs = specs
        self.state_dir = state_dir

    def _claim_ticket(self, spec: FaultSpec) -> bool:
        """Atomically claim one remaining firing of ``spec``; ``False`` once
        its budget is spent. With no state directory, always fires."""
        if self.state_dir is None:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        for firing in range(spec.times):
            path = os.path.join(
                self.state_dir, f"{spec.kind}@{spec.target}.{firing}.fired"
            )
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.write(handle, f"pid={os.getpid()}\n".encode("ascii"))
            os.close(handle)
            return True
        return False

    def should_fire(self, kind: str, index: int) -> bool:
        for spec in self.specs:
            if spec.matches(kind, index) and self._claim_ticket(spec):
                return True
        return False


def active_plan() -> Optional[FaultPlan]:
    """The plan described by the current environment, or ``None``. Read per
    call (not cached) so tests can flip the environment between grids and
    spawned workers always see the parent's settings."""
    text = os.environ.get(ENV_SPEC)
    if not text:
        return None
    return FaultPlan(parse_faults(text), os.environ.get(ENV_DIR))


def fire(kind: str, index: int) -> bool:
    """True when a configured fault should trigger for ``kind`` at grid
    ``index`` — and consumes one firing of its budget."""
    plan = active_plan()
    return plan is not None and plan.should_fire(kind, index)


def crash_now() -> None:
    """Die the way an OOM-killed worker dies: no cleanup, no unwinding."""
    os._exit(CRASH_EXIT_CODE)


def hang_now() -> None:
    """Sleep far past any per-job timeout (interruptible by SIGTERM, like a
    genuinely stuck job being reaped)."""
    time.sleep(HANG_SECONDS)


def corrupt_payload(result_dict: dict) -> dict:
    """Return a subtly-mangled copy of a result payload (the kind of damage
    a bad DIMM or truncated pipe read produces: plausible but wrong)."""
    mangled = dict(result_dict)
    mangled["critical_path_length"] = int(mangled.get("critical_path_length", 0)) + 1
    return mangled
