"""Exact JSON serialization of analysis results.

The engine moves :class:`~repro.core.results.AnalysisResult` values across
two boundaries — worker process -> parent, and result cache -> later runs —
and the determinism contract is *byte identity*: a grid run with ``--jobs 4``
or a warm cache must reproduce the serial path exactly. Every field is
therefore an int, bool, string, or structure of those (Python ints survive
JSON exactly at any magnitude), and histograms are encoded as sorted
``[key, count]`` pairs so the encoded form is canonical, not dict-order
dependent.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.config import AnalysisConfig
from repro.core.lifetimes import LifetimeStats
from repro.core.profile import ParallelismProfile
from repro.core.results import AnalysisResult


def _histogram_to_pairs(histogram: Dict[int, int]) -> List[List[int]]:
    return [[int(key), int(count)] for key, count in sorted(histogram.items())]


def _histogram_from_pairs(pairs: List[List[int]]) -> Dict[int, int]:
    return {int(key): int(count) for key, count in pairs}


def profile_to_dict(profile: Optional[ParallelismProfile]) -> Optional[dict]:
    if profile is None:
        return None
    return {"counts": _histogram_to_pairs(profile.counts)}


def profile_from_dict(data: Optional[dict]) -> Optional[ParallelismProfile]:
    if data is None:
        return None
    return ParallelismProfile(_histogram_from_pairs(data["counts"]))


def lifetimes_to_dict(stats: Optional[LifetimeStats]) -> Optional[dict]:
    if stats is None:
        return None
    return {
        "lifetime_histogram": _histogram_to_pairs(stats.lifetime_histogram),
        "sharing_histogram": _histogram_to_pairs(stats.sharing_histogram),
        "values_created": stats.values_created,
        "total_uses": stats.total_uses,
    }


def lifetimes_from_dict(data: Optional[dict]) -> Optional[LifetimeStats]:
    if data is None:
        return None
    return LifetimeStats(
        lifetime_histogram=_histogram_from_pairs(data["lifetime_histogram"]),
        sharing_histogram=_histogram_from_pairs(data["sharing_histogram"]),
        values_created=data["values_created"],
        total_uses=data["total_uses"],
    )


def result_to_dict(result: AnalysisResult) -> dict:
    """Encode a result (and the config that produced it) as JSON-safe data."""
    return {
        "records_processed": result.records_processed,
        "placed_operations": result.placed_operations,
        "critical_path_length": result.critical_path_length,
        "profile": profile_to_dict(result.profile),
        "syscalls": result.syscalls,
        "firewalls": result.firewalls,
        "branches": result.branches,
        "mispredictions": result.mispredictions,
        "peak_live_well": result.peak_live_well,
        "lifetimes": lifetimes_to_dict(result.lifetimes),
        "config": result.config.canonical(),
    }


def result_from_dict(data: dict) -> AnalysisResult:
    """Inverse of :func:`result_to_dict`."""
    return AnalysisResult(
        records_processed=data["records_processed"],
        placed_operations=data["placed_operations"],
        critical_path_length=data["critical_path_length"],
        profile=profile_from_dict(data["profile"]),
        syscalls=data["syscalls"],
        firewalls=data["firewalls"],
        branches=data["branches"],
        mispredictions=data["mispredictions"],
        peak_live_well=data["peak_live_well"],
        lifetimes=lifetimes_from_dict(data["lifetimes"]),
        config=AnalysisConfig.from_canonical(data["config"]),
    )


def result_to_bytes(result: AnalysisResult) -> bytes:
    """Canonical byte encoding (the form the determinism tests compare)."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
