"""Exact JSON serialization of analysis results.

The engine moves :class:`~repro.core.results.AnalysisResult` values across
two boundaries — worker process -> parent, and result cache -> later runs —
and the determinism contract is *byte identity*: a grid run with ``--jobs 4``
or a warm cache must reproduce the serial path exactly. Every field is
therefore an int, bool, string, or structure of those (Python ints survive
JSON exactly at any magnitude), and histograms are encoded as sorted
``[key, count]`` pairs so the encoded form is canonical, not dict-order
dependent.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.config import AnalysisConfig
from repro.core.lifetimes import LifetimeStats
from repro.core.profile import ParallelismProfile
from repro.core.results import AnalysisResult
from repro.core.stream import SegmentSummary

#: Type tag marking a serialized :class:`SegmentSummary` (shard pass-1
#: payload) apart from a plain analysis result.
SEGMENT_SUMMARY_KIND = "segment_summary"


def _histogram_to_pairs(histogram: Dict[int, int]) -> List[List[int]]:
    return [[int(key), int(count)] for key, count in sorted(histogram.items())]


def _histogram_from_pairs(pairs: List[List[int]]) -> Dict[int, int]:
    return {int(key): int(count) for key, count in pairs}


def profile_to_dict(profile: Optional[ParallelismProfile]) -> Optional[dict]:
    if profile is None:
        return None
    return {"counts": _histogram_to_pairs(profile.counts)}


def profile_from_dict(data: Optional[dict]) -> Optional[ParallelismProfile]:
    if data is None:
        return None
    return ParallelismProfile(_histogram_from_pairs(data["counts"]))


def lifetimes_to_dict(stats: Optional[LifetimeStats]) -> Optional[dict]:
    if stats is None:
        return None
    return {
        "lifetime_histogram": _histogram_to_pairs(stats.lifetime_histogram),
        "sharing_histogram": _histogram_to_pairs(stats.sharing_histogram),
        "values_created": stats.values_created,
        "total_uses": stats.total_uses,
    }


def lifetimes_from_dict(data: Optional[dict]) -> Optional[LifetimeStats]:
    if data is None:
        return None
    return LifetimeStats(
        lifetime_histogram=_histogram_from_pairs(data["lifetime_histogram"]),
        sharing_histogram=_histogram_from_pairs(data["sharing_histogram"]),
        values_created=data["values_created"],
        total_uses=data["total_uses"],
    )


def segment_summary_to_dict(summary: SegmentSummary) -> dict:
    """Encode a shard segment summary as canonical JSON-safe data (wells
    and profiles become sorted pairs, exactly like result histograms)."""
    if summary.generic:
        well = [
            [int(loc), entry[0], entry[1], entry[2], int(bool(entry[3]))]
            for loc, entry in sorted(summary.well.items())
        ]
    else:
        well = [[int(loc), int(level)] for loc, level in sorted(summary.well.items())]
    return {
        "__kind__": SEGMENT_SUMMARY_KIND,
        "count": summary.count,
        "prefix_count": summary.prefix_count,
        "generic": summary.generic,
        "floor": summary.floor,
        "deepest": summary.deepest,
        "placed": summary.placed,
        "syscalls": summary.syscalls,
        "firewalls": summary.firewalls,
        "branches": summary.branches,
        "well": well,
        "ring": list(summary.ring) if summary.ring is not None else None,
        "mem_store_level": summary.mem_store_level,
        "mem_deepest_access": summary.mem_deepest_access,
        "profile": (
            _histogram_to_pairs(summary.profile)
            if summary.profile is not None
            else None
        ),
    }


def segment_summary_from_dict(data: dict) -> SegmentSummary:
    """Inverse of :func:`segment_summary_to_dict`."""
    generic = bool(data["generic"])
    if generic:
        well = {
            int(row[0]): [int(row[1]), int(row[2]), int(row[3]), bool(row[4])]
            for row in data["well"]
        }
    else:
        well = {int(row[0]): int(row[1]) for row in data["well"]}
    ring = data["ring"]
    if ring is not None:
        ring = [None if level is None else int(level) for level in ring]
    profile = data["profile"]
    if profile is not None:
        profile = _histogram_from_pairs(profile)
    return SegmentSummary(
        count=int(data["count"]),
        prefix_count=int(data["prefix_count"]),
        generic=generic,
        floor=int(data["floor"]),
        deepest=int(data["deepest"]),
        placed=int(data["placed"]),
        syscalls=int(data["syscalls"]),
        firewalls=int(data["firewalls"]),
        branches=int(data["branches"]),
        well=well,
        ring=ring,
        mem_store_level=int(data["mem_store_level"]),
        mem_deepest_access=int(data["mem_deepest_access"]),
        profile=profile,
    )


def result_to_dict(result) -> dict:
    """Encode a result (and the config that produced it) as JSON-safe data.

    Accepts either payload type the engine ships across its process and
    cache boundaries: a whole-trace :class:`AnalysisResult` or a shard
    job's :class:`SegmentSummary` (tagged with ``__kind__`` so the decoder
    can tell them apart).
    """
    if isinstance(result, SegmentSummary):
        return segment_summary_to_dict(result)
    return {
        "records_processed": result.records_processed,
        "placed_operations": result.placed_operations,
        "critical_path_length": result.critical_path_length,
        "profile": profile_to_dict(result.profile),
        "syscalls": result.syscalls,
        "firewalls": result.firewalls,
        "branches": result.branches,
        "mispredictions": result.mispredictions,
        "peak_live_well": result.peak_live_well,
        "lifetimes": lifetimes_to_dict(result.lifetimes),
        "config": result.config.canonical(),
    }


def result_from_dict(data: dict):
    """Inverse of :func:`result_to_dict` (type-dispatched on ``__kind__``)."""
    if data.get("__kind__") == SEGMENT_SUMMARY_KIND:
        return segment_summary_from_dict(data)
    return AnalysisResult(
        records_processed=data["records_processed"],
        placed_operations=data["placed_operations"],
        critical_path_length=data["critical_path_length"],
        profile=profile_from_dict(data["profile"]),
        syscalls=data["syscalls"],
        firewalls=data["firewalls"],
        branches=data["branches"],
        mispredictions=data["mispredictions"],
        peak_live_well=data["peak_live_well"],
        lifetimes=lifetimes_from_dict(data["lifetimes"]),
        config=AnalysisConfig.from_canonical(data["config"]),
    )


def result_to_bytes(result) -> bytes:
    """Canonical byte encoding (the form the determinism tests compare)."""
    return json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
