"""Sharded analysis of trace files across the engine's worker pool.

This is the glue between :mod:`repro.core.stream` (frontier/summary/splice
semantics) and :mod:`repro.engine.pool` (process fan-out, caching,
journaled resume). The shape:

1. :func:`repro.trace.chunked.segment_manifest` splits the file into
   window-aligned segments, each with a byte extent and a standalone
   content digest.
2. One ``method="segment"`` :class:`AnalysisJob` per segment runs in the
   pool, loading *only its own byte extent* through a ``("slice", ...)``
   trace reference and returning a
   :class:`~repro.core.stream.SegmentSummary`. Summaries ride the same
   serialization, result-cache, and run-journal machinery as whole
   results — a crash mid-shard resumes at segment granularity for free.
3. A sequential stitch pass replays each segment's short syscall prefix
   in-process and :func:`~repro.core.stream.splice`\\ s the summary on,
   producing a result identical to whole-trace analysis.

Configurations that cannot be spliced (optimistic syscalls, branch
predictors, constrained resources, lifetimes — see
:func:`~repro.core.stream.splice_eligible`), and traces whose segments
lack syscalls, fall back to exact sequential streaming. Either way the
peak resident set is bounded by segment size, never trace size.

The :class:`ShardTraceStore` speaks the trace-store protocol the pool
expects (``trace`` / ``columnar`` / ``ensure_on_disk``), but every
"workload" is one segment of one file, so cache keys and journal entries
for different segments never collide: the workload name embeds the trace
digest and segment index, and the per-segment digest stands in for the
whole-trace digest.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from repro.core.config import AnalysisConfig
from repro.core.results import AnalysisResult
from repro.core.stream import (
    align_shard_size,
    advance,
    finalize,
    new_frontier,
    splice,
    splice_eligible,
    stream_analyze_file,
)
from repro.engine.jobs import AnalysisJob
from repro.engine.pool import JobFailedError
from repro.trace.chunked import (
    DEFAULT_SHARD_RECORDS,
    TraceManifest,
    decode_prefix,
    decode_segment,
    segment_manifest,
)


def shard_workload_name(trace_digest: str, index: int) -> str:
    """The synthetic workload name identifying one segment in cache keys,
    journals, and progress lines."""
    return f"shard-{trace_digest[:16]}-{index:05d}"


class ShardTraceStore:
    """A trace store whose workloads are the segments of one trace file.

    The pool treats stores as opaque trace suppliers; this one maps the
    synthetic per-segment workload names back to manifest entries and
    serves each segment from its byte extent. ``trace_ref`` (consulted by
    :func:`~repro.engine.pool.execute_jobs`) hands workers a ``"slice"``
    reference — path, offset, length, count, digest — so a worker reads
    and digest-verifies exactly one segment, never the whole file.
    """

    def __init__(self, path, manifest: TraceManifest):
        self.path = os.path.abspath(os.fspath(path))
        self.manifest = manifest
        # The pool requires a disk-backed store for parallel runs; the
        # trace file's own directory is it (nothing is ever written there).
        self.directory = os.path.dirname(self.path)
        self._names = {
            shard_workload_name(manifest.trace_digest, entry.index): entry.index
            for entry in manifest.entries
        }

    def _entry(self, workload: str, cap: int):
        index = self._names.get(workload)
        if index is None:
            raise KeyError(f"unknown workload {workload!r}")
        entry = self.manifest.entries[index]
        if cap != entry.count:
            raise ValueError(
                f"segment {index} holds {entry.count} records, job capped {cap}"
            )
        return entry

    def columnar(self, workload: str, cap: int, optimize: bool = False):
        entry = self._entry(workload, cap)
        return decode_segment(self.path, self.manifest, entry.index)

    def trace(self, workload: str, cap: int, optimize: bool = False):
        return self.columnar(workload, cap, optimize=optimize).to_buffer()

    def ensure_on_disk(self, workload: str, cap: int, optimize: bool = False):
        """``(path, digest)`` for the job's input: the shared trace file
        plus the *segment's* standalone digest (the identity that keys
        caches and journals — two segments of one file must not collide)."""
        entry = self._entry(workload, cap)
        return self.path, entry.digest

    def trace_ref(
        self, workload: str, cap: int, optimize: bool = False
    ) -> Tuple[str, str]:
        """The worker-side loading instruction: decode one byte extent."""
        entry = self._entry(workload, cap)
        spec = {
            "path": self.path,
            "offset": entry.offset,
            "length": entry.length,
            "count": entry.count,
            "digest": entry.digest,
            "segments": {
                "data_base": self.manifest.segments.data_base,
                "stack_floor": self.manifest.segments.stack_floor,
                "stack_top": self.manifest.segments.stack_top,
            },
        }
        return ("slice", json.dumps(spec, sort_keys=True))

    def invalidate(self, workload: str, cap: int, optimize: bool = False) -> bool:
        """A corrupt segment cannot be regenerated — the trace file is the
        caller's source artifact, not a cache — so decode failures are
        permanent here."""
        return False


def shard_grid(
    manifest: TraceManifest, config: AnalysisConfig, backend: str = "python"
) -> List[AnalysisJob]:
    """The pass-1 job grid: one ``method="segment"`` job per segment that
    has a syscall to cut at *and* records after it (a segment whose only
    records are its prefix has an empty suffix — nothing to summarize)."""
    return [
        AnalysisJob(
            workload=shard_workload_name(manifest.trace_digest, entry.index),
            cap=entry.count,
            config=config,
            method="segment",
            backend=backend,
        )
        for entry in manifest.entries
        if entry.first_syscall >= 0 and entry.prefix_count < entry.count
    ]


def shard_analyze_file(
    path,
    config: Optional[AnalysisConfig] = None,
    shard_size: Optional[int] = None,
    engine=None,
    backend: str = "python",
) -> AnalysisResult:
    """Analyze a PGT2 trace file with bounded memory, in parallel when
    possible.

    With an ``engine`` running more than one worker and a splice-eligible
    ``config``, segment suffixes are summarized across the pool and
    stitched in submission order; otherwise the file streams sequentially
    through one frontier (:func:`~repro.core.stream.stream_analyze_file`).
    Both paths produce results identical to whole-trace analysis.
    """
    if config is None:
        config = AnalysisConfig()
    size = align_shard_size(
        config, shard_size if shard_size is not None else DEFAULT_SHARD_RECORDS
    )
    if engine is None or engine.jobs <= 1 or not splice_eligible(config):
        return stream_analyze_file(path, config, chunk_records=size, backend=backend)

    manifest = segment_manifest(path, size)
    grid = shard_grid(manifest, config, backend)
    if len(manifest.entries) <= 1 or not grid:
        return stream_analyze_file(path, config, chunk_records=size, backend=backend)

    store = ShardTraceStore(path, manifest)
    outcomes = engine.run_grid_with_store(grid, store)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        raise JobFailedError(failures)
    summaries = {
        outcome.job.workload: outcome.result for outcome in outcomes
    }

    fr = new_frontier(config, manifest.segments, backend)
    for entry in manifest.entries:
        name = shard_workload_name(manifest.trace_digest, entry.index)
        summary = summaries.get(name)
        if summary is not None:
            prefix = decode_prefix(path, manifest, entry.index)
            advance(fr, prefix, 0, entry.prefix_count)
            splice(fr, summary)
        else:
            segment = decode_segment(path, manifest, entry.index)
            advance(fr, segment, 0, entry.count)
    return finalize(fr)
