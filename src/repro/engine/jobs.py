"""Analysis job specifications and their stable identities.

A *job* is the engine's unit of parallelism: one Paragraph analysis of one
capped workload trace under one configuration. Jobs — not trace shards —
are the unit because a single analysis is an inherently serial scan (each
record's placement depends on the live-well state left by every earlier
record), while the experiment grids of the paper (Tables 2-4, Figures 7-8,
every ablation) are embarrassingly parallel across (trace x config) points.

Identity is content-based: a job digest covers the workload name, cap,
optimization flag, analysis method, and the full canonical configuration;
combined with the trace content digest it keys the on-disk result cache,
so identical work is never recomputed — across processes or across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.results import AnalysisResult
from repro.core.twopass import twopass_analyze
from repro.trace.buffer import TraceBuffer
from repro.trace.columnar import ColumnarTrace


def _analyze_legacy(trace, config: AnalysisConfig) -> AnalysisResult:
    """The streaming hot loop, forced onto record tuples (``forward``
    would route a columnar trace to the kernels). Late-binds through the
    module attribute so the verification harness can mutate it."""
    from repro.core import analyzer

    if isinstance(trace, ColumnarTrace):
        trace = trace.to_buffer()
    return analyzer.analyze(trace, config)


def _analyze_columnar(trace, config: AnalysisConfig, backend: str = "python") -> AnalysisResult:
    """The config-specialized columnar kernels, forced for every config
    (including generic ones ``forward`` would bounce back to tuples)."""
    from repro.core import kernels

    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_buffer(trace)
    return kernels.analyze_columnar(trace, config, backend=backend)


def _analyze_vkernel(trace, config: AnalysisConfig) -> AnalysisResult:
    """The vectorized NumPy backend (:mod:`repro.core.vkernels`), pinned
    for the differential harness. Routes through the kernel dispatcher's
    backend knob, so ineligible configurations (or a missing NumPy) fall
    back to the python kernels — the results are identical either way."""
    from repro.core import kernels

    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_buffer(trace)
    return kernels.analyze_columnar(trace, config, backend="numpy")


def _analyze_reference(trace, config: AnalysisConfig) -> AnalysisResult:
    from repro.core.reference import reference_analyze

    if isinstance(trace, ColumnarTrace):
        trace = trace.to_buffer()
    return reference_analyze(trace, config)


def _analyze_oracle(trace, config: AnalysisConfig) -> AnalysisResult:
    # Imported lazily: repro.verify imports this module for METHODS.
    from repro.verify.oracle import oracle_analyze

    if isinstance(trace, ColumnarTrace):
        trace = trace.to_buffer()
    return oracle_analyze(trace, config)


def _analyze_stream(trace, config: AnalysisConfig, backend: str = "python") -> AnalysisResult:
    """Chunked streaming re-analysis: one frontier advanced over ~3 cuts
    (exercising resume-at-a-cut for every configuration). Late-binds
    through the module attribute so the harness can mutate it."""
    from repro.core import stream

    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_buffer(trace)
    chunk = max(1, (len(trace) + 2) // 3)
    return stream.stream_analyze_trace(trace, config, chunk_records=chunk, backend=backend)


def _analyze_sharded(trace, config: AnalysisConfig, backend: str = "python") -> AnalysisResult:
    """Full shard machinery in-process over ~4 segments: fresh-frontier
    suffix summaries where the configuration allows splicing, prefix
    replay + stitch otherwise (see :mod:`repro.core.stream`)."""
    from repro.core import stream

    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_buffer(trace)
    shard = max(1, (len(trace) + 3) // 4)
    return stream.shard_analyze_trace(trace, config, shard_size=shard, backend=backend)


def _analyze_segment(trace, config: AnalysisConfig, backend: str = "python"):
    """Shard pass 1: treat the (segment) trace as standalone and summarize
    everything past its first conservative syscall from a fresh frontier.
    Returns a :class:`~repro.core.stream.SegmentSummary`, not an
    :class:`AnalysisResult` — the stitch pass splices it."""
    from repro.core import stream

    if not isinstance(trace, ColumnarTrace):
        trace = ColumnarTrace.from_buffer(trace)
    return stream.summarize_segment(trace, config, backend=backend)


#: Analysis methods a job may request. Values take ``(trace, config)`` and
#: return an :class:`AnalysisResult`. ``forward`` and ``twopass`` are the
#: production pair (identical results except ``peak_live_well``, see
#: :mod:`repro.core.twopass`); the rest pin one implementation each for
#: the differential verification harness (:mod:`repro.verify`) — ``legacy``
#: (streaming loop on tuples), ``columnar`` (kernels, every config),
#: ``reference`` (readable live-well pass), and ``oracle`` (explicit DDG +
#: longest path; sentinel ``firewalls``/``peak_live_well``). ``stream``
#: and ``sharded`` run the bounded-memory chunk/shard machinery of
#: :mod:`repro.core.stream` (results identical to ``forward``); ``segment``
#: is the shard pass-1 worker method and returns a
#: :class:`~repro.core.stream.SegmentSummary` instead of a result;
#: ``vkernel`` pins the vectorized NumPy backend for the same harness.
METHODS: Dict[str, Callable[[TraceBuffer, AnalysisConfig], AnalysisResult]] = {
    "forward": analyze,
    "twopass": twopass_analyze,
    "legacy": _analyze_legacy,
    "columnar": _analyze_columnar,
    "vkernel": _analyze_vkernel,
    "reference": _analyze_reference,
    "oracle": _analyze_oracle,
    "stream": _analyze_stream,
    "sharded": _analyze_sharded,
    "segment": _analyze_segment,
}

#: Methods whose fastest input is a :class:`ColumnarTrace`.
_COLUMNAR_METHODS = frozenset(
    {"forward", "columnar", "vkernel", "stream", "sharded", "segment"}
)

#: Methods whose callable accepts a ``backend=`` keyword (the rest are
#: implementation-pinned and ignore the job's backend preference).
_BACKEND_METHODS = frozenset({"forward", "columnar", "stream", "sharded", "segment"})


@dataclass(frozen=True)
class AnalysisJob:
    """One (workload, cap, config) analysis request.

    Attributes:
        workload: suite workload name (resolved in the worker process).
        cap: instruction cap — the first ``cap`` dynamic instructions.
        config: the Paragraph configuration to analyze under.
        method: ``"forward"`` (streaming, method 2), ``"twopass"``
            (reverse-annotated, method 1), or one of the pinned
            verification methods in :data:`METHODS`.
        optimize: analyze the compiler-optimized trace of the workload
            (the abl-compiler grid axis).
        backend: ``"python"`` (default) or ``"numpy"`` — the execution
            strategy preference forwarded to backend-aware methods.
            Never part of the job's :meth:`digest`: the backends are
            bit-identical, so both spellings of a job share one cache
            entry. Implementation-pinned methods ignore it.
    """

    workload: str
    cap: int
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    method: str = "forward"
    optimize: bool = False
    backend: str = "python"

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValueError(
                f"unknown analysis method {self.method!r}; "
                f"choose from {', '.join(METHODS)}"
            )
        if self.cap < 1:
            raise ValueError(f"cap must be >= 1, got {self.cap}")
        if self.backend not in ("python", "numpy"):
            raise ValueError(
                f"unknown analysis backend {self.backend!r}; "
                "choose from python, numpy"
            )

    # -- identity ----------------------------------------------------------

    def canonical(self) -> dict:
        """JSON-safe canonical form (wire format across processes and the
        job half of cache keys). The ``backend`` key appears only when it
        is not the default, so canonical forms written before the backend
        knob existed stay byte-identical."""
        data = {
            "workload": self.workload,
            "cap": self.cap,
            "config": self.config.canonical(),
            "method": self.method,
            "optimize": self.optimize,
        }
        if self.backend != "python":
            data["backend"] = self.backend
        return data

    @classmethod
    def from_canonical(cls, data: dict) -> "AnalysisJob":
        """Inverse of :meth:`canonical` (worker-side reconstruction)."""
        return cls(
            workload=data["workload"],
            cap=data["cap"],
            config=AnalysisConfig.from_canonical(data["config"]),
            method=data["method"],
            optimize=data["optimize"],
            backend=data.get("backend", "python"),
        )

    def digest(self) -> str:
        """Stable hex digest of the job spec, identical across processes.

        The backend is stripped first: it is an execution strategy, not
        semantics, so a numpy-backed job hits (and fills) the same result
        cache entry as its python twin.
        """
        canonical = self.canonical()
        canonical.pop("backend", None)
        payload = json.dumps(
            canonical, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    @property
    def short_digest(self) -> str:
        """First 12 hex chars of :meth:`digest` — the compact tag run
        journals and retry log lines use to reference a job."""
        return self.digest()[:12]

    def describe(self) -> str:
        """Short human-readable tag for progress lines."""
        extras = []
        if self.method != "forward":
            extras.append(self.method)
        if self.backend != "python":
            extras.append(self.backend)
        if self.optimize:
            extras.append("optimized")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"{self.workload}@{self.cap} {self.config.describe()}{suffix}"

    # -- trace identity ----------------------------------------------------

    @property
    def trace_key(self) -> tuple:
        """The (workload, cap, optimize) triple identifying the input trace;
        jobs sharing a trace key share one cached trace load per worker."""
        return (self.workload, self.cap, self.optimize)

    @property
    def prefers_columnar(self) -> bool:
        """True when the job's method runs fastest on a
        :class:`~repro.trace.columnar.ColumnarTrace` (the forward analyzer
        dispatches to the config-specialized kernels, and the ``columnar``
        method requires one); tuple-scanning methods need the materialized
        record list."""
        return self.method in _COLUMNAR_METHODS

    def run(self, trace) -> AnalysisResult:
        """Execute this job against an already-loaded trace.

        Accepts either representation: a columnar trace is handed straight
        to the kernel dispatcher for forward analyses and materialized back
        to a record buffer for methods that need one.
        """
        if isinstance(trace, ColumnarTrace) and not self.prefers_columnar:
            trace = trace.to_buffer()
        if self.backend != "python" and self.method in _BACKEND_METHODS:
            return METHODS[self.method](trace, self.config, backend=self.backend)
        return METHODS[self.method](trace, self.config)
