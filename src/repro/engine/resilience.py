"""Fault-tolerant grid execution: retry/backoff, journaled resume, sweeps.

The experiment grids of the paper (Tables 2-4, Figures 7-8) are hours-long
multi-config sweeps at production trace sizes; a single OOM-killed worker,
stuck job, corrupt cache entry, or leaked ``/dev/shm`` segment must never
cost the whole run. This module wraps :func:`repro.engine.pool.execute_jobs`
with the policies that make a grid survivable:

**Failure taxonomy.** Every failed outcome is classified *transient* (worker
crash, per-job timeout, shm attach failure, corrupted result payload,
trace/cache IO errors — retrying can help) or *permanent* (unknown
workload, analysis exception, digest mismatch — deterministic, retrying is
waste). Transient failures are retried with exponential backoff plus
deterministic jitter; a job still failing after its attempt budget is
*quarantined* — reported failed with the attempt count, never retried again.

**Journaled runs.** With a :class:`RunJournal`, every terminal outcome is
appended to a schema-versioned JSONL journal (fsync'd per record, keyed by
job digest + trace content digest) the moment it lands. ``--resume
<run-id>`` replays finished jobs straight from the journal and re-executes
only the remainder, so a crash or Ctrl-C halfway through a grid costs only
the unfinished half.

**Graceful degradation.** A pool whose replacement-worker budget is
exhausted (:class:`~repro.engine.pool.PoolBrokenError`) falls back to
in-process serial execution with a loud warning instead of aborting — slow
results beat no results. Shared-memory blocks are registered in a per-process
:class:`ShmManifest` swept on startup, at exit, and on SIGTERM, so even a
SIGKILL'd run never leaks ``/dev/shm`` segments past the next invocation.
"""

from __future__ import annotations

import atexit
import dataclasses
import errno
import hashlib
import json
import logging
import os
import signal
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob
from repro.engine.pool import (
    JobOutcome,
    PoolBrokenError,
    execute_jobs,
)
from repro.engine.progress import (
    JOB_FAILED,
    JOB_REPLAYED,
    JOB_RETRY,
    JobEvent,
    ProgressListener,
)
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.obs import metrics as obs
from repro.obs.spans import span

logger = logging.getLogger(__name__)

#: Failure categories.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: Error-string markers of failures worth retrying. Matched as substrings
#: of the one-line ``JobOutcome.error`` — the wire format every failure
#: path already produces (``"ExcType: message"``).
_TRANSIENT_MARKERS = (
    "worker crashed",            # liveness sweep found the process dead
    "timeout:",                  # per-job wall-clock limit enforced
    "job lost after worker termination",  # claimed task never reported
    "shm attach",                # shared-memory block vanished/failed
    "corrupted result payload",  # parent-side checksum mismatch
    "truncated",                 # trace/cache file cut short (IO error)
    "FileNotFoundError",         # cache/trace file reaped under us
    "PermissionError",
    "BlockingIOError",
    "BrokenPipeError",
    "ConnectionResetError",
    "OSError",
)

#: Markers that force PERMANENT even when a transient marker also matches
#: (a digest mismatch *is* reported via an OSError-adjacent path but
#: retrying cannot fix stale content addressed by the wrong digest).
_PERMANENT_MARKERS = (
    "unknown workload",
    "digest mismatch",
)

#: Trace-cache corruption markers: transient *and* the cached trace file is
#: invalidated before the retry so the parent regenerates it from the
#: workload instead of re-reading the same damaged bytes.
_INVALIDATE_MARKERS = ("truncated record", "truncated header")


def classify_failure(error: Optional[str]) -> str:
    """Classify a one-line failure description as ``transient`` or
    ``permanent``. Unrecognized failures default to permanent: an analysis
    exception is deterministic, and retrying a mystery three times only
    delays the report."""
    if not error:
        return PERMANENT
    for marker in _PERMANENT_MARKERS:
        if marker in error:
            return PERMANENT
    for marker in _TRANSIENT_MARKERS:
        if marker in error:
            return TRANSIENT
    return PERMANENT


# -- retry policy --------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job retry budget and backoff shape.

    Attributes:
        max_attempts: total executions per job (1 = never retry).
        base_delay: backoff before the first retry, in seconds.
        max_delay: backoff ceiling.
        jitter: +/- fraction of the raw delay applied as deterministic
            jitter (seeded from the job key, not the clock, so reruns and
            tests see identical schedules).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based) of the job
        identified by ``key``: exponential, capped, with deterministic
        jitter so a thousand quarantine-bound jobs don't retry in
        lockstep."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        seed = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(seed[:4], "big") / 0xFFFFFFFF
        return raw * (1.0 + self.jitter * (2.0 * fraction - 1.0))


# -- run journal ---------------------------------------------------------------

#: Bump when the journal record layout changes; old journals refuse replay.
JOURNAL_SCHEMA = 1


def new_run_id() -> str:
    """A fresh, filename-safe run id (timestamp + random suffix)."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


class JournalError(Exception):
    """Raised when a journal cannot be opened for resume."""


class RunJournal:
    """Append-only JSONL journal of one grid run.

    Records land as they complete (one fsync'd line each), so the journal
    is exactly as current as the run itself — a SIGKILL loses nothing that
    already finished. Replay identity is content-based: an ``outcome``
    line is keyed by ``(job digest, trace content digest)``, so a resumed
    run with a changed config or regenerated trace re-executes rather than
    replaying stale results.
    """

    def __init__(self, directory: str, run_id: Optional[str] = None, resume: bool = False):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.run_id = run_id or new_run_id()
        self.path = os.path.join(directory, f"{self.run_id}.jsonl")
        self._replay: Dict[Tuple[str, Optional[str]], dict] = {}
        if resume:
            self._replay = self._load()
        self._handle = open(self.path, "a")
        if self._handle.tell() == 0:
            self._append({"event": "run", "run_id": self.run_id})

    # -- writing -----------------------------------------------------------

    def _append(self, entry: dict) -> None:
        entry = {"schema": JOURNAL_SCHEMA, **entry}
        self._handle.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_attempt(
        self, outcome: JobOutcome, trace_digest: Optional[str], attempt: int
    ) -> None:
        """Journal a failed-but-retryable execution (audit trail only;
        attempts never replay)."""
        self._append(
            {
                "event": "attempt",
                "index": outcome.index,
                "job": outcome.job.digest(),
                "trace": trace_digest,
                "attempt": attempt,
                "error": outcome.error,
            }
        )

    def record_outcome(self, outcome: JobOutcome, trace_digest: Optional[str]) -> None:
        """Journal a terminal outcome the moment it lands."""
        self._append(
            {
                "event": "outcome",
                "index": outcome.index,
                "job": outcome.job.digest(),
                "spec": outcome.job.canonical(),
                "trace": trace_digest,
                "ok": outcome.ok,
                "cached": outcome.cached,
                "seconds": outcome.seconds,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "result": result_to_dict(outcome.result) if outcome.ok else None,
            }
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    # -- replay ------------------------------------------------------------

    def _load(self) -> Dict[Tuple[str, Optional[str]], dict]:
        """Parse the journal for resume. A torn final line (the fsync that
        never finished before a SIGKILL) is tolerated and ignored; a
        schema mismatch refuses replay loudly rather than resurrecting
        results of unknown shape."""
        if not os.path.exists(self.path):
            raise JournalError(
                f"no journal for run {self.run_id!r} under {self.directory}"
            )
        replay: Dict[Tuple[str, Optional[str]], dict] = {}
        with open(self.path, "r") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # Only a torn tail is tolerable; damage elsewhere means
                    # the file is not trustworthy.
                    remainder = handle.read(1)
                    if remainder:
                        raise JournalError(
                            f"corrupt journal line {lineno} in {self.path}"
                        ) from None
                    logger.warning(
                        "ignoring torn final journal line %d in %s "
                        "(interrupted mid-write)", lineno, self.path,
                    )
                    break
                if entry.get("schema") != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"journal {self.path} has schema "
                        f"{entry.get('schema')!r}, expected {JOURNAL_SCHEMA}"
                    )
                if entry.get("event") != "outcome" or not entry.get("ok"):
                    continue
                if entry.get("result") is None:
                    continue
                replay[(entry["job"], entry.get("trace"))] = entry
        return replay

    def lookup(self, job_digest: str, trace_digest: Optional[str]) -> Optional[dict]:
        """The replayable outcome entry for a (job, trace) identity."""
        if trace_digest is None:
            return None
        return self._replay.get((job_digest, trace_digest))

    @property
    def replay_count(self) -> int:
        return len(self._replay)


# -- shared-memory manifest ----------------------------------------------------


#: Environment override for the manifest directory (test isolation, CI).
ENV_MANIFEST_DIR = "REPRO_SHM_MANIFEST_DIR"


def default_manifest_dir() -> str:
    """Where run manifests live unless told otherwise (stable across runs
    of the same user on the same machine, which is what makes the startup
    sweep find a dead run's leavings)."""
    override = os.environ.get(ENV_MANIFEST_DIR)
    if override:
        return override
    return os.path.join(tempfile.gettempdir(), "paragraph-shm")


def _unlink_block(name: str) -> bool:
    """Best-effort unlink of a shared-memory block by name; ``True`` when a
    block was actually reclaimed."""
    from multiprocessing import shared_memory

    try:
        try:
            block = shared_memory.SharedMemory(name=name, create=False, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            block = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    try:
        block.unlink()
    except FileNotFoundError:  # lost a race with another sweeper
        pass
    block.close()
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError as error:
        return error.errno not in (errno.ESRCH,)
    return True


class ShmManifest:
    """Parent-side ledger of live shared-memory blocks, persisted to
    ``<dir>/<pid>.manifest`` so blocks survive being forgotten but never
    survive being leaked: a later run finds the manifest of a dead pid and
    unlinks everything it names."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or default_manifest_dir()
        os.makedirs(self.directory, exist_ok=True)
        self._pid = os.getpid()
        self.path = os.path.join(self.directory, f"{self._pid}.manifest")
        self._names: List[str] = []

    def _write(self) -> None:
        if not self._names:
            try:
                os.remove(self.path)
            except OSError:
                pass
            return
        blob = "".join(f"{name}\n" for name in self._names)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, prefix=".tmp-", delete=False
        )
        with handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, self.path)

    def register(self, name: str) -> None:
        """Record a block *before* it can leak (called at creation)."""
        if name not in self._names:
            self._names.append(name)
            self._write()

    def release(self, name: str) -> None:
        """Forget a block that was cleanly unlinked."""
        if name in self._names:
            self._names.remove(name)
            self._write()

    def sweep_own(self) -> List[str]:
        """Unlink every block still on this run's ledger (atexit/SIGTERM
        path). A no-op in forked children — only the process that created
        the blocks may reap them."""
        if os.getpid() != self._pid:
            return []
        reclaimed = [name for name in self._names if _unlink_block(name)]
        self._names = []
        self._write()
        return reclaimed


def sweep_stale_manifests(directory: Optional[str] = None) -> List[str]:
    """Startup sweep: reclaim the shared-memory blocks of every manifest
    whose owning process is gone (SIGKILL'd runs can't clean up after
    themselves, so the *next* run does it for them). Returns the names of
    the blocks actually unlinked."""
    directory = directory or default_manifest_dir()
    if not os.path.isdir(directory):
        return []
    reclaimed: List[str] = []
    for filename in os.listdir(directory):
        if not filename.endswith(".manifest"):
            continue
        try:
            pid = int(filename[: -len(".manifest")])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        path = os.path.join(directory, filename)
        try:
            with open(path, "r") as handle:
                names = [line.strip() for line in handle if line.strip()]
        except OSError:
            continue
        for name in names:
            if _unlink_block(name):
                reclaimed.append(name)
        try:
            os.remove(path)
        except OSError:
            pass
    if reclaimed:
        logger.warning(
            "swept %d leaked shared-memory block(s) from dead runs: %s",
            len(reclaimed),
            ", ".join(reclaimed),
        )
    return reclaimed


class _ShmGuard:
    """atexit + SIGTERM coverage for one manifest's lifetime. SIGINT needs
    no handler (KeyboardInterrupt unwinds through the ``finally`` chain);
    SIGKILL needs none either (the next run's startup sweep covers it)."""

    def __init__(self, manifest: ShmManifest):
        self.manifest = manifest
        self._previous = None
        self._installed = False

    def __enter__(self):
        atexit.register(self.manifest.sweep_own)
        try:
            if threading.current_thread() is threading.main_thread():
                self._previous = signal.getsignal(signal.SIGTERM)
                if self._previous in (signal.SIG_DFL, None):
                    signal.signal(signal.SIGTERM, self._on_sigterm)
                    self._installed = True
        except (ValueError, OSError):
            self._installed = False
        return self

    def _on_sigterm(self, signum, frame) -> None:
        self.manifest.sweep_own()
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)

    def __exit__(self, *exc_info):
        if self._installed:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except (ValueError, OSError):
                pass
        atexit.unregister(self.manifest.sweep_own)
        return False


# -- resilient execution -------------------------------------------------------


class _FailFastAbort(Exception):
    """Internal control flow: first unretryable failure under fail-fast."""

    def __init__(self, outcome: JobOutcome):
        self.outcome = outcome
        super().__init__(outcome.error)


def _trace_digest_for(store, job: AnalysisJob) -> Optional[str]:
    """Content digest of a job's input trace (journal replay identity);
    ``None`` when the trace cannot be produced — the job will fail in the
    executor with the real error."""
    try:
        if getattr(store, "directory", None):
            _, digest = store.ensure_on_disk(job.workload, job.cap, optimize=job.optimize)
            return digest
        return store.trace(job.workload, job.cap, optimize=job.optimize).digest()
    except Exception:  # noqa: BLE001 - surfaced by the executor, not here
        return None


def execute_jobs_resilient(
    jobs: Sequence[AnalysisJob],
    store,
    njobs: int = 1,
    result_cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    progress: Optional[ProgressListener] = None,
    start_method: Optional[str] = None,
    shared_memory: bool = True,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    fail_fast: bool = False,
    manifest_dir: Optional[str] = None,
    sleep: Callable[[float], None] = time.sleep,
    metrics: Optional[bool] = None,
) -> List[JobOutcome]:
    """Execute a grid with retries, journaling, and degradation.

    A drop-in superset of :func:`~repro.engine.pool.execute_jobs`: same
    submission-order outcome list, plus

    - transient failures retried up to ``retry.max_attempts`` total
      executions with backoff (then quarantined);
    - every terminal outcome journaled as it lands when ``journal`` is
      given, and journal entries replayed instead of re-executed;
    - pool-level failure (:class:`PoolBrokenError`) degrading the rest of
      the grid to in-process serial execution with a loud warning;
    - stale shared-memory manifests swept before the pool starts, and this
      run's blocks guarded by manifest + atexit/SIGTERM hooks.
    """
    retry = retry or RetryPolicy()
    emit = progress or (lambda event: None)
    total = len(jobs)
    final: List[Optional[JobOutcome]] = [None] * total
    attempts = [0] * total

    sweep_stale_manifests(manifest_dir)
    manifest = ShmManifest(manifest_dir) if njobs > 1 else None

    # Trace digests are only needed for journal identity; without a journal
    # the executor computes everything it needs itself.
    trace_digests: Dict[tuple, Optional[str]] = {}
    if journal is not None:
        for job in jobs:
            if job.trace_key not in trace_digests:
                trace_digests[job.trace_key] = _trace_digest_for(store, job)

    # Replay completed jobs from the journal before any execution.
    if journal is not None and journal.replay_count:
        for index, job in enumerate(jobs):
            entry = journal.lookup(job.digest(), trace_digests.get(job.trace_key))
            if entry is None:
                continue
            final[index] = JobOutcome(
                index,
                job,
                result=result_from_dict(entry["result"]),
                seconds=entry.get("seconds", 0.0),
                attempts=entry.get("attempts", 1),
                replayed=True,
            )
            obs.inc("journal.replayed")
            emit(JobEvent(JOB_REPLAYED, index, total, job))

    degraded = False

    def degrade(reason: str) -> None:
        nonlocal degraded
        degraded = True
        obs.inc("pool.degraded")
        logger.warning(
            "worker pool unhealthy (%s); degrading the remaining grid to "
            "in-process serial execution — slower, but the run completes",
            reason,
        )

    guard_context = _ShmGuard(manifest) if manifest is not None else None
    try:
        if guard_context is not None:
            guard_context.__enter__()
        rounds = 0
        while True:
            pending = [index for index in range(total) if final[index] is None]
            if not pending:
                break
            rounds += 1
            if rounds > retry.max_attempts + 2:  # belt over suspenders
                for index in pending:
                    final[index] = JobOutcome(
                        index, jobs[index], error="retry scheduling stuck; giving up"
                    )
                break

            mapping = list(pending)
            batch = [jobs[index] for index in pending]
            retry_queue: List[int] = []
            retrying = set()

            def remap_event(event: JobEvent) -> None:
                index = mapping[event.index]
                if event.kind == JOB_FAILED and index in retrying:
                    return  # already reported as a retry event by land()
                emit(dataclasses.replace(event, index=index, total=total))

            def land(outcome: JobOutcome) -> None:
                index = mapping[outcome.index]
                job = jobs[index]
                attempts[index] += 1
                outcome = dataclasses.replace(
                    outcome, index=index, attempts=attempts[index]
                )
                digest = trace_digests.get(job.trace_key) if journal else None
                if outcome.ok:
                    final[index] = outcome
                    if journal is not None:
                        journal.record_outcome(outcome, digest)
                    return
                category = classify_failure(outcome.error)
                if category == TRANSIENT and attempts[index] < retry.max_attempts:
                    if journal is not None:
                        journal.record_attempt(outcome, digest, attempts[index])
                    if any(marker in outcome.error for marker in _INVALIDATE_MARKERS):
                        invalidate = getattr(store, "invalidate", None)
                        if invalidate is not None:
                            invalidate(job.workload, job.cap, optimize=job.optimize)
                    retry_queue.append(index)
                    retrying.add(index)
                    obs.inc("retry.scheduled")
                    emit(
                        JobEvent(
                            JOB_RETRY, index, total, job,
                            outcome.seconds, outcome.error, outcome.worker,
                        )
                    )
                    return
                if category == TRANSIENT and retry.max_attempts > 1:
                    obs.inc("jobs.quarantined")
                    outcome = dataclasses.replace(
                        outcome,
                        error=f"{outcome.error} "
                        f"[quarantined after {attempts[index]} attempts]",
                    )
                final[index] = outcome
                if journal is not None:
                    journal.record_outcome(outcome, digest)
                if fail_fast:
                    raise _FailFastAbort(outcome)

            effective_njobs = 1 if degraded else njobs
            worker_count = min(effective_njobs, len(batch))
            try:
                execute_jobs(
                    batch,
                    store,
                    njobs=effective_njobs,
                    result_cache=result_cache,
                    timeout=timeout,
                    progress=remap_event,
                    start_method=start_method,
                    shared_memory=shared_memory,
                    on_outcome=land,
                    max_respawns=max(4, 2 * worker_count),
                    shm_manifest=manifest,
                    metrics=metrics,
                )
            except PoolBrokenError as error:
                degrade(str(error))
                continue
            except _FailFastAbort as abort:
                for index in range(total):
                    if final[index] is None:
                        final[index] = JobOutcome(
                            index,
                            jobs[index],
                            error="skipped: fail-fast abort after job "
                            f"{abort.outcome.job.short_digest} "
                            f"({abort.outcome.job.describe()}) failed",
                        )
                break

            if retry_queue:
                delay = max(
                    retry.delay(attempts[index], jobs[index].digest())
                    for index in retry_queue
                )
                if delay > 0:
                    with span("retry_backoff"):
                        sleep(delay)
    finally:
        if guard_context is not None:
            guard_context.__exit__(None, None, None)
        if manifest is not None:
            leaked = manifest.sweep_own()
            if leaked:
                logger.warning(
                    "reclaimed %d shared-memory block(s) at grid end: %s",
                    len(leaked),
                    ", ".join(leaked),
                )

    return [outcome for outcome in final if outcome is not None]
