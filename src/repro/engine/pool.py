"""Multiprocess job execution over the shared trace cache.

Parallelization strategy: the parent materializes each distinct input trace
*once* — in the on-disk trace cache (via :meth:`TraceStore.ensure_on_disk`,
which keys the result cache) and, for the jobs that actually run, as a
columnar trace in a ``multiprocessing.shared_memory`` block. Workers are
shipped job specs plus a trace reference and attach the shared block
zero-copy — a multi-hundred-thousand-record trace is never pickled per job
and never decoded per worker. When shared memory is unavailable (or
disabled) workers fall back to loading the ``.pgt`` file themselves,
keeping a tiny per-process LRU of loaded traces which the grid order
(workload-major) keeps hot. The parent owns every shared block and
closes/unlinks them once the grid drains.

Fault containment: every worker wraps job execution, so an analysis error
returns a structured failure for that job while the rest of the grid
proceeds. The parent additionally enforces an optional per-job wall-clock
timeout and detects crashed workers; in both cases the worker process is
killed (or found dead), the job is marked failed, and a replacement worker
is spawned so pool capacity survives bad configs.

Fork-safe bootstrap: workers rebuild all state from (path, spec) messages —
nothing depends on inherited open file handles or parent caches — so the
pool runs identically under ``fork`` (fast, the default where available)
and ``spawn``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import queue as queue_module
import signal
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import AnalysisResult
from repro.engine import faults
from repro.engine.cache import ResultCache, cache_key
from repro.engine.jobs import AnalysisJob
from repro.engine.progress import (
    JOB_CACHED,
    JOB_DONE,
    JOB_FAILED,
    JOB_STARTED,
    JobEvent,
    ProgressListener,
)
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.obs import metrics as obs
from repro.obs.spans import span
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import read_trace_file

#: Traces an idle worker keeps loaded/attached (grid order keeps this tiny
#: LRU hot).
_WORKER_TRACE_LRU = 2

#: Seconds the scheduling loop sleeps waiting for worker messages between
#: deadline/liveness sweeps.
_POLL_INTERVAL = 0.05

#: How long the pool tolerates "no running jobs, no queued tasks, no
#: messages" before declaring the remaining jobs lost (see the backstop in
#: :func:`execute_jobs`). Long enough to cover a worker's window between
#: claiming a task and reporting JOB_STARTED.
_IDLE_GRACE = 1.0


class EngineError(Exception):
    """Base class for engine failures."""


class PoolBrokenError(EngineError):
    """Raised when the worker pool itself is unhealthy (respawn budget
    exhausted) — an infrastructure failure, distinct from any one job
    failing. :mod:`repro.engine.resilience` catches this and degrades the
    remainder of the grid to in-process serial execution."""


class JobFailedError(EngineError):
    """Raised when a grid is executed in strict mode and any job failed."""

    def __init__(self, failures: List["JobOutcome"]):
        self.failures = failures
        lines = [f"{len(failures)} job(s) failed:"]
        for outcome in failures[:5]:
            lines.append(f"  - {outcome.job.describe()}: {outcome.error}")
        if len(failures) > 5:
            lines.append(f"  ... and {len(failures) - 5} more")
        super().__init__("\n".join(lines))


@dataclass
class JobOutcome:
    """Terminal state of one submitted job.

    Attributes:
        index: position in the submitted grid.
        job: the job spec.
        result: the analysis result (``None`` on failure).
        error: one-line failure description (``None`` on success).
        detail: full worker-side traceback when one exists.
        seconds: wall-clock execution time (0 for cache hits).
        cached: the result came from the result cache.
        worker: id of the worker that ran the job (``None`` for in-process
            execution and cache hits).
        attempts: executions this outcome took (>1 after resilience retries).
        replayed: the result was replayed from a run journal (``--resume``).
        phases: per-phase wall seconds measured where the job ran
            (``trace_load``/``kernel``/``serialize``; ``None`` with
            metrics off or for cache hits/replays).
        queue_wait: seconds the task sat queued before a worker picked it
            up (0 with metrics off or for in-process execution).
    """

    index: int
    job: AnalysisJob
    result: Optional[AnalysisResult] = None
    error: Optional[str] = None
    detail: Optional[str] = None
    seconds: float = 0.0
    cached: bool = False
    worker: Optional[int] = None
    attempts: int = 1
    replayed: bool = False
    phases: Optional[Dict[str, float]] = None
    queue_wait: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _null_listener(event: JobEvent) -> None:
    return None


#: Callback invoked with each :class:`JobOutcome` the moment it becomes
#: final, in completion order (not submission order). The resilience layer
#: journals outcomes through this hook so a SIGKILL'd run loses nothing
#: already finished. Exceptions propagate and abort the grid (fail-fast).
OutcomeListener = Callable[[JobOutcome], None]


def _payload_checksum(result_dict: dict) -> str:
    """Checksum of a result payload in its canonical JSON form. Workers
    stamp it before the payload crosses the result queue; the parent
    recomputes it on receipt, so a mangled payload surfaces as a structured
    job failure (retryable) instead of silently skewing a table."""
    blob = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """``fork`` where the platform offers it (cheap bootstrap), else
    ``spawn``; an explicit request wins."""
    if start_method is not None:
        return start_method
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _resolve_metrics(metrics: Optional[bool]) -> bool:
    """Resolve a tri-state metrics request: an explicit bool wins; ``None``
    means "on if a registry is already live or the environment switch is
    set". Resolving to on installs a live registry process-wide so every
    instrumentation point (caches, kernels, trace store) records."""
    if metrics is None:
        metrics = obs.enabled() or obs.env_enabled()
    if metrics and not obs.enabled():
        obs.enable()
    return bool(metrics)


def _job_telemetry(
    metrics: bool, phases: Optional[Dict[str, float]], queue_wait: float
) -> Optional[dict]:
    """The observability sidecar a worker attaches to each result payload:
    the per-job phase breakdown plus this process's registry delta
    (:meth:`~repro.obs.metrics.MetricsRegistry.drain`, so repeated jobs
    never double-count)."""
    if not metrics:
        return None
    return {
        "phases": phases,
        "queue_wait": queue_wait,
        "registry": obs.registry().drain(),
    }


def _absorb_telemetry(telemetry: Optional[dict]):
    """Parent side: merge a worker's registry delta into the live registry
    and return ``(phases, queue_wait)`` for the outcome."""
    if not telemetry:
        return None, 0.0
    obs.registry().merge(telemetry.get("registry"))
    return telemetry.get("phases"), telemetry.get("queue_wait") or 0.0


# -- worker side ---------------------------------------------------------------


def _load_trace(trace_ref: Tuple[str, str]):
    """Resolve a ``(kind, target)`` trace reference: attach a shared-memory
    columnar block zero-copy, decode one byte-extent slice of a trace file
    (a shard segment, digest-verified in isolation), or decode a whole
    ``.pgt`` file."""
    kind, target = trace_ref
    if kind == "shm":
        return ColumnarTrace.from_shared_memory(target)
    if kind == "slice":
        from repro.trace.chunked import decode_slice
        from repro.trace.segments import SegmentMap

        spec = json.loads(target)
        return decode_slice(
            spec["path"],
            spec["offset"],
            spec["length"],
            spec["count"],
            SegmentMap(
                data_base=spec["segments"]["data_base"],
                stack_floor=spec["segments"]["stack_floor"],
                stack_top=spec["segments"]["stack_top"],
            ),
            digest=spec.get("digest"),
        )
    return read_trace_file(target)


def _sigterm_to_exit(signum, frame) -> None:
    """Turn the parent's ``terminate()`` into an orderly unwind so the
    worker's cleanup path (shm detach, queue release) runs."""
    raise SystemExit(128 + signum)


def _worker_main(worker_id: int, task_queue, result_queue, metrics: bool = False) -> None:
    """Worker loop: pull ``(index, job wire form, trace reference, enqueue
    timestamp)`` tasks until the ``None`` sentinel. All state is rebuilt
    from the message contents.

    With ``metrics`` on, each stage runs under a span (trace decode/shm
    attach, kernel scan, serialization), queue wait is derived from the
    parent's enqueue timestamp, and the worker's registry delta rides each
    result payload back to the parent for merging.

    Shutdown discipline: whether the loop ends via the sentinel, a Ctrl-C
    forwarded to the process group, or the parent's SIGTERM, shared-memory
    attachments are closed before interpreter teardown (a ``SharedMemory``
    finalized while column views are still exported raises noisy
    ``BufferError``/resource-tracker warnings at exit) and the queues are
    released without blocking on unflushed buffers.
    """
    # A forked worker inherits the parent's signal wakeup fd. If the parent
    # runs an asyncio loop (repro.serve), that fd is the loop's self-pipe:
    # any signal delivered to the worker (e.g. the pool's own terminate()
    # backstop) would write its signal byte into the PARENT's loop, which
    # then acts as if the parent itself was signalled. Detach before
    # installing handlers so worker signals stay in the worker.
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread / closed fd: nothing to shed
        pass
    signal.signal(signal.SIGTERM, _sigterm_to_exit)
    if metrics:
        obs.enable()
    traces: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
    interrupted = False
    try:
        while True:
            task = task_queue.get()
            if task is None:
                return
            index, wire, trace_ref, enqueued = task
            queue_wait = 0.0
            if metrics and enqueued is not None:
                queue_wait = max(0.0, time.time() - enqueued)
                obs.observe("job.queue_wait", queue_wait)
            result_queue.put((JOB_STARTED, worker_id, index, None))
            if faults.fire("crash", index):
                faults.crash_now()
            if faults.fire("hang", index):
                faults.hang_now()
            start = time.perf_counter()
            phases: Optional[Dict[str, float]] = {} if metrics else None
            try:
                with span("setup", phases=phases):
                    job = AnalysisJob.from_canonical(wire)
                trace = traces.get(trace_ref)
                if trace is None:
                    if trace_ref[0] == "shm" and faults.fire("shm", index):
                        raise RuntimeError(
                            f"injected shm attach failure for block {trace_ref[1]!r}"
                        )
                    with span("trace_load", phases=phases):
                        trace = _load_trace(trace_ref)
                    traces[trace_ref] = trace
                    while len(traces) > _WORKER_TRACE_LRU:
                        _, evicted = traces.popitem(last=False)
                        if isinstance(evicted, ColumnarTrace):
                            evicted.close()
                else:
                    traces.move_to_end(trace_ref)
                with span("kernel", phases=phases):
                    result = job.run(trace)
                with span("serialize", phases=phases):
                    result_dict = result_to_dict(result)
                    checksum = _payload_checksum(result_dict)
                if faults.fire("corrupt", index):
                    result_dict = faults.corrupt_payload(result_dict)
                seconds = time.perf_counter() - start
                if phases is not None:
                    # Attribute inter-span dispatch overhead (cache lookups,
                    # scheduler preemption between phases) to setup so the
                    # phase times always sum to the journaled wall time.
                    slack = seconds - sum(phases.values())
                    if slack > 0.0:
                        phases["setup"] = phases.get("setup", 0.0) + slack
                payload = (
                    result_dict,
                    seconds,
                    checksum,
                    _job_telemetry(metrics, phases, queue_wait),
                )
                result_queue.put((JOB_DONE, worker_id, index, payload))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 - one bad job must not kill the grid
                payload = (
                    f"{type(error).__name__}: {error}",
                    traceback.format_exc(),
                    time.perf_counter() - start,
                    _job_telemetry(metrics, phases, queue_wait),
                )
                result_queue.put((JOB_FAILED, worker_id, index, payload))
    except (KeyboardInterrupt, SystemExit):
        interrupted = True
    finally:
        for trace in traces.values():
            if isinstance(trace, ColumnarTrace):
                trace.close()
        if interrupted:
            # Interrupted mid-grid: drain our claim on the queues so exit
            # never blocks joining a feeder thread with undelivered items.
            for q in (task_queue, result_queue):
                try:
                    q.cancel_join_thread()
                    q.close()
                except (OSError, ValueError):
                    pass


# -- parent side ---------------------------------------------------------------


def _cache_lookup(
    result_cache: Optional[ResultCache], trace_digest: str, job: AnalysisJob
) -> Tuple[Optional[str], Optional[AnalysisResult]]:
    if result_cache is None:
        return None, None
    key = cache_key(trace_digest, job)
    return key, result_cache.load(key)


def execute_serial(
    jobs: Sequence[AnalysisJob],
    store,
    result_cache: Optional[ResultCache] = None,
    progress: Optional[ProgressListener] = None,
    on_outcome: Optional[OutcomeListener] = None,
    metrics: Optional[bool] = None,
) -> List[JobOutcome]:
    """In-process execution — the ``--jobs 1`` path. No subprocesses, no
    serialization round-trips beyond the result cache: exceptions surface
    with their original tracebacks, which keeps this the debuggable
    default. Forward analyses run on the store's columnar trace (the
    config-specialized kernels) when the store provides one."""
    metrics = _resolve_metrics(metrics)
    emit = progress or _null_listener
    land = on_outcome or (lambda outcome: None)
    total = len(jobs)
    columnar = getattr(store, "columnar", None)
    outcomes: List[JobOutcome] = []
    for index, job in enumerate(jobs):
        try:
            with span("trace_load"):
                if columnar is not None and job.prefers_columnar:
                    trace = columnar(job.workload, job.cap, optimize=job.optimize)
                else:
                    trace = store.trace(job.workload, job.cap, optimize=job.optimize)
        except Exception as error:  # noqa: BLE001 - bad workload spec, not a crash
            outcome = JobOutcome(
                index,
                job,
                error=f"{type(error).__name__}: {error}",
                detail=traceback.format_exc(),
            )
            outcomes.append(outcome)
            land(outcome)
            emit(JobEvent(JOB_FAILED, index, total, job, 0.0, outcome.error))
            continue
        trace_digest = trace.digest()
        key, cached = _cache_lookup(result_cache, trace_digest, job)
        if cached is not None:
            outcome = JobOutcome(index, job, result=cached, cached=True)
            outcomes.append(outcome)
            land(outcome)
            emit(JobEvent(JOB_CACHED, index, total, job))
            continue
        emit(JobEvent(JOB_STARTED, index, total, job))
        start = time.perf_counter()
        phases: Optional[Dict[str, float]] = {} if metrics else None
        try:
            with span("kernel", phases=phases):
                result = job.run(trace)
        except Exception as error:  # noqa: BLE001 - match worker fault containment
            seconds = time.perf_counter() - start
            outcome = JobOutcome(
                index,
                job,
                error=f"{type(error).__name__}: {error}",
                detail=traceback.format_exc(),
                seconds=seconds,
                phases=phases,
            )
            outcomes.append(outcome)
            land(outcome)
            emit(JobEvent(JOB_FAILED, index, total, job, seconds, outcome.error))
            continue
        seconds = time.perf_counter() - start
        if result_cache is not None:
            result_cache.store(key, trace_digest, job, result)
        outcome = JobOutcome(index, job, result=result, seconds=seconds, phases=phases)
        outcomes.append(outcome)
        land(outcome)
        emit(JobEvent(JOB_DONE, index, total, job, seconds))
    return outcomes


def execute_jobs(
    jobs: Sequence[AnalysisJob],
    store,
    njobs: int = 1,
    result_cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    progress: Optional[ProgressListener] = None,
    start_method: Optional[str] = None,
    shared_memory: bool = True,
    on_outcome: Optional[OutcomeListener] = None,
    max_respawns: Optional[int] = None,
    shm_manifest=None,
    metrics: Optional[bool] = None,
) -> List[JobOutcome]:
    """Execute a job grid, fanning out to ``njobs`` worker processes.

    Results come back in submission order regardless of completion order.
    ``njobs == 1`` (or a single-job grid) runs in-process via
    :func:`execute_serial`. With ``shared_memory`` (the default) each
    distinct input trace is packed once into a shared-memory columnar
    block that workers attach zero-copy; disabling it (or any failure to
    create a block) falls back to workers decoding the ``.pgt`` files.

    ``on_outcome`` is invoked with each outcome as it lands (journaling
    hook); ``max_respawns`` bounds replacement-worker spawns before the
    pool declares itself broken with :class:`PoolBrokenError`;
    ``shm_manifest`` (a :class:`~repro.engine.resilience.ShmManifest`)
    records every shared-memory block the parent creates so a SIGKILL'd
    run's blocks can be swept by the next one; ``metrics`` turns per-phase
    instrumentation on (``None`` inherits the process/environment state).
    """
    if njobs < 1:
        raise ValueError(f"njobs must be >= 1, got {njobs}")
    metrics = _resolve_metrics(metrics)
    if njobs == 1 or len(jobs) <= 1:
        return execute_serial(jobs, store, result_cache, progress, on_outcome, metrics)
    if not getattr(store, "directory", None):
        raise EngineError(
            "parallel execution requires a disk-backed TraceStore "
            "(workers load traces from the shared on-disk cache)"
        )

    emit = progress or _null_listener
    land = on_outcome or (lambda outcome: None)
    total = len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * total

    # Materialize each distinct trace once; collect digests for cache keys.
    # A trace that cannot be produced (unknown workload, generation error)
    # fails its jobs — fault containment starts before the pool.
    trace_files: Dict[tuple, Tuple[str, str]] = {}
    trace_errors: Dict[tuple, Tuple[str, str]] = {}
    for job in jobs:
        if job.trace_key in trace_files or job.trace_key in trace_errors:
            continue
        try:
            trace_files[job.trace_key] = store.ensure_on_disk(
                job.workload, job.cap, optimize=job.optimize
            )
        except Exception as error:  # noqa: BLE001 - bad workload spec, not a crash
            trace_errors[job.trace_key] = (
                f"{type(error).__name__}: {error}",
                traceback.format_exc(),
            )

    # Resolve cache hits in the parent; only misses reach the pool.
    pending_tasks: List[Tuple[int, AnalysisJob]] = []
    keys: Dict[int, Tuple[str, str]] = {}
    for index, job in enumerate(jobs):
        if job.trace_key in trace_errors:
            error, detail = trace_errors[job.trace_key]
            outcomes[index] = JobOutcome(index, job, error=error, detail=detail)
            land(outcomes[index])
            emit(JobEvent(JOB_FAILED, index, total, job, 0.0, error))
            continue
        path, trace_digest = trace_files[job.trace_key]
        key, cached = _cache_lookup(result_cache, trace_digest, job)
        if cached is not None:
            outcomes[index] = JobOutcome(index, job, result=cached, cached=True)
            land(outcomes[index])
            emit(JobEvent(JOB_CACHED, index, total, job))
            continue
        if key is not None:
            keys[index] = (key, trace_digest)
        pending_tasks.append((index, job))
    if not pending_tasks:
        return [outcome for outcome in outcomes if outcome is not None]

    # One trace reference per distinct input: a shared-memory columnar
    # block (workers attach zero-copy, nobody re-decodes the trace) with
    # the .pgt path as the fallback reference. Blocks are owned by the
    # parent and unlinked in the finally below once the grid drains.
    shm_blocks: List[object] = []
    trace_refs: Dict[tuple, Tuple[str, str]] = {}
    ref_hook = getattr(store, "trace_ref", None)
    columnar = getattr(store, "columnar", None) if shared_memory else None
    for index, job in enumerate(jobs):
        trace_key = job.trace_key
        if outcomes[index] is not None or trace_key in trace_refs:
            continue
        path, _ = trace_files[trace_key]
        ref = ("path", path)
        if ref_hook is not None:
            # A store that knows a cheaper way for workers to load this
            # trace (e.g. a shard store handing out byte-extent slices of
            # one big file) overrides both shm packing and whole-file
            # decode; any hook failure falls back to the standard refs.
            try:
                hook_ref = ref_hook(job.workload, job.cap, optimize=job.optimize)
            except Exception:  # noqa: BLE001 - the hook is advisory
                hook_ref = None
            if hook_ref is not None:
                trace_refs[trace_key] = (hook_ref[0], hook_ref[1])
                continue
        if columnar is not None:
            try:
                with span("shm_pack"):
                    block = columnar(
                        job.workload, job.cap, optimize=job.optimize
                    ).to_shared_memory()
            except Exception:  # noqa: BLE001 - shm is an optimization, not a requirement
                pass
            else:
                shm_blocks.append(block)
                if shm_manifest is not None:
                    shm_manifest.register(block.name)
                ref = ("shm", block.name)
        trace_refs[trace_key] = ref
    enqueued_at = time.time() if metrics else None
    tasks: List[Tuple[int, dict, Tuple[str, str], Optional[float]]] = [
        (index, job.canonical(), trace_refs[job.trace_key], enqueued_at)
        for index, job in pending_tasks
    ]

    context = multiprocessing.get_context(resolve_start_method(start_method))
    task_queue = context.Queue()
    result_queue = context.Queue()
    for task in tasks:
        task_queue.put(task)
    worker_count = min(njobs, len(tasks))
    for _ in range(worker_count):
        task_queue.put(None)

    workers: Dict[int, multiprocessing.Process] = {}
    next_worker_id = 0

    def spawn_worker() -> None:
        nonlocal next_worker_id
        if max_respawns is not None and next_worker_id >= worker_count + max_respawns:
            raise PoolBrokenError(
                f"worker pool broken: {next_worker_id - worker_count} replacement "
                f"workers already spawned (limit {max_respawns}); "
                "the pool, not any one job, is failing"
            )
        worker_id = next_worker_id
        next_worker_id += 1
        process = context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue, metrics),
            daemon=True,
            name=f"paragraph-worker-{worker_id}",
        )
        process.start()
        workers[worker_id] = process
        if metrics:
            obs.inc("pool.spawns")
            if worker_id >= worker_count:
                obs.inc("pool.respawns")
            live = obs.registry().gauge("pool.workers.live")
            if len(workers) > live.value:
                live.set(len(workers))

    for _ in range(worker_count):
        spawn_worker()

    #: worker id -> (job index, start wall-clock) while a job is in flight.
    running: Dict[int, Tuple[int, float]] = {}
    pending = len(tasks)

    def finish(outcome: JobOutcome, kind: str) -> None:
        nonlocal pending
        if outcomes[outcome.index] is not None:
            return  # already resolved (e.g. timed out before its result arrived)
        outcomes[outcome.index] = outcome
        pending -= 1
        # Outcome listener first: it may reclassify the event (the
        # resilience layer turns a to-be-retried failure into a retry
        # event and filters the redundant failed event).
        land(outcome)
        emit(
            JobEvent(
                kind,
                outcome.index,
                total,
                outcome.job,
                outcome.seconds,
                outcome.error,
                outcome.worker,
            )
        )

    def handle_message(message) -> None:
        kind, worker_id, index, payload = message
        job = jobs[index]
        if worker_id not in workers:
            # A terminated worker's last messages can still be sitting in
            # the queue; acting on them would resurrect a dead worker id.
            return
        if kind == JOB_STARTED:
            running[worker_id] = (index, time.perf_counter())
            emit(JobEvent(JOB_STARTED, index, total, job, worker=worker_id))
        elif kind == JOB_DONE:
            running.pop(worker_id, None)
            result_dict, seconds, checksum, telemetry = payload
            phases, queue_wait = _absorb_telemetry(telemetry)
            if _payload_checksum(result_dict) != checksum:
                finish(
                    JobOutcome(
                        index,
                        job,
                        error="corrupted result payload from worker "
                        "(checksum mismatch)",
                        seconds=seconds,
                        worker=worker_id,
                        phases=phases,
                        queue_wait=queue_wait,
                    ),
                    JOB_FAILED,
                )
                return
            result = result_from_dict(result_dict)
            if result_cache is not None and index in keys:
                key, trace_digest = keys[index]
                result_cache.store(key, trace_digest, job, result)
            finish(
                JobOutcome(
                    index,
                    job,
                    result=result,
                    seconds=seconds,
                    worker=worker_id,
                    phases=phases,
                    queue_wait=queue_wait,
                ),
                JOB_DONE,
            )
        elif kind == JOB_FAILED:
            running.pop(worker_id, None)
            error, detail, seconds, telemetry = payload
            phases, queue_wait = _absorb_telemetry(telemetry)
            finish(
                JobOutcome(
                    index,
                    job,
                    error=error,
                    detail=detail,
                    seconds=seconds,
                    worker=worker_id,
                    phases=phases,
                    queue_wait=queue_wait,
                ),
                JOB_FAILED,
            )

    def kill_worker(worker_id: int, index: int, error: str) -> None:
        obs.inc("pool.worker_kills")
        entry = running.pop(worker_id, None)
        started_at = entry[1] if entry else time.perf_counter()
        process = workers.pop(worker_id, None)
        if process is not None:
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        seconds = time.perf_counter() - started_at
        finish(
            JobOutcome(index, jobs[index], error=error, seconds=seconds, worker=worker_id),
            JOB_FAILED,
        )
        if pending > 0:
            spawn_worker()

    #: Backstop for tasks a terminated worker claimed but never reported:
    #: when nothing is running, nothing is queued, and no message arrives
    #: for a grace period, the unresolved jobs are failed rather than
    #: hanging the grid.
    idle_since: Optional[float] = None

    try:
        while pending > 0:
            try:
                handle_message(result_queue.get(timeout=_POLL_INTERVAL))
                idle_since = None
                continue
            except queue_module.Empty:
                pass
            now = time.perf_counter()
            if running or not task_queue.empty():
                idle_since = None
            elif idle_since is None:
                idle_since = now
            elif now - idle_since > _IDLE_GRACE:
                for index in range(total):
                    if outcomes[index] is None:
                        finish(
                            JobOutcome(
                                index,
                                jobs[index],
                                error="job lost after worker termination",
                            ),
                            JOB_FAILED,
                        )
                break
            if timeout is not None:
                for worker_id, (index, started_at) in list(running.items()):
                    if now - started_at > timeout:
                        kill_worker(
                            worker_id,
                            index,
                            f"timeout: exceeded {timeout:g}s per-job limit",
                        )
            # Liveness sweep: a worker that died without reporting (OOM
            # kill, segfault) would otherwise hang the grid.
            for worker_id, process in list(workers.items()):
                if process.is_alive():
                    continue
                # Drain any messages it managed to send before dying.
                drained = True
                while drained:
                    try:
                        handle_message(result_queue.get_nowait())
                    except queue_module.Empty:
                        drained = False
                if worker_id in running:
                    obs.inc("pool.worker_crashes")
                    index, _ = running[worker_id]
                    workers.pop(worker_id)
                    running.pop(worker_id)
                    finish(
                        JobOutcome(
                            index,
                            jobs[index],
                            error=f"worker crashed (exit code {process.exitcode})",
                            worker=worker_id,
                        ),
                        JOB_FAILED,
                    )
                    if pending > 0:
                        spawn_worker()
                elif process.exitcode == 0 or pending == 0 or task_queue.empty():
                    workers.pop(worker_id)
                else:
                    # Died with no claimed job on record while work remains:
                    # its JOB_STARTED message was lost with it (os._exit
                    # beats the queue feeder thread). Replace it so the
                    # queue keeps draining; the idle backstop resolves any
                    # task it claimed silently.
                    obs.inc("pool.worker_crashes")
                    workers.pop(worker_id)
                    spawn_worker()
    finally:
        for process in workers.values():
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        task_queue.close()
        task_queue.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()
        for block in shm_blocks:
            try:
                block.close()
                block.unlink()
            except OSError:  # already gone (e.g. external cleanup)
                pass
            if shm_manifest is not None:
                shm_manifest.release(block.name)

    return [outcome for outcome in outcomes if outcome is not None]
