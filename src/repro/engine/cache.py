"""Content-addressed on-disk result cache.

Keys are ``sha256(schema version, trace digest, job digest)``: any change to
the trace content, any analysis switch, the analysis method, or the cache
schema itself lands at a different key, so entries never need invalidation —
a repeated experiment run simply hits, and a changed one simply misses.

Entries are JSON files written atomically (temp file + rename), so parallel
workers and concurrent experiment runs can share one cache directory
without locks: at worst two processes compute the same result and the last
rename wins with identical bytes. A corrupt, truncated, or
schema-mismatched entry is treated as a miss (and removed), never returned.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from typing import Optional

from repro.core.results import AnalysisResult
from repro.engine.jobs import AnalysisJob
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.obs import metrics as obs

logger = logging.getLogger(__name__)

#: Bump when the serialized result layout changes; old entries become misses.
SCHEMA_VERSION = 1


def cache_key(trace_digest: str, job: AnalysisJob) -> str:
    """The cache key for ``job`` run against a trace with ``trace_digest``."""
    payload = f"{SCHEMA_VERSION}:{trace_digest}:{job.digest()}".encode("ascii")
    return hashlib.sha256(payload).hexdigest()


class ResultCache:
    """Directory of cached :class:`AnalysisResult` values."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self._warned_quarantine = False

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _quarantine(self, path: str, error: Exception) -> None:
        """Move an unreadable/mismatched entry aside as ``<name>.corrupt``
        instead of deleting it (the bytes are evidence — a recurring
        corruption pattern is worth diagnosing) or leaving it in place
        (where it would be re-parsed and re-missed on every lookup
        forever). Logged loudly once per run, quietly after."""
        target = f"{path}.corrupt"
        try:
            os.replace(path, target)
        except OSError:
            return  # raced with a concurrent store/quarantine; entry is gone
        self.quarantined += 1
        obs.inc("result_cache.quarantined")
        if not self._warned_quarantine:
            self._warned_quarantine = True
            logger.warning(
                "quarantined corrupt result-cache entry %s -> %s (%s); "
                "further quarantines this run will log at DEBUG",
                path, target, error,
            )
        else:
            logger.debug(
                "quarantined corrupt result-cache entry %s (%s)", path, error
            )

    def load(self, key: str) -> Optional[AnalysisResult]:
        """The cached result for ``key``, or ``None`` on any kind of miss."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                raise ValueError(f"schema {entry.get('schema')!r}")
            result = result_from_dict(entry["result"])
        except FileNotFoundError:
            self.misses += 1
            obs.inc("result_cache.miss")
            return None
        except (ValueError, KeyError, TypeError, OSError) as error:
            self._quarantine(path, error)
            self.misses += 1
            obs.inc("result_cache.miss")
            return None
        self.hits += 1
        obs.inc("result_cache.hit")
        return result

    def store(self, key: str, trace_digest: str, job: AnalysisJob, result: AnalysisResult) -> None:
        """Persist one result atomically. The job spec and trace digest are
        stored alongside the payload for debuggability (``jq`` a cache entry
        to see exactly what produced it)."""
        entry = {
            "schema": SCHEMA_VERSION,
            "trace_digest": trace_digest,
            "job": job.canonical(),
            "result": result_to_dict(result),
        }
        path = self._path(key)
        obs.inc("result_cache.store")
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, prefix=".tmp-", suffix=".json", delete=False
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.remove(handle.name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".tmp-")
        )
