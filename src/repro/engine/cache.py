"""Content-addressed on-disk result cache.

Keys are ``sha256(schema version, trace digest, job digest)``: any change to
the trace content, any analysis switch, the analysis method, or the cache
schema itself lands at a different key, so entries never need invalidation —
a repeated experiment run simply hits, and a changed one simply misses.

Entries are JSON files written atomically (temp file + rename), so parallel
workers and concurrent experiment runs can share one cache directory
without locks: at worst two processes compute the same result and the last
rename wins with identical bytes. A corrupt, truncated, or
schema-mismatched entry is treated as a miss (and removed), never returned.

Size budget: with ``max_bytes`` set, the cache evicts least-recently-used
entries (hits refresh an entry's mtime) after each store until the
directory fits the budget. Eviction — the one operation that *decides*
based on global directory state — is serialized across processes by an
``O_CREAT | O_EXCL`` lock file with stale-lock breaking, so two server
processes sharing a cache never tear each other's eviction scans; entry
reads and writes themselves stay lock-free (atomic rename is enough).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from typing import List, Optional, Tuple

from repro.core.results import AnalysisResult
from repro.engine.jobs import AnalysisJob
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.obs import metrics as obs

logger = logging.getLogger(__name__)

#: Bump when the serialized result layout changes; old entries become misses.
SCHEMA_VERSION = 1


def cache_key(trace_digest: str, job: AnalysisJob) -> str:
    """The cache key for ``job`` run against a trace with ``trace_digest``."""
    payload = f"{SCHEMA_VERSION}:{trace_digest}:{job.digest()}".encode("ascii")
    return hashlib.sha256(payload).hexdigest()


def parse_size(text: str) -> int:
    """Parse a human byte size (``"268435456"``, ``"64M"``, ``"2G"``,
    ``"512K"``) into bytes; raises ``ValueError`` on anything else."""
    text = text.strip()
    multiplier = 1
    suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3}
    if text and text[-1].upper() in suffixes:
        multiplier = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise ValueError(f"bad size {text!r}; use bytes or a K/M/G suffix") from None
    if value < 0:
        raise ValueError(f"size must be >= 0, got {value}")
    return value * multiplier


#: Seconds after which another process's eviction lock is presumed dead
#: (evicting a few thousand files takes milliseconds; anything older is a
#: crashed process's leftover).
EVICT_LOCK_STALE = 30.0


class ResultCache:
    """Directory of cached :class:`AnalysisResult` values.

    Attributes:
        max_bytes: optional size budget; stores past the budget evict
            least-recently-used entries (``None`` = unbounded).
    """

    def __init__(self, directory: str, max_bytes: Optional[int] = None):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.evicted = 0
        self._warned_quarantine = False

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _quarantine(self, path: str, error: Exception) -> None:
        """Move an unreadable/mismatched entry aside as ``<name>.corrupt``
        instead of deleting it (the bytes are evidence — a recurring
        corruption pattern is worth diagnosing) or leaving it in place
        (where it would be re-parsed and re-missed on every lookup
        forever). Logged loudly once per run, quietly after."""
        target = f"{path}.corrupt"
        try:
            os.replace(path, target)
        except OSError:
            return  # raced with a concurrent store/quarantine; entry is gone
        self.quarantined += 1
        obs.inc("result_cache.quarantined")
        if not self._warned_quarantine:
            self._warned_quarantine = True
            logger.warning(
                "quarantined corrupt result-cache entry %s -> %s (%s); "
                "further quarantines this run will log at DEBUG",
                path, target, error,
            )
        else:
            logger.debug(
                "quarantined corrupt result-cache entry %s (%s)", path, error
            )

    def load(self, key: str) -> Optional[AnalysisResult]:
        """The cached result for ``key``, or ``None`` on any kind of miss."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                raise ValueError(f"schema {entry.get('schema')!r}")
            result = result_from_dict(entry["result"])
        except FileNotFoundError:
            self.misses += 1
            obs.inc("result_cache.miss")
            return None
        except (ValueError, KeyError, TypeError, OSError) as error:
            self._quarantine(path, error)
            self.misses += 1
            obs.inc("result_cache.miss")
            return None
        self.hits += 1
        obs.inc("result_cache.hit")
        if self.max_bytes is not None:
            try:
                os.utime(path)  # refresh LRU recency
            except OSError:
                pass  # evicted under us; the result in hand is still good
        return result

    def store(self, key: str, trace_digest: str, job: AnalysisJob, result: AnalysisResult) -> None:
        """Persist one result atomically. The job spec and trace digest are
        stored alongside the payload for debuggability (``jq`` a cache entry
        to see exactly what produced it)."""
        entry = {
            "schema": SCHEMA_VERSION,
            "trace_digest": trace_digest,
            "job": job.canonical(),
            "result": result_to_dict(result),
        }
        path = self._path(key)
        obs.inc("result_cache.store")
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.directory, prefix=".tmp-", suffix=".json", delete=False
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.remove(handle.name)
            except OSError:
                pass
            raise
        self.enforce_budget()

    # -- size budget -------------------------------------------------------

    def _lock_path(self) -> str:
        return os.path.join(self.directory, ".evict.lock")

    def _acquire_evict_lock(self) -> bool:
        """One cross-process eviction ticket via ``O_CREAT | O_EXCL``.
        ``False`` means another live process is already evicting — skipping
        is correct, the budget converges on its next store. A lock older
        than :data:`EVICT_LOCK_STALE` is broken (crashed evictor)."""
        path = self._lock_path()
        for _ in range(2):
            try:
                handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - os.stat(path).st_mtime
                except OSError:
                    continue  # lock vanished between attempts; retry
                if age < EVICT_LOCK_STALE:
                    return False
                logger.warning(
                    "breaking stale result-cache eviction lock %s (%.0fs old)", path, age
                )
                try:
                    os.remove(path)
                except OSError:
                    return False
                continue
            os.write(handle, f"pid={os.getpid()}\n".encode("ascii"))
            os.close(handle)
            return True
        return False

    def _release_evict_lock(self) -> None:
        try:
            os.remove(self._lock_path())
        except OSError:
            pass

    def _scan_entries(self) -> List[Tuple[float, int, str]]:
        """Every live entry as ``(mtime, size, path)``, oldest first."""
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json") or name.startswith(".tmp-"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # evicted/quarantined by a concurrent process
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def enforce_budget(self) -> int:
        """Evict least-recently-used entries until the directory fits
        ``max_bytes``; returns the number evicted. The newest entry is
        never evicted (a budget smaller than one result would otherwise
        turn the cache into a delete-after-write no-op)."""
        if self.max_bytes is None:
            return 0
        if not self._acquire_evict_lock():
            return 0
        evicted = 0
        try:
            entries = self._scan_entries()
            total = sum(size for _, size, _ in entries)
            while total > self.max_bytes and len(entries) > 1:
                _, size, path = entries.pop(0)
                try:
                    os.remove(path)
                except OSError:
                    continue  # lost a race; its bytes are gone either way
                total -= size
                evicted += 1
        finally:
            self._release_evict_lock()
        if evicted:
            self.evicted += evicted
            obs.inc("result_cache.evicted", evicted)
            logger.debug(
                "evicted %d result-cache entr%s to fit %d-byte budget",
                evicted, "y" if evicted == 1 else "ies", self.max_bytes,
            )
        return evicted

    def __len__(self) -> int:
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".tmp-")
        )
