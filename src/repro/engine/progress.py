"""Job-level progress events and run telemetry.

The engine reports every job transition through a listener callable, so the
CLI can render live progress, tests can record event streams, and benchmark
harnesses can collect per-job timings without patching the pool. Listeners
must be cheap and must not raise; the engine calls them from its scheduling
loop (never from worker processes).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.engine.jobs import AnalysisJob

#: Event kinds, in lifecycle order.
JOB_STARTED = "started"
JOB_CACHED = "cached"
JOB_REPLAYED = "replayed"
JOB_RETRY = "retry"
JOB_DONE = "done"
JOB_FAILED = "failed"


@dataclass(frozen=True)
class JobEvent:
    """One job lifecycle transition.

    Attributes:
        kind: one of the ``JOB_*`` constants.
        index: position of the job in the submitted grid.
        total: grid size.
        job: the job spec.
        seconds: wall-clock duration (``done``/``failed``; 0 otherwise).
        error: one-line error description (``failed`` only).
        worker: worker id that ran the job (``None`` for in-process work
            and cache hits).
    """

    kind: str
    index: int
    total: int
    job: AnalysisJob
    seconds: float = 0.0
    error: Optional[str] = None
    worker: Optional[int] = None


ProgressListener = Callable[[JobEvent], None]


@dataclass
class EngineTelemetry:
    """Aggregate counters for one grid execution (also a listener)."""

    submitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    replays: int = 0
    retries: int = 0
    failures: int = 0
    busy_seconds: float = 0.0
    events: List[JobEvent] = field(default_factory=list)

    def __call__(self, event: JobEvent) -> None:
        self.events.append(event)
        if event.kind == JOB_STARTED:
            self.submitted += 1
        elif event.kind == JOB_CACHED:
            self.cache_hits += 1
            self.completed += 1
        elif event.kind == JOB_REPLAYED:
            self.replays += 1
            self.completed += 1
        elif event.kind == JOB_RETRY:
            self.retries += 1
            self.busy_seconds += event.seconds
        elif event.kind == JOB_DONE:
            self.completed += 1
            self.busy_seconds += event.seconds
        elif event.kind == JOB_FAILED:
            self.failures += 1
            self.busy_seconds += event.seconds

    def summary(self) -> str:
        """One-line rollup for logs and the CLI."""
        line = (
            f"{self.completed} jobs done ({self.cache_hits} cached, "
            f"{self.failures} failed), {self.busy_seconds:.2f}s analysis time"
        )
        if self.replays:
            line += f", {self.replays} replayed from journal"
        if self.retries:
            line += f", {self.retries} retried"
        return line


def console_listener(stream=None) -> ProgressListener:
    """A listener that prints one line per completed/cached/failed job."""
    out = stream if stream is not None else sys.stderr

    def listen(event: JobEvent) -> None:
        if event.kind == JOB_STARTED:
            return
        width = len(str(event.total))
        tags = {
            JOB_CACHED: "cached",
            JOB_REPLAYED: "replayed",
            JOB_RETRY: "RETRY",
            JOB_DONE: f"{event.seconds:6.2f}s",
            JOB_FAILED: "FAILED",
        }
        tag = tags.get(event.kind, event.kind)
        line = f"[{event.index + 1:>{width}}/{event.total}] {tag:>8}  {event.job.describe()}"
        if event.error:
            line += f"  ({event.error})"
        print(line, file=out)

    return listen


def metrics_listener() -> ProgressListener:
    """A listener that mirrors job lifecycle events into the active metrics
    registry (``jobs.<kind>`` counters). No-ops when metrics are disabled,
    so it is safe to fan out unconditionally."""
    from repro.obs import metrics as obs

    def listen(event: JobEvent) -> None:
        obs.inc(f"jobs.{event.kind}")

    return listen


def fanout(*listeners: Optional[ProgressListener]) -> ProgressListener:
    """Combine listeners, skipping ``None`` entries."""
    active = [listener for listener in listeners if listener is not None]

    def listen(event: JobEvent) -> None:
        for listener in active:
            listener(event)

    return listen
