"""Graceful shutdown: flush run artifacts before the process dies.

Both halves of the system end runs the same way — by flushing the run
journal and the metrics export *deterministically*, not by hoping
``atexit`` fires:

- the batch CLI wraps its engine in :func:`graceful_flush`, so a SIGTERM
  or Ctrl-C mid-grid flushes everything already journaled and then exits
  with the conventional ``128 + signum`` code;
- the server's drain path (:meth:`repro.serve.service.AnalysisService.
  drain`) calls :func:`flush_engine` after the in-flight grid lands.

Journal records are fsync'd as they land, so what these helpers add is
closing the file handles and flushing the buffered metrics stream —
cheap, idempotent, and safe to call from any shutdown path.
"""

from __future__ import annotations

import contextlib
import logging
import os
import signal
import threading
from typing import Iterator

logger = logging.getLogger(__name__)

#: Signals the batch CLI treats as "finish the bookkeeping, then die".
FLUSH_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def flush_engine(engine) -> None:
    """Flush and close one engine's run artifacts; never raises (shutdown
    paths must not die in their own cleanup)."""
    try:
        engine.close()
    except Exception:  # noqa: BLE001 - best-effort by contract
        logger.warning("engine flush failed during shutdown", exc_info=True)


@contextlib.contextmanager
def graceful_flush(*engines, signals=FLUSH_SIGNALS) -> Iterator[None]:
    """Flush ``engines`` on SIGTERM/SIGINT and on normal exit.

    On a covered signal the handler flushes every engine, restores the
    previous handler for that signal, and re-raises it against the
    process — so the exit status (``128 + signum``, or a
    ``KeyboardInterrupt`` for SIGINT) is exactly what the caller's parent
    expects from an unhandled signal. Outside the main thread (where
    ``signal.signal`` is unavailable) the context still flushes on exit.
    """
    previous = {}
    installed = threading.current_thread() is threading.main_thread()

    def _flush_all() -> None:
        for engine in engines:
            flush_engine(engine)

    def _handler(signum, frame):
        _flush_all()
        try:
            signal.signal(signum, previous.get(signum, signal.SIG_DFL))
        except (ValueError, OSError):
            pass
        os.kill(os.getpid(), signum)

    if installed:
        for signum in signals:
            try:
                previous[signum] = signal.getsignal(signum)
                signal.signal(signum, _handler)
            except (ValueError, OSError):
                previous.pop(signum, None)
    try:
        yield
    finally:
        if installed:
            for signum, old in previous.items():
                try:
                    signal.signal(signum, old)
                except (ValueError, OSError):
                    pass
        _flush_all()
