"""The engine facade the harness programs against.

An :class:`ExperimentEngine` bundles a trace store, a parallelism degree, an
optional result cache, and progress reporting behind two calls:

- :meth:`ExperimentEngine.analyze` — one analysis, in-process (cache-aware);
- :meth:`ExperimentEngine.analyze_grid` — a batch of jobs, fanned out to the
  worker pool when ``jobs > 1``, with results in submission order.

Experiment code builds grids of :class:`~repro.engine.jobs.AnalysisJob` and
never touches multiprocessing, trace files, or cache keys directly; swapping
``--jobs 1`` for ``--jobs 8`` (or adding ``--result-cache``) changes no
experiment code, only this object's construction.
"""

from __future__ import annotations

import tempfile
from typing import List, Optional, Sequence, Union

from repro.core.config import AnalysisConfig
from repro.core.results import AnalysisResult
from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob
from repro.engine.pool import JobFailedError, JobOutcome, execute_jobs
from repro.engine.progress import (
    EngineTelemetry,
    ProgressListener,
    fanout,
    metrics_listener,
)
from repro.engine.resilience import (
    RetryPolicy,
    RunJournal,
    execute_jobs_resilient,
    new_run_id,
)
from repro.obs import metrics as obs
from repro.obs.export import MetricsWriter
from repro.obs.export import metrics_path as default_metrics_path


def outcome_row(outcome: JobOutcome) -> dict:
    """The metrics-export row for one terminal job outcome (see
    :mod:`repro.obs.export` for the file layout)."""
    if outcome.cached:
        status = "cached"
    elif outcome.replayed:
        status = "replayed"
    elif outcome.ok:
        status = "ok"
    else:
        status = "failed"
    return {
        "index": outcome.index,
        "job": outcome.job.short_digest,
        "describe": outcome.job.describe(),
        "workload": outcome.job.workload,
        "cap": outcome.job.cap,
        "ok": outcome.ok,
        "status": status,
        "seconds": outcome.seconds,
        "attempts": outcome.attempts,
        "worker": outcome.worker,
        "queue_wait": outcome.queue_wait,
        "phases": outcome.phases,
        "error": outcome.error,
    }


class ExperimentEngine:
    """Job-based executor for experiment grids.

    Attributes:
        store: the trace store (created in-memory when not given).
        jobs: worker process count; 1 = in-process serial execution.
        result_cache: optional :class:`ResultCache` (or a directory path).
        timeout: optional per-job wall-clock limit in seconds.
        shared_memory: share each distinct columnar trace with workers via
            one ``multiprocessing.shared_memory`` block (default); when
            off, workers decode traces from the on-disk cache instead.
        retries: transient-failure retries per job (0 = fail on first
            error); retried with exponential backoff + deterministic
            jitter, then quarantined.
        retry_policy: full :class:`RetryPolicy` override (wins over
            ``retries`` when given).
        journal_dir: directory for append-only run journals; every grid
            outcome is journaled as it lands.
        resume: a previous run id to resume — completed jobs replay from
            that run's journal instead of re-executing.
        fail_fast: abort the grid at the first unretryable failure
            (default is keep-going: every job gets its chance).
        telemetry: cumulative :class:`EngineTelemetry` across grids.
        metrics: collect per-phase timings, cache/pool counters, and a
            per-run JSONL metrics export (``None`` defers to the
            ``REPRO_METRICS`` environment switch; default off).
        metrics_path: explicit metrics file path (default:
            ``<journal_dir>/<run-id>.metrics.jsonl`` when journaling, else
            ``<run-id>.metrics.jsonl`` in the working directory).
    """

    def __init__(
        self,
        store=None,
        jobs: int = 1,
        result_cache: Optional[Union[ResultCache, str]] = None,
        timeout: Optional[float] = None,
        progress: Optional[ProgressListener] = None,
        start_method: Optional[str] = None,
        shared_memory: bool = True,
        retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        journal_dir: Optional[str] = None,
        resume: Optional[str] = None,
        fail_fast: bool = False,
        metrics: Optional[bool] = None,
        metrics_path: Optional[str] = None,
        result_cache_max_bytes: Optional[int] = None,
    ):
        if store is None:
            from repro.harness.runner import TraceStore

            store = TraceStore()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if resume and not journal_dir:
            raise ValueError("resume requires a journal_dir to read the journal from")
        if isinstance(result_cache, str):
            result_cache = ResultCache(result_cache, max_bytes=result_cache_max_bytes)
        elif result_cache is not None and result_cache_max_bytes is not None:
            result_cache.max_bytes = result_cache_max_bytes
        self.store = store
        self.jobs = jobs
        self.result_cache = result_cache
        self.timeout = timeout
        self.shared_memory = shared_memory
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=retries + 1)
        self.fail_fast = fail_fast
        self.journal: Optional[RunJournal] = None
        if journal_dir:
            self.journal = RunJournal(journal_dir, run_id=resume, resume=bool(resume))
        self.telemetry = EngineTelemetry()
        self._progress = progress
        self._start_method = start_method
        self.metrics = obs.env_enabled() if metrics is None else bool(metrics)
        self._metrics_explicit = metrics is not None
        self.metrics_registry = None
        self._journal_dir = journal_dir
        self._metrics_path = metrics_path
        self._metrics_run_id: Optional[str] = None
        self._metrics_writer: Optional[MetricsWriter] = None
        if self.metrics:
            self.metrics_registry = obs.enable()

    @property
    def run_id(self) -> Optional[str]:
        """The journal run id (``None`` when journaling is off)."""
        return self.journal.run_id if self.journal is not None else None

    # -- metrics export ----------------------------------------------------

    @property
    def metrics_run_id(self) -> Optional[str]:
        """The id naming this run's metrics file: the journal run id when
        journaling, else a fresh id pinned at first use (``None`` with
        metrics off)."""
        if not self.metrics:
            return None
        if self.run_id is not None:
            return self.run_id
        if self._metrics_run_id is None:
            self._metrics_run_id = new_run_id()
        return self._metrics_run_id

    @property
    def metrics_file(self) -> Optional[str]:
        """Where this run's metrics JSONL lands: the explicit
        ``metrics_path``, else beside the run journal, else (only when
        metrics were requested explicitly, not via ``REPRO_METRICS``) the
        working directory. ``None`` means collect-only — counters and
        phase timings stay queryable on :attr:`metrics_registry` but no
        file is written."""
        if not self.metrics:
            return None
        if self._metrics_path:
            return self._metrics_path
        if self._journal_dir:
            return default_metrics_path(self._journal_dir, self.metrics_run_id)
        if self._metrics_explicit:
            return default_metrics_path(".", self.metrics_run_id)
        return None

    def _writer(self) -> MetricsWriter:
        if self._metrics_writer is None:
            self._metrics_writer = MetricsWriter(self.metrics_file, self.metrics_run_id)
        return self._metrics_writer

    def _export_grid(self, outcomes: Sequence[JobOutcome]) -> None:
        """Append one row per terminal outcome plus the grid's merged
        registry snapshot (parent + workers) to the run's metrics file.
        Collect-only mode (no file destination) keeps the registry
        accumulating across grids instead."""
        if self.metrics_file is None:
            return
        writer = self._writer()
        for outcome in outcomes:
            writer.write_job(outcome_row(outcome))
        writer.write_grid(obs.registry().drain(), jobs=len(outcomes))

    def close(self) -> None:
        """Flush and close this run's artifacts: the run journal and the
        metrics export stream. Journal records are already fsync'd as they
        land, so this is about releasing handles and flushing buffered
        metrics deterministically — the graceful-shutdown paths (batch CLI
        signal handling, server drain) call it instead of trusting
        ``atexit``. Idempotent; the engine stays usable for trace reads
        but must not run further grids afterwards."""
        if self.journal is not None:
            self.journal.close()
        if self._metrics_writer is not None:
            self._metrics_writer.close()

    # -- trace passthrough -------------------------------------------------

    def trace(self, workload, cap: int, optimize: bool = False):
        """The input trace for a job (delegates to the store)."""
        return self.store.trace(workload, cap, optimize=optimize)

    # -- execution ---------------------------------------------------------

    def _ensure_disk_store(self) -> None:
        """Parallel runs need a disk-shared trace cache; attach a scratch
        directory when the store was created memory-only."""
        if self.jobs > 1 and not self.store.directory:
            self.store.persist_to(tempfile.mkdtemp(prefix="paragraph-traces-"))

    def run_grid(self, grid: Sequence[AnalysisJob]) -> List[JobOutcome]:
        """Execute a grid; returns per-job outcomes (never raises on job
        failure — inspect :attr:`JobOutcome.error`). Runs through the
        resilience layer: transient failures are retried per
        :attr:`retry_policy`, outcomes are journaled when a journal is
        configured, and a broken pool degrades to serial execution."""
        self._ensure_disk_store()
        return self.run_grid_with_store(grid, self.store)

    def run_grid_with_store(self, grid: Sequence[AnalysisJob], store) -> List[JobOutcome]:
        """:meth:`run_grid` against an explicit trace store (the sharded
        analysis path substitutes a :class:`~repro.engine.shards.ShardTraceStore`
        serving byte-extent slices of one big trace file). The store must
        already be disk-backed when ``jobs > 1``."""
        outcomes = execute_jobs_resilient(
            grid,
            store,
            njobs=self.jobs,
            result_cache=self.result_cache,
            timeout=self.timeout,
            progress=fanout(self.telemetry, self._progress, metrics_listener()),
            start_method=self._start_method,
            shared_memory=self.shared_memory,
            retry=self.retry_policy,
            journal=self.journal,
            fail_fast=self.fail_fast,
            metrics=self.metrics,
        )
        if self.metrics:
            self._export_grid(outcomes)
        return outcomes

    def analyze_grid(self, grid: Sequence[AnalysisJob]) -> List[AnalysisResult]:
        """Execute a grid strictly: results in submission order, or
        :class:`JobFailedError` listing every failed job."""
        outcomes = self.run_grid(grid)
        failures = [outcome for outcome in outcomes if not outcome.ok]
        if failures:
            raise JobFailedError(failures)
        return [outcome.result for outcome in outcomes]

    def analyze(
        self,
        workload,
        cap: int,
        config: Optional[AnalysisConfig] = None,
        method: str = "forward",
        optimize: bool = False,
    ) -> AnalysisResult:
        """One analysis, in-process, through the result cache."""
        name = workload if isinstance(workload, str) else workload.name
        job = AnalysisJob(
            workload=name,
            cap=cap,
            config=config if config is not None else AnalysisConfig(),
            method=method,
            optimize=optimize,
        )
        outcomes = execute_jobs(
            [job],
            self.store,
            njobs=1,
            result_cache=self.result_cache,
            progress=fanout(self.telemetry, self._progress, metrics_listener()),
            metrics=self.metrics,
        )
        outcome = outcomes[0]
        if not outcome.ok:
            raise JobFailedError([outcome])
        return outcome.result

    def analyze_streamed(
        self,
        path,
        config: Optional[AnalysisConfig] = None,
        shard_size: Optional[int] = None,
    ) -> AnalysisResult:
        """Analyze a PGT2 trace *file* with bounded memory, sharding the
        work across this engine's worker pool when the configuration
        permits (see :mod:`repro.engine.shards`); identical results to
        loading the whole trace and running :func:`repro.core.analyzer.analyze`."""
        from repro.engine.shards import shard_analyze_file

        return shard_analyze_file(path, config, shard_size=shard_size, engine=self)
