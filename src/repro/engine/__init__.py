"""Parallel experiment engine: multiprocess analysis jobs over a shared
trace cache.

The paper's workflow is "capture once, analyze under many configurations";
this package makes the *analyze many* half run as wide as the hardware
allows. See DESIGN.md ("Parallel experiment engine") for the architecture
and the reasoning behind jobs — not trace shards — as the unit of
parallelism.

Public surface:

- :class:`ExperimentEngine` — facade the harness uses (``analyze_grid``);
- :class:`AnalysisJob` — one (workload, cap, config) unit of work;
- :class:`ResultCache` — content-addressed on-disk result cache;
- :class:`JobOutcome` / :class:`JobFailedError` — per-job terminal states;
- progress events and telemetry in :mod:`repro.engine.progress`.
"""

from repro.engine.api import ExperimentEngine
from repro.engine.cache import ResultCache, cache_key
from repro.engine.jobs import AnalysisJob
from repro.engine.pool import (
    EngineError,
    JobFailedError,
    JobOutcome,
    execute_jobs,
    execute_serial,
)
from repro.engine.progress import (
    EngineTelemetry,
    JobEvent,
    console_listener,
    fanout,
)

__all__ = [
    "AnalysisJob",
    "EngineError",
    "EngineTelemetry",
    "ExperimentEngine",
    "JobEvent",
    "JobFailedError",
    "JobOutcome",
    "ResultCache",
    "cache_key",
    "console_listener",
    "execute_jobs",
    "execute_serial",
    "fanout",
]
