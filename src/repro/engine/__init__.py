"""Parallel experiment engine: multiprocess analysis jobs over a shared
trace cache.

The paper's workflow is "capture once, analyze under many configurations";
this package makes the *analyze many* half run as wide as the hardware
allows. See DESIGN.md ("Parallel experiment engine") for the architecture
and the reasoning behind jobs — not trace shards — as the unit of
parallelism.

Public surface:

- :class:`ExperimentEngine` — facade the harness uses (``analyze_grid``);
- :class:`AnalysisJob` — one (workload, cap, config) unit of work;
- :class:`ResultCache` — content-addressed on-disk result cache;
- :class:`JobOutcome` / :class:`JobFailedError` — per-job terminal states;
- progress events and telemetry in :mod:`repro.engine.progress`;
- fault tolerance (retry/backoff, run journals, shm sweeps) in
  :mod:`repro.engine.resilience`, and the deterministic fault-injection
  harness that pins it in :mod:`repro.engine.faults`;
- observability (phase spans, counters, JSONL run metrics) lives in
  :mod:`repro.obs` and is threaded through every path here — enable it
  with ``ExperimentEngine(metrics=True)`` or ``REPRO_METRICS=1``.
"""

from repro.engine.api import ExperimentEngine
from repro.engine.cache import ResultCache, cache_key
from repro.engine.jobs import AnalysisJob
from repro.engine.pool import (
    EngineError,
    JobFailedError,
    JobOutcome,
    PoolBrokenError,
    execute_jobs,
    execute_serial,
)
from repro.engine.progress import (
    EngineTelemetry,
    JobEvent,
    console_listener,
    fanout,
    metrics_listener,
)
from repro.engine.resilience import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    RunJournal,
    ShmManifest,
    classify_failure,
    execute_jobs_resilient,
    sweep_stale_manifests,
)

__all__ = [
    "AnalysisJob",
    "EngineError",
    "EngineTelemetry",
    "ExperimentEngine",
    "JobEvent",
    "JobFailedError",
    "JobOutcome",
    "PERMANENT",
    "PoolBrokenError",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "ShmManifest",
    "TRANSIENT",
    "cache_key",
    "classify_failure",
    "console_listener",
    "execute_jobs",
    "execute_jobs_resilient",
    "execute_serial",
    "fanout",
    "metrics_listener",
    "sweep_stale_manifests",
]
