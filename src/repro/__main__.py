"""``python -m repro`` — the paragraph CLI (see :mod:`repro.harness.cli`)."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
