"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A lexical, syntactic, or semantic error in MiniC source."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
