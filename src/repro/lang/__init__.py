"""MiniC: a small imperative language compiled to the reproduction ISA.

The paper analyzes "ordinary programs ... written in an imperative language
such as C or FORTRAN", compiled by the MIPS compilers with a finite register
file. MiniC exists so the workloads in :mod:`repro.workloads` are real
compiled programs with genuine register-reuse pressure, stack frames, and a
data segment — the raw material of the storage-dependency (renaming)
experiments.

Language summary::

    // globals (data segment); arrays are 1-D or 2-D, word elements
    int n = 64;
    float table[16] = {1.0, 2.0};
    int grid[8][8];

    int add(int a, int b) { return a + b; }

    void main() {
        int i;                 // scalar locals live in callee-saved regs
        float acc[32];         // local arrays live on the stack
        for (i = 0; i < 32; i = i + 1) { acc[i] = float(i) * 0.5; }
        print_float(acc[31]);
    }

Types: ``int``, ``float`` (both one word), arrays thereof. Control flow:
``if``/``else``, ``while``, ``for``, ``break``, ``continue``, ``return``.
Operators: arithmetic, comparisons, ``&& ||`` (short-circuit), bitwise
``& | ^ ~ << >>``, ``%``, casts ``int(e)``/``float(e)``. Builtins:
``print_int``, ``print_float``, ``print_char``, ``read_int``,
``read_float``, ``sqrt``. No pointers; index arrays instead (this keeps
memory dependence exact while exercising every analyzer path).
"""

from repro.lang.compiler import compile_source, compile_to_assembly
from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze_ast

__all__ = [
    "compile_source",
    "compile_to_assembly",
    "CompileError",
    "tokenize",
    "parse",
    "analyze_ast",
]
