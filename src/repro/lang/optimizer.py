"""MiniC optimizer.

The paper's section 3.2 notes that the compiler exerts a second-order
effect on measured parallelism (its example: the MIPS compiler's loop
unrolling weakening loop-counter recurrences). This module provides the
optimization passes that let the harness measure that effect on our own
stack (the ``abl-compiler`` ablation):

Pre-typing pass (syntax-level, runs before semantic analysis):

- constant folding over int/float literals with C semantics (truncating
  integer division), including comparisons, logical and unary operators
  and literal casts;
- algebraic identities on *pure* operands (``x+0``, ``x*1``, ``x*0``,
  ``x-0``, ``0-x`` kept as negation, ``x/1``); purity means no calls, so
  side effects are never dropped;
- dead control elimination: ``if (k)`` with a constant condition keeps
  only the live branch, ``while (0)`` disappears.

- loop unrolling — the paper's own example of the compiler's second-order
  effect ("the MIPS compiler commonly performs loop unrolling which tends
  to decrease the recurrences created by loop counters, thus increasing
  the parallelism"): counted ``for`` loops with literal bounds whose trip
  count divides evenly are unrolled 2-4x, advancing the induction variable
  between body copies.

Post-typing pass (needs types, runs after semantic analysis):

- strength reduction: integer multiply/divide by a power of two becomes a
  shift (divide only when the dividend is provably non-negative is *not*
  attempted — C's truncating semantics differ from an arithmetic shift on
  negatives, so division is left alone).
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.lang import ast
from repro.lang.typesys import FLOAT, INT

_INT_FOLD = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 31),
    ">>": lambda a, b: a >> (b & 31),
}

_FLOAT_FOLD = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}

_COMPARE_FOLD = {
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}


def _c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def is_pure(expr: ast.Expr) -> bool:
    """True if evaluating ``expr`` has no side effects (no calls)."""
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.VarRef)):
        return True
    if isinstance(expr, ast.Index):
        return all(is_pure(index) for index in expr.indices)
    if isinstance(expr, (ast.BinOp, ast.LogicalOp)):
        return is_pure(expr.left) and is_pure(expr.right)
    if isinstance(expr, ast.UnOp):
        return is_pure(expr.operand)
    if isinstance(expr, ast.Cast):
        return is_pure(expr.operand)
    return False  # calls (and anything unknown) are impure


def _literal_value(expr: ast.Expr):
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)):
        return expr.value
    return None


def _make_literal(value, line: int) -> ast.Expr:
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return ast.IntLiteral(line=line, value=value)
    return ast.FloatLiteral(line=line, value=value)


def _is_int_literal(expr: ast.Expr, value: Optional[int] = None) -> bool:
    if not isinstance(expr, ast.IntLiteral):
        return False
    return value is None or expr.value == value


def _is_literal(expr: ast.Expr, value) -> bool:
    folded = _literal_value(expr)
    if folded is None:
        return False
    return folded == value


class FoldingPass:
    """Syntax-level constant folding and dead-control elimination."""

    def run(self, program: ast.ProgramAST) -> ast.ProgramAST:
        for func in program.functions:
            func.body = self._block(func.body)
        return program

    # -- statements ------------------------------------------------------

    def _block(self, block: ast.Block) -> ast.Block:
        out = []
        for statement in block.statements:
            folded = self._statement(statement)
            if folded is not None:
                out.append(folded)
        block.statements = out
        return block

    def _statement(self, statement: ast.Stmt) -> Optional[ast.Stmt]:
        if isinstance(statement, ast.Block):
            return self._block(statement)
        if isinstance(statement, ast.LocalDecl):
            if statement.init is not None:
                statement.init = self._expr(statement.init)
            return statement
        if isinstance(statement, ast.Assign):
            statement.target = self._expr(statement.target)
            statement.value = self._expr(statement.value)
            return statement
        if isinstance(statement, ast.ExprStmt):
            statement.expr = self._expr(statement.expr)
            if is_pure(statement.expr):
                return None  # a pure expression statement is dead code
            return statement
        if isinstance(statement, ast.If):
            statement.cond = self._expr(statement.cond)
            condition = _literal_value(statement.cond)
            statement.then_body = self._block(statement.then_body)
            if statement.else_body is not None:
                statement.else_body = self._block(statement.else_body)
            if isinstance(condition, int):
                if condition:
                    return statement.then_body
                return statement.else_body  # may be None: statement vanishes
            return statement
        if isinstance(statement, ast.While):
            statement.cond = self._expr(statement.cond)
            if _is_int_literal(statement.cond, 0):
                return None
            statement.body = self._block(statement.body)
            return statement
        if isinstance(statement, ast.For):
            if statement.init is not None:
                statement.init = self._statement(statement.init)
            if statement.cond is not None:
                statement.cond = self._expr(statement.cond)
            if statement.step is not None:
                statement.step = self._statement(statement.step)
            statement.body = self._block(statement.body)
            if statement.cond is not None and _is_int_literal(statement.cond, 0):
                return statement.init  # only the init ever runs
            return statement
        if isinstance(statement, ast.Return):
            if statement.value is not None:
                statement.value = self._expr(statement.value)
            return statement
        return statement

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.BinOp):
            expr.left = self._expr(expr.left)
            expr.right = self._expr(expr.right)
            return self._fold_binop(expr)
        if isinstance(expr, ast.LogicalOp):
            expr.left = self._expr(expr.left)
            expr.right = self._expr(expr.right)
            return self._fold_logical(expr)
        if isinstance(expr, ast.UnOp):
            expr.operand = self._expr(expr.operand)
            return self._fold_unop(expr)
        if isinstance(expr, ast.Cast):
            expr.operand = self._expr(expr.operand)
            value = _literal_value(expr.operand)
            if value is not None and expr.type in (INT, FLOAT):
                if expr.type == INT:
                    return _make_literal(int(value), expr.line)
                return _make_literal(float(value), expr.line)
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self._expr(arg) for arg in expr.args]
            return expr
        if isinstance(expr, ast.Index):
            expr.indices = [self._expr(index) for index in expr.indices]
            return expr
        return expr

    def _fold_binop(self, expr: ast.BinOp) -> ast.Expr:
        left = _literal_value(expr.left)
        right = _literal_value(expr.right)
        op = expr.op
        if left is not None and right is not None:
            folded = self._fold_constants(op, left, right, expr.line)
            if folded is not None:
                return folded
        # algebraic identities (pure operands only; never drop a call)
        if op == "+" and _is_literal(expr.right, 0) and is_pure(expr.right):
            return expr.left
        if op == "+" and _is_literal(expr.left, 0) and is_pure(expr.left):
            return expr.right
        if op == "-" and _is_literal(expr.right, 0):
            return expr.left
        if op == "*" and _is_literal(expr.right, 1):
            return expr.left
        if op == "*" and _is_literal(expr.left, 1):
            return expr.right
        if op == "*" and (
            (_is_int_literal(expr.right, 0) and is_pure(expr.left))
            or (_is_int_literal(expr.left, 0) and is_pure(expr.right))
        ):
            return ast.IntLiteral(line=expr.line, value=0)
        if op == "/" and _is_literal(expr.right, 1):
            return expr.left
        return expr

    def _fold_constants(self, op, left, right, line) -> Optional[ast.Expr]:
        both_int = isinstance(left, int) and isinstance(right, int)
        if op in _COMPARE_FOLD:
            return _make_literal(_COMPARE_FOLD[op](left, right), line)
        if both_int:
            if op in _INT_FOLD:
                return _make_literal(_INT_FOLD[op](left, right), line)
            if op == "/" and right != 0:
                return _make_literal(_c_div(left, right), line)
            if op == "%" and right != 0:
                return _make_literal(left - _c_div(left, right) * right, line)
            return None
        # at least one float: promote (int-only operators cannot reach here
        # with floats, sema would reject the original program anyway)
        if op in _FLOAT_FOLD:
            return _make_literal(_FLOAT_FOLD[op](float(left), float(right)), line)
        if op == "/" and float(right) != 0.0:
            return _make_literal(float(left) / float(right), line)
        return None

    def _fold_logical(self, expr: ast.LogicalOp) -> ast.Expr:
        left = _literal_value(expr.left)
        if isinstance(left, int):
            if expr.op == "&&":
                if not left:
                    return ast.IntLiteral(line=expr.line, value=0)
                return self._normalize_bool(expr.right, expr.line)
            if left:
                return ast.IntLiteral(line=expr.line, value=1)
            return self._normalize_bool(expr.right, expr.line)
        right = _literal_value(expr.right)
        if isinstance(right, int) and is_pure(expr.right):
            # x && 0 still evaluates x's side effects; x is pure here only
            # when we can see it, and normalizing requires the left's value
            # -> keep the general form unless both sides fold above.
            pass
        return expr

    def _normalize_bool(self, expr: ast.Expr, line: int) -> ast.Expr:
        value = _literal_value(expr)
        if isinstance(value, int):
            return ast.IntLiteral(line=line, value=1 if value else 0)
        result = ast.UnOp(line=line, op="!", operand=ast.UnOp(line=line, op="!", operand=expr))
        return result

    def _fold_unop(self, expr: ast.UnOp) -> ast.Expr:
        value = _literal_value(expr.operand)
        if value is None:
            return expr
        if expr.op == "-":
            return _make_literal(-value, expr.line)
        if expr.op == "!":
            return _make_literal(0 if value else 1, expr.line)
        if expr.op == "~" and isinstance(value, int):
            return _make_literal(~value, expr.line)
        return expr


class UnrollPass:
    """Counted-loop unrolling (syntax-level, pre-typing).

    A loop qualifies when it has the canonical counted shape with literal
    bounds — ``for (i = C; i < N; i = i + S)`` with ``S > 0`` — an exact
    trip count divisible by the unroll factor, and a body that neither
    branches out (``break``/``continue``/``return``) nor writes the
    induction variable. The body is replicated ``factor`` times with the
    induction step between copies.
    """

    FACTORS = (4, 2)
    MAX_BODY_STATEMENTS = 24

    def run(self, program: ast.ProgramAST) -> ast.ProgramAST:
        for func in program.functions:
            self._block(func.body)
        return program

    def _block(self, block: ast.Block) -> None:
        for position, statement in enumerate(block.statements):
            block.statements[position] = self._statement(statement)

    def _statement(self, statement: ast.Stmt) -> ast.Stmt:
        if isinstance(statement, ast.Block):
            self._block(statement)
        elif isinstance(statement, ast.If):
            self._block(statement.then_body)
            if statement.else_body is not None:
                self._block(statement.else_body)
        elif isinstance(statement, ast.While):
            self._block(statement.body)
        elif isinstance(statement, ast.For):
            self._block(statement.body)
            return self._try_unroll(statement)
        return statement

    def _try_unroll(self, loop: ast.For) -> ast.Stmt:
        header = self._counted_header(loop)
        if header is None:
            return loop
        variable, start, bound, step = header
        span = bound - start
        if span <= 0 or span % step != 0:
            return loop
        trips = span // step
        if len(loop.body.statements) > self.MAX_BODY_STATEMENTS:
            return loop
        if self._escapes_or_writes(loop.body, variable):
            return loop
        for factor in self.FACTORS:
            if trips % factor == 0 and trips >= factor:
                return self._rewrite(loop, variable, step, factor)
        return loop

    @staticmethod
    def _counted_header(loop: ast.For):
        """Decompose ``for (i = C; i < N; i = i + S)``; None if not it."""
        init, cond, step_stmt = loop.init, loop.cond, loop.step
        if isinstance(init, ast.Assign) and isinstance(init.target, ast.VarRef):
            name = init.target.name
            start_expr = init.value
        elif isinstance(init, ast.LocalDecl) and init.init is not None:
            name = init.name
            start_expr = init.init
        else:
            return None
        if not isinstance(start_expr, ast.IntLiteral):
            return None
        if not (
            isinstance(cond, ast.BinOp)
            and cond.op == "<"
            and isinstance(cond.left, ast.VarRef)
            and cond.left.name == name
            and isinstance(cond.right, ast.IntLiteral)
        ):
            return None
        if not (
            isinstance(step_stmt, ast.Assign)
            and isinstance(step_stmt.target, ast.VarRef)
            and step_stmt.target.name == name
            and isinstance(step_stmt.value, ast.BinOp)
            and step_stmt.value.op == "+"
            and isinstance(step_stmt.value.left, ast.VarRef)
            and step_stmt.value.left.name == name
            and isinstance(step_stmt.value.right, ast.IntLiteral)
            and step_stmt.value.right.value > 0
        ):
            return None
        return name, start_expr.value, cond.right.value, step_stmt.value.right.value

    @classmethod
    def _escapes_or_writes(cls, node, variable: str) -> bool:
        """True if the body breaks/continues/returns or writes ``variable``."""
        if isinstance(node, (ast.Break, ast.Continue, ast.Return)):
            return True
        if isinstance(node, ast.Assign):
            target = node.target
            if isinstance(target, ast.VarRef) and target.name == variable:
                return True
            return False
        if isinstance(node, ast.LocalDecl):
            return node.name == variable  # shadowing: bail out, keep simple
        if isinstance(node, ast.Block):
            return any(cls._escapes_or_writes(s, variable) for s in node.statements)
        if isinstance(node, ast.If):
            if cls._escapes_or_writes(node.then_body, variable):
                return True
            return node.else_body is not None and cls._escapes_or_writes(
                node.else_body, variable
            )
        if isinstance(node, (ast.While, ast.For)):
            return True  # nested loops with their own breaks: keep simple
        return False

    @classmethod
    def _rewrite(cls, loop: ast.For, variable: str, step: int, factor: int) -> ast.For:
        """Replicate the body with the induction variable offset per copy
        (``i``, ``i+S``, ``i+2S``...) and step once by ``factor*S`` — the
        offset form is what actually weakens the counter recurrence (each
        copy's index hangs one level off the single per-iteration update
        instead of chaining through intermediate increments)."""
        copies = [loop.body]
        for index in range(1, factor):
            body = copy.deepcopy(loop.body)
            cls._offset_variable(body, variable, index * step)
            copies.append(body)
        loop.body = ast.Block(line=loop.line, statements=copies)
        loop.step.value.right = ast.IntLiteral(
            line=loop.line, value=factor * step
        )
        return loop

    @classmethod
    def _offset_variable(cls, node, variable: str, offset: int) -> None:
        """Rewrite reads of ``variable`` inside ``node`` to ``variable +
        offset`` (the body is known not to write it)."""

        def rewrite(expr):
            if isinstance(expr, ast.VarRef) and expr.name == variable:
                return ast.BinOp(
                    line=expr.line,
                    op="+",
                    left=expr,
                    right=ast.IntLiteral(line=expr.line, value=offset),
                )
            if isinstance(expr, ast.BinOp) or isinstance(expr, ast.LogicalOp):
                expr.left = rewrite(expr.left)
                expr.right = rewrite(expr.right)
            elif isinstance(expr, ast.UnOp):
                expr.operand = rewrite(expr.operand)
            elif isinstance(expr, ast.Cast):
                expr.operand = rewrite(expr.operand)
            elif isinstance(expr, ast.Call):
                expr.args = [rewrite(arg) for arg in expr.args]
            elif isinstance(expr, ast.Index):
                expr.indices = [rewrite(index) for index in expr.indices]
            return expr

        def visit(statement):
            if isinstance(statement, ast.Block):
                for child in statement.statements:
                    visit(child)
            elif isinstance(statement, ast.LocalDecl):
                if statement.init is not None:
                    statement.init = rewrite(statement.init)
            elif isinstance(statement, ast.Assign):
                statement.target = rewrite(statement.target)
                statement.value = rewrite(statement.value)
            elif isinstance(statement, ast.ExprStmt):
                statement.expr = rewrite(statement.expr)
            elif isinstance(statement, ast.If):
                statement.cond = rewrite(statement.cond)
                visit(statement.then_body)
                if statement.else_body is not None:
                    visit(statement.else_body)
            elif isinstance(statement, ast.Return) and statement.value is not None:
                statement.value = rewrite(statement.value)

        visit(node)


class StrengthReductionPass:
    """Post-typing multiply-by-power-of-two -> shift."""

    def run(self, program: ast.ProgramAST) -> ast.ProgramAST:
        for func in program.functions:
            self._block(func.body)
        return program

    def _block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._statement(statement)

    def _statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self._block(statement)
        elif isinstance(statement, ast.LocalDecl) and statement.init is not None:
            statement.init = self._expr(statement.init)
        elif isinstance(statement, ast.Assign):
            statement.value = self._expr(statement.value)
            self._expr(statement.target)
        elif isinstance(statement, ast.ExprStmt):
            statement.expr = self._expr(statement.expr)
        elif isinstance(statement, ast.If):
            statement.cond = self._expr(statement.cond)
            self._block(statement.then_body)
            if statement.else_body is not None:
                self._block(statement.else_body)
        elif isinstance(statement, ast.While):
            statement.cond = self._expr(statement.cond)
            self._block(statement.body)
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._statement(statement.init)
            if statement.cond is not None:
                statement.cond = self._expr(statement.cond)
            if statement.step is not None:
                self._statement(statement.step)
            self._block(statement.body)
        elif isinstance(statement, ast.Return) and statement.value is not None:
            statement.value = self._expr(statement.value)

    def _expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.BinOp):
            expr.left = self._expr(expr.left)
            expr.right = self._expr(expr.right)
            if expr.op == "*" and expr.type == INT:
                reduced = self._try_shift(expr)
                if reduced is not None:
                    return reduced
            return expr
        if isinstance(expr, ast.LogicalOp):
            expr.left = self._expr(expr.left)
            expr.right = self._expr(expr.right)
            return expr
        if isinstance(expr, ast.UnOp):
            expr.operand = self._expr(expr.operand)
            return expr
        if isinstance(expr, ast.Cast):
            expr.operand = self._expr(expr.operand)
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self._expr(arg) for arg in expr.args]
            return expr
        if isinstance(expr, ast.Index):
            expr.indices = [self._expr(index) for index in expr.indices]
            return expr
        return expr

    def _try_shift(self, expr: ast.BinOp) -> Optional[ast.Expr]:
        for operand, other in ((expr.right, expr.left), (expr.left, expr.right)):
            if (
                isinstance(operand, ast.IntLiteral)
                and operand.value > 1
                and operand.value & (operand.value - 1) == 0
                and other.type == INT
            ):
                shift = ast.IntLiteral(line=expr.line, value=operand.value.bit_length() - 1)
                shift.type = INT
                reduced = ast.BinOp(line=expr.line, op="<<", left=other, right=shift)
                reduced.type = INT
                return reduced
        return None


def optimize_untyped(program: ast.ProgramAST) -> ast.ProgramAST:
    """Run the pre-typing passes (after parse, before sema)."""
    program = FoldingPass().run(program)
    return UnrollPass().run(program)


def optimize_typed(program: ast.ProgramAST) -> ast.ProgramAST:
    """Run the post-typing passes (after sema, before codegen)."""
    return StrengthReductionPass().run(program)
