"""MiniC abstract syntax tree.

Expression nodes carry a ``type`` attribute filled in by semantic analysis
(:mod:`repro.lang.sema`); the code generator relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.lang.typesys import ArrayType

Type = Union[str, ArrayType]


# -- expressions -----------------------------------------------------------


@dataclass
class Expr:
    """Base expression; ``type`` is set by sema."""

    line: int = 0
    type: Optional[str] = field(default=None, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    """Reference to a scalar variable or a bare array name (arrays only as
    indexing bases)."""

    name: str = ""


@dataclass
class Index(Expr):
    """``name[i]`` or ``name[i][j]``."""

    name: str = ""
    indices: List[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    """Arithmetic/bitwise/comparison binary operation (not ``&&``/``||``)."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class LogicalOp(Expr):
    """Short-circuit ``&&`` / ``||``."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class UnOp(Expr):
    """Unary ``-``, ``!``, ``~``."""

    op: str = ""
    operand: Expr = None


@dataclass
class Cast(Expr):
    """Implicit or explicit int<->float conversion; ``type`` is the target."""

    operand: Expr = None


@dataclass
class Call(Expr):
    """Function or builtin call."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


# -- statements -------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class LocalDecl(Stmt):
    """Local variable declaration (scalar or stack array), optional scalar
    initializer."""

    name: str = ""
    var_type: Type = "int"
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = expr`` where target is a scalar or an element."""

    target: Expr = None  # VarRef or Index
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then_body: "Block" = None
    else_body: Optional["Block"] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: "Block" = None


@dataclass
class For(Stmt):
    """``for (init; cond; step) body`` — init/step are statements or None."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: "Block" = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


# -- declarations -------------------------------------------------------------


@dataclass
class GlobalDecl:
    """Global variable: scalar (optional constant initializer) or array
    (optional constant element list)."""

    name: str
    var_type: Type
    line: int
    scalar_init: Union[int, float, None] = None
    array_init: Optional[List[Union[int, float]]] = None


@dataclass
class Param:
    name: str
    var_type: str  # scalars only
    line: int = 0


@dataclass
class FuncDef:
    name: str
    return_type: str
    params: List[Param]
    body: Block
    line: int = 0


@dataclass
class ProgramAST:
    """A whole translation unit."""

    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
