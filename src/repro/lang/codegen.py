"""MiniC code generator: annotated AST -> assembly text.

Conventions (simplified MIPS o32):

- arguments: ``a0..a3`` for ints, ``f12..f15`` for floats (max 4 each);
- results: ``v0`` (int) / ``f0`` (float);
- scalar locals and parameters are homed in callee-saved registers
  (``s0..s7`` / ``f20..f27``) while they last, then in frame slots;
- expression temporaries come from the caller-saved pools in
  :mod:`repro.lang.regalloc`, spilling to frame slots under pressure;
- local arrays live in the frame (stack segment); globals in the data
  segment — this is what gives the paper's *Rename Stack* / *Rename Data*
  distinction its bite on our workloads.

Frame layout (word offsets from the adjusted ``sp``)::

    0 ..          saved ra (if the function makes calls)
    next          saved callee-saved int then fp registers
    next          frame-resident scalars
    next          local arrays
    next          spill slots (as many as the body needed)

Every statement is preceded by a ``.stmt N`` directive carrying a globally
unique statement id (consumed by the Kumar-style statement-granularity
baseline).

Two frame disciplines are supported:

- **dynamic** (default, C-style): the prologue moves ``sp`` down and the
  epilogue moves it back. Faithful to MIPS C output; note the ``sp``
  updates form a true-dependency chain threading every call.
- **static** (``static_frames=True``, FORTRAN-77-style): every function
  gets a *fixed* frame carved out of the bottom of the stack segment, and
  ``sp`` is never touched. This is how MIPS Fortran laid out locals —
  including local arrays — and it is precisely why the paper found that
  renaming the *stack* unlocks matrix300/tomcatv: the fixed per-call
  storage is reused by every invocation, creating storage (WAR)
  dependencies that renaming removes. Recursion is not supported in this
  mode (as in FORTRAN 77).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.regalloc import (
    FP_ARG_REGS,
    FP_SAVED_REGS,
    INT_ARG_REGS,
    INT_SAVED_REGS,
    Temp,
    TempAllocator,
)
from repro.isa.layout import STACK_SEGMENT_FLOOR, STACK_TOP_WORDS
from repro.lang.typesys import FLOAT, INT, VOID, is_array

_INT_BINOPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sll",
    ">>": "sra",
    "==": "seq",
    "!=": "sne",
    "<": "slt",
    "<=": "sle",
    ">": "sgt",
    ">=": "sge",
}

_FP_ARITH = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

#: float comparison -> (opcode, swap operands, negate result)
_FP_COMPARE = {
    "<": ("flt", False, False),
    "<=": ("fle", False, False),
    ">": ("flt", True, False),
    ">=": ("fle", True, False),
    "==": ("feq", False, False),
    "!=": ("feq", False, True),
}


class _VarStorage:
    """Where a variable lives at run time."""

    __slots__ = ("kind", "place", "reg", "offset", "label", "array_type")

    def __init__(self, kind, place, reg=None, offset=None, label=None, array_type=None):
        self.kind = kind  # element/scalar type: "int" | "float"
        self.place = place  # "sreg" | "frame" | "global" | "frame_array" | "global_array"
        self.reg = reg
        self.offset = offset
        self.label = label
        self.array_type = array_type


class CodeGen:
    """Generates one translation unit.

    Args:
        program: the analyzed AST.
        static_frames: FORTRAN-77-style fixed frames (see module docstring).
    """

    def __init__(self, program: ast.ProgramAST, static_frames: bool = False):
        self.program = program
        self.static_frames = static_frames
        self._static_next = STACK_SEGMENT_FLOOR  # next free static-frame word
        self._param_blocks: Dict[str, int] = {}  # sp-relative arg-block bases
        self.lines: List[str] = []
        self._label_count = 0
        self._stmt_count = 0

        # per-function state
        self._body: List[str] = []
        self._temps: Optional[TempAllocator] = None
        self._storage: Dict[str, _VarStorage] = {}
        self._globals: Dict[str, _VarStorage] = {}
        self._spill_base = 0
        self._spill_count = 0
        self._free_slots: List[int] = []
        self._return_label = ""
        self._return_type = VOID
        self._loop_labels: List[Tuple[str, str]] = []  # (continue, break)

    # -- public entry -------------------------------------------------------

    def generate(self) -> str:
        """Emit the whole program as assembly text."""
        self._emit_data_segment()
        if self.static_frames:
            # FORTRAN argument blocks: every function's parameters live at
            # fixed stack-segment addresses, written by the caller at each
            # call site (by-reference-style dummy arguments). Reserve them
            # up front so forward calls know the addresses.
            for func in self.program.functions:
                self._param_blocks[func.name] = self._static_next - STACK_TOP_WORDS
                self._static_next += max(len(func.params), 1)
        self.lines.append(".text")
        self._emit_startup()
        for func in self.program.functions:
            self._gen_function(func)
        return "\n".join(self.lines) + "\n"

    # -- data segment ---------------------------------------------------------

    def _emit_data_segment(self) -> None:
        self.lines.append(".data")
        for decl in self.program.globals:
            label = f"g_{decl.name}"
            if is_array(decl.var_type):
                self._globals[decl.name] = _VarStorage(
                    decl.var_type.element,
                    "global_array",
                    label=label,
                    array_type=decl.var_type,
                )
                self._emit_global_array(label, decl)
            else:
                self._globals[decl.name] = _VarStorage(decl.var_type, "global", label=label)
                directive = ".word" if decl.var_type == INT else ".float"
                init = decl.scalar_init
                if init is None:
                    init = 0 if decl.var_type == INT else 0.0
                if decl.var_type == FLOAT:
                    init = float(init)
                self.lines.append(f"{label}: {directive} {init}")

    def _emit_global_array(self, label: str, decl: ast.GlobalDecl) -> None:
        size = decl.var_type.size_words
        values = decl.array_init or []
        directive = ".word" if decl.var_type.element == INT else ".float"
        if decl.var_type.element == FLOAT:
            values = [float(v) for v in values]
        if not values:
            self.lines.append(f"{label}: .space {size}")
            return
        first = True
        for start in range(0, len(values), 8):
            chunk = ", ".join(str(v) for v in values[start : start + 8])
            prefix = f"{label}: " if first else "    "
            self.lines.append(f"{prefix}{directive} {chunk}")
            first = False
        if len(values) < size:
            self.lines.append(f"    .space {size - len(values)}")

    def _emit_startup(self) -> None:
        main = next(f for f in self.program.functions if f.name == "main")
        self.lines.append("main:")
        self.lines.append("    jal fn_main")
        if main.return_type == INT:
            self.lines.append("    move a0, v0")
        else:
            self.lines.append("    li a0, 0")
        self.lines.append("    li v0, 10")
        self.lines.append("    syscall")

    # -- function emission -------------------------------------------------------

    def _new_label(self, hint: str) -> str:
        self._label_count += 1
        return f"L{hint}_{self._label_count}"

    def _emit(self, line: str) -> None:
        self._body.append(f"    {line}")

    def _emit_label(self, label: str) -> None:
        self._body.append(f"{label}:")

    def _alloc_slot(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        slot = self._spill_base + self._spill_count
        self._spill_count += 1
        return slot

    def _free_slot(self, slot: int) -> None:
        self._free_slots.append(slot)

    #: Registers a static-mode leaf function homes its locals in (its
    #: expression pools shrink correspondingly). Leaves save nothing.
    _LEAF_INT_HOMES = ("t6", "t7", "t8", "t9")
    _LEAF_FP_HOMES = ("f8", "f9", "f10", "f11")
    _LEAF_INT_POOL = ("t0", "t1", "t2", "t3", "t4", "t5")
    _LEAF_FP_POOL = ("f4", "f5", "f6", "f7")

    def _gen_function(self, func: ast.FuncDef) -> None:
        self._body = []
        self._storage = {}
        self._free_slots = []
        self._spill_count = 0
        self._return_label = self._new_label(f"ret_{func.name}")
        self._return_type = func.return_type
        self._loop_labels = []

        # In static-frame mode this function's frame is a fixed region at
        # the bottom of the stack segment; sp permanently holds the stack
        # top, so every "offset(sp)" below resolves to an absolute address
        # inside that region and sp itself is never written (no sp
        # dependency chain, faithful to MIPS Fortran output). Leaf
        # functions home their locals in caller-saved registers and save
        # nothing at all, so the only per-call stack traffic is the
        # caller-written argument block: fresh values into fixed slots,
        # i.e. pure storage (WAR) dependencies that stack renaming removes.
        static = self.static_frames
        leaf = static and not func.makes_calls
        base = (self._static_next - STACK_TOP_WORDS) if static else 0

        if leaf:
            int_homes, fp_homes = list(self._LEAF_INT_HOMES), list(self._LEAF_FP_HOMES)
            self._temps = TempAllocator(
                self._emit, self._alloc_slot, self._free_slot,
                int_pool=self._LEAF_INT_POOL, fp_pool=self._LEAF_FP_POOL,
            )
        else:
            int_homes, fp_homes = list(INT_SAVED_REGS), list(FP_SAVED_REGS)
            self._temps = TempAllocator(self._emit, self._alloc_slot, self._free_slot)

        save_ra = func.makes_calls
        offset = base + (1 if save_ra else 0)  # first slot = ra

        # Home assignment. Static-mode parameters stay in their argument
        # block (memory-resident dummy arguments); other scalars go to
        # register homes while they last, then to frame slots; arrays go
        # after scalars.
        param_names = {param.name for param in func.params}
        frame_scalars = []
        reg_homed: List[Tuple[str, str]] = []  # (reg, "sw"/"sf") needing saves
        for symbol in func.symbols:
            if is_array(symbol.type):
                continue
            if static and symbol.name in param_names:
                slot = self._param_blocks[func.name] + func.params.index(
                    next(p for p in func.params if p.name == symbol.name)
                )
                self._storage[symbol.name] = _VarStorage(symbol.type, "frame", offset=slot)
                continue
            homes = int_homes if symbol.type == INT else fp_homes
            if homes:
                reg = homes.pop(0)
                self._storage[symbol.name] = _VarStorage(symbol.type, "sreg", reg=reg)
                if not leaf:
                    reg_homed.append((reg, "sw" if symbol.type == INT else "sf"))
            else:
                frame_scalars.append(symbol)

        save_offsets: List[Tuple[str, int, str]] = []  # (reg, offset, sw/sf)
        for reg, store in reg_homed:
            save_offsets.append((reg, offset, store))
            offset += 1
        for symbol in frame_scalars:
            self._storage[symbol.name] = _VarStorage(symbol.type, "frame", offset=offset)
            offset += 1
        for symbol in func.symbols:
            if is_array(symbol.type):
                self._storage[symbol.name] = _VarStorage(
                    symbol.type.element,
                    "frame_array",
                    offset=offset,
                    array_type=symbol.type,
                )
                offset += symbol.type.size_words
        self._spill_base = offset

        # Parameter move-in (dynamic mode: from argument registers).
        param_moves: List[str] = []
        if not static:
            int_arg = 0
            fp_arg = 0
            for param in func.params:
                storage = self._storage[param.name]
                if param.var_type == INT:
                    if int_arg >= len(INT_ARG_REGS):
                        raise CompileError("too many int parameters (max 4)", param.line)
                    source = INT_ARG_REGS[int_arg]
                    int_arg += 1
                    if storage.place == "sreg":
                        param_moves.append(f"    move {storage.reg}, {source}")
                    else:
                        param_moves.append(f"    sw {source}, {storage.offset}(sp)")
                else:
                    if fp_arg >= len(FP_ARG_REGS):
                        raise CompileError("too many float parameters (max 4)", param.line)
                    source = FP_ARG_REGS[fp_arg]
                    fp_arg += 1
                    if storage.place == "sreg":
                        param_moves.append(f"    fmov {storage.reg}, {source}")
                    else:
                        param_moves.append(f"    sf {source}, {storage.offset}(sp)")

        self._gen_block(func.body)

        frame = self._spill_base + self._spill_count - base
        if static:
            self._static_next += frame
            if self._static_next > STACK_TOP_WORDS - 4096:
                raise CompileError(
                    f"static frames exhaust the stack segment in {func.name}"
                )
        out = self.lines
        out.append(f"fn_{func.name}:")
        if frame and not static:
            out.append(f"    addi sp, sp, -{frame}")
        if save_ra:
            out.append(f"    sw ra, {base}(sp)")
        for reg, off, store in save_offsets:
            out.append(f"    {store} {reg}, {off}(sp)")
        out.extend(param_moves)
        out.extend(self._body)
        out.append(f"{self._return_label}:")
        if save_ra:
            out.append(f"    lw ra, {base}(sp)")
        for reg, off, store in save_offsets:
            load = "lw" if store == "sw" else "lf"
            out.append(f"    {load} {reg}, {off}(sp)")
        if frame and not static:
            out.append(f"    addi sp, sp, {frame}")
        out.append("    jr ra")

    # -- statements --------------------------------------------------------------

    def _stmt_marker(self) -> None:
        self._emit(f".stmt {self._stmt_count}")
        self._stmt_count += 1

    def _gen_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._gen_statement(statement)

    def _gen_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self._gen_block(statement)
            return
        if isinstance(statement, ast.If):
            self._gen_if(statement)
            return
        if isinstance(statement, ast.While):
            self._gen_while(statement)
            return
        if isinstance(statement, ast.For):
            self._gen_for(statement)
            return
        self._stmt_marker()
        if isinstance(statement, ast.LocalDecl):
            if statement.init is not None:
                value = self._gen_expr(statement.init)
                self._store_scalar(self._storage[statement.name], value)
                self._temps.release(value)
        elif isinstance(statement, ast.Assign):
            self._gen_assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            result = self._gen_expr(statement.expr, allow_void=True)
            if result is not None:
                self._temps.release(result)
        elif isinstance(statement, ast.Return):
            self._gen_return(statement)
        elif isinstance(statement, ast.Break):
            self._emit(f"j {self._loop_labels[-1][1]}")
        elif isinstance(statement, ast.Continue):
            self._emit(f"j {self._loop_labels[-1][0]}")
        else:  # pragma: no cover
            raise CompileError(f"cannot generate {type(statement).__name__}", statement.line)
        self._temps.assert_drained(f"statement at line {statement.line}")

    def _gen_if(self, statement: ast.If) -> None:
        self._stmt_marker()
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        cond = self._gen_expr(statement.cond)
        reg = self._temps.ensure(cond)
        self._emit(f"beqz {reg}, {else_label if statement.else_body else end_label}")
        self._temps.release(cond)
        self._temps.assert_drained("if condition")
        self._gen_block(statement.then_body)
        if statement.else_body is not None:
            self._emit(f"j {end_label}")
            self._emit_label(else_label)
            self._gen_block(statement.else_body)
        self._emit_label(end_label)

    def _gen_while(self, statement: ast.While) -> None:
        self._stmt_marker()
        cond_label = self._new_label("while")
        end_label = self._new_label("endwhile")
        self._emit_label(cond_label)
        cond = self._gen_expr(statement.cond)
        reg = self._temps.ensure(cond)
        self._emit(f"beqz {reg}, {end_label}")
        self._temps.release(cond)
        self._temps.assert_drained("while condition")
        self._loop_labels.append((cond_label, end_label))
        self._gen_block(statement.body)
        self._loop_labels.pop()
        self._emit(f"j {cond_label}")
        self._emit_label(end_label)

    def _gen_for(self, statement: ast.For) -> None:
        self._stmt_marker()
        cond_label = self._new_label("for")
        step_label = self._new_label("forstep")
        end_label = self._new_label("endfor")
        if statement.init is not None:
            self._gen_statement(statement.init)
        self._emit_label(cond_label)
        if statement.cond is not None:
            cond = self._gen_expr(statement.cond)
            reg = self._temps.ensure(cond)
            self._emit(f"beqz {reg}, {end_label}")
            self._temps.release(cond)
            self._temps.assert_drained("for condition")
        self._loop_labels.append((step_label, end_label))
        self._gen_block(statement.body)
        self._loop_labels.pop()
        self._emit_label(step_label)
        if statement.step is not None:
            self._gen_statement(statement.step)
        self._emit(f"j {cond_label}")
        self._emit_label(end_label)

    def _gen_assign(self, statement: ast.Assign) -> None:
        target = statement.target
        if isinstance(target, ast.VarRef):
            value = self._gen_expr(statement.value)
            self._store_scalar(self._lookup(target.name), value)
            self._temps.release(value)
            return
        # Element store: value first, then address.
        value = self._gen_expr(statement.value)
        offset_text, base_temp = self._element_address(target)
        store = "sw" if statement.value.type == INT else "sf"
        if isinstance(base_temp, Temp):
            base_reg = self._temps.ensure(base_temp)
            value_reg = self._temps.ensure(value, keep=(base_temp,))
        else:
            base_reg = base_temp
            value_reg = self._temps.ensure(value)
        self._emit(f"{store} {value_reg}, {offset_text}({base_reg})")
        if isinstance(base_temp, Temp):
            self._temps.release(base_temp)
        self._temps.release(value)

    def _gen_return(self, statement: ast.Return) -> None:
        if statement.value is not None:
            value = self._gen_expr(statement.value)
            reg = self._temps.ensure(value)
            if self._return_type == INT:
                self._emit(f"move v0, {reg}")
            else:
                self._emit(f"fmov f0, {reg}")
            self._temps.release(value)
        self._emit(f"j {self._return_label}")

    # -- variable access ------------------------------------------------------------

    def _lookup(self, name: str) -> _VarStorage:
        storage = self._storage.get(name)
        if storage is None:
            storage = self._globals[name]
        return storage

    def _store_scalar(self, storage: _VarStorage, value: Temp) -> None:
        reg = self._temps.ensure(value)
        if storage.place == "sreg":
            move = "move" if storage.kind == INT else "fmov"
            self._emit(f"{move} {storage.reg}, {reg}")
        elif storage.place == "frame":
            store = "sw" if storage.kind == INT else "sf"
            self._emit(f"{store} {reg}, {storage.offset}(sp)")
        elif storage.place == "global":
            store = "sw" if storage.kind == INT else "sf"
            self._emit(f"{store} {reg}, {storage.label}")
        else:  # pragma: no cover - sema rejects whole-array assignment
            raise CompileError(f"cannot store to array {storage.label}")

    def _load_scalar(self, storage: _VarStorage) -> Temp:
        if storage.place == "sreg":
            return self._temps.borrow(storage.kind, storage.reg)
        temp = self._temps.acquire(storage.kind)
        load = "lw" if storage.kind == INT else "lf"
        if storage.place == "frame":
            self._emit(f"{load} {temp.reg}, {storage.offset}(sp)")
        else:
            self._emit(f"{load} {temp.reg}, {storage.label}")
        return temp

    def _element_address(self, expr: ast.Index):
        """Compute an element's address.

        Returns ``(offset_text, base)`` where base is a register name or a
        Temp holding the base register; the caller emits
        ``op value, offset_text(base)`` and releases the Temp.
        """
        storage = self._lookup(expr.name)
        dims = storage.array_type.dims
        index = self._linear_index(expr, dims)
        index_reg = self._temps.ensure(index)
        if storage.place == "global_array":
            return storage.label, index
        # frame array: base = sp + index, element at offset storage.offset
        base = self._temps.acquire(INT)
        self._emit(f"add {base.reg}, sp, {index_reg}")
        self._temps.release(index)
        return str(storage.offset), base

    def _linear_index(self, expr: ast.Index, dims) -> Temp:
        if len(dims) == 1:
            index = self._gen_expr(expr.indices[0])
            return index
        row = self._gen_expr(expr.indices[0])
        row_reg = self._temps.ensure(row)
        linear = self._temps.acquire(INT, keep=(row,))
        ncols = dims[1]
        if ncols & (ncols - 1) == 0:
            shift = ncols.bit_length() - 1
            self._emit(f"slli {linear.reg}, {row_reg}, {shift}")
        else:
            self._emit(f"muli {linear.reg}, {row_reg}, {ncols}")
        self._temps.release(row)
        col = self._gen_expr(expr.indices[1])
        col_reg = self._temps.ensure(col)
        linear_reg = self._temps.ensure(linear, keep=(col,))
        self._emit(f"add {linear_reg}, {linear_reg}, {col_reg}")
        self._temps.release(col)
        return linear

    # -- expressions ---------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr, allow_void: bool = False) -> Optional[Temp]:
        if isinstance(expr, ast.IntLiteral):
            temp = self._temps.acquire(INT)
            self._emit(f"li {temp.reg}, {expr.value}")
            return temp
        if isinstance(expr, ast.FloatLiteral):
            temp = self._temps.acquire(FLOAT)
            self._emit(f"lfi {temp.reg}, {expr.value!r}")
            return temp
        if isinstance(expr, ast.VarRef):
            return self._load_scalar(self._lookup(expr.name))
        if isinstance(expr, ast.Index):
            offset_text, base = self._element_address(expr)
            if isinstance(base, Temp):
                base_reg = self._temps.ensure(base)
                temp = self._temps.acquire(expr.type, keep=(base,))
            else:
                base_reg = base
                temp = self._temps.acquire(expr.type)
            load = "lw" if expr.type == INT else "lf"
            self._emit(f"{load} {temp.reg}, {offset_text}({base_reg})")
            if isinstance(base, Temp):
                self._temps.release(base)
            return temp
        if isinstance(expr, ast.BinOp):
            return self._gen_binop(expr)
        if isinstance(expr, ast.LogicalOp):
            return self._gen_logical(expr)
        if isinstance(expr, ast.UnOp):
            return self._gen_unop(expr)
        if isinstance(expr, ast.Cast):
            return self._gen_cast(expr)
        if isinstance(expr, ast.Call):
            result = self._gen_call(expr)
            if result is None and not allow_void:
                raise CompileError(f"void call {expr.name} used as a value", expr.line)
            return result
        raise CompileError(f"cannot generate {type(expr).__name__}", expr.line)  # pragma: no cover

    def _result_temp(self, kind: str, *operands: Temp) -> Temp:
        """Reuse an owned operand's register for the result when possible;
        otherwise acquire a fresh one with the operands protected."""
        for operand in operands:
            if not operand.borrowed and operand.kind == kind and operand.reg is not None:
                return operand
        return self._temps.acquire(kind, keep=operands)

    def _gen_binop(self, expr: ast.BinOp) -> Temp:
        left = self._gen_expr(expr.left)
        right = self._gen_expr(expr.right)
        left_reg = self._temps.ensure(left)
        right_reg = self._temps.ensure(right, keep=(left,))
        operand_kind = expr.left.type
        if operand_kind == INT:
            opcode = _INT_BINOPS[expr.op]
            dest = self._result_temp(INT, left, right)
            self._emit(f"{opcode} {dest.reg}, {left_reg}, {right_reg}")
            for operand in (left, right):
                if operand is not dest:
                    self._temps.release(operand)
            return dest
        if expr.op in _FP_ARITH:
            opcode = _FP_ARITH[expr.op]
            dest = self._result_temp(FLOAT, left, right)
            self._emit(f"{opcode} {dest.reg}, {left_reg}, {right_reg}")
            for operand in (left, right):
                if operand is not dest:
                    self._temps.release(operand)
            return dest
        # float comparison -> int result
        opcode, swap, negate = _FP_COMPARE[expr.op]
        first, second = (right_reg, left_reg) if swap else (left_reg, right_reg)
        dest = self._temps.acquire(INT)
        self._emit(f"{opcode} {dest.reg}, {first}, {second}")
        if negate:
            self._emit(f"xori {dest.reg}, {dest.reg}, 1")
        self._temps.release(left)
        self._temps.release(right)
        return dest

    def _gen_logical(self, expr: ast.LogicalOp) -> Temp:
        end_label = self._new_label("lgc")
        result_slot = self._alloc_slot()
        left = self._gen_expr(expr.left)
        left_reg = self._temps.ensure(left)
        normal = self._temps.acquire(INT, keep=(left,))
        self._emit(f"sne {normal.reg}, {left_reg}, zero")
        self._emit(f"sw {normal.reg}, {result_slot}(sp)")
        branch = "beqz" if expr.op == "&&" else "bnez"
        # Spill everything live before the branch so both paths agree on
        # where each temporary resides at the merge point.
        self._temps.release(left)
        self._temps.spill_live(exclude=(normal,))
        self._emit(f"{branch} {normal.reg}, {end_label}")
        self._temps.release(normal)
        right = self._gen_expr(expr.right)
        right_reg = self._temps.ensure(right)
        flag = self._temps.acquire(INT, keep=(right,))
        self._emit(f"sne {flag.reg}, {right_reg}, zero")
        self._emit(f"sw {flag.reg}, {result_slot}(sp)")
        self._temps.release(right)
        self._temps.release(flag)
        self._emit_label(end_label)
        result = self._temps.acquire(INT)
        self._emit(f"lw {result.reg}, {result_slot}(sp)")
        self._free_slot(result_slot)
        return result

    def _gen_unop(self, expr: ast.UnOp) -> Temp:
        operand = self._gen_expr(expr.operand)
        reg = self._temps.ensure(operand)
        if expr.op == "-":
            if expr.type == FLOAT:
                dest = self._result_temp(FLOAT, operand)
                self._emit(f"fneg {dest.reg}, {reg}")
            else:
                dest = self._result_temp(INT, operand)
                self._emit(f"sub {dest.reg}, zero, {reg}")
        elif expr.op == "!":
            dest = self._result_temp(INT, operand)
            self._emit(f"seq {dest.reg}, {reg}, zero")
        else:  # "~"
            dest = self._result_temp(INT, operand)
            self._emit(f"nor {dest.reg}, {reg}, zero")
        if dest is not operand:
            self._temps.release(operand)
        return dest

    def _gen_cast(self, expr: ast.Cast) -> Temp:
        operand = self._gen_expr(expr.operand)
        if expr.operand.type == expr.type:
            return operand
        reg = self._temps.ensure(operand)
        dest = self._temps.acquire(expr.type, keep=(operand,))
        opcode = "cvtif" if expr.type == FLOAT else "cvtfi"
        self._emit(f"{opcode} {dest.reg}, {reg}")
        self._temps.release(operand)
        return dest

    # -- calls -----------------------------------------------------------------------

    _BUILTIN_SYSCALLS = {
        "print_int": 1,
        "print_float": 2,
        "read_int": 5,
        "read_float": 6,
        "print_char": 11,
    }

    def _gen_call(self, expr: ast.Call) -> Optional[Temp]:
        if getattr(expr, "builtin", False):
            return self._gen_builtin(expr)
        arg_temps = [self._gen_expr(arg) for arg in expr.args]
        self._temps.spill_live(exclude=arg_temps)
        if self.static_frames:
            # FORTRAN-style: write argument values into the callee's fixed
            # argument block.
            block = self._param_blocks[expr.name]
            for position, (arg, temp) in enumerate(zip(expr.args, arg_temps)):
                reg = self._temps.ensure(temp)
                store = "sw" if arg.type == INT else "sf"
                self._emit(f"{store} {reg}, {block + position}(sp)")
                self._temps.release(temp)
        else:
            int_arg = 0
            fp_arg = 0
            for arg, temp in zip(expr.args, arg_temps):
                reg = self._temps.ensure(temp)
                if arg.type == INT:
                    if int_arg >= len(INT_ARG_REGS):
                        raise CompileError("too many int arguments (max 4)", expr.line)
                    self._emit(f"move {INT_ARG_REGS[int_arg]}, {reg}")
                    int_arg += 1
                else:
                    if fp_arg >= len(FP_ARG_REGS):
                        raise CompileError("too many float arguments (max 4)", expr.line)
                    self._emit(f"fmov {FP_ARG_REGS[fp_arg]}, {reg}")
                    fp_arg += 1
                self._temps.release(temp)
        self._emit(f"jal fn_{expr.name}")
        if expr.type == VOID:
            return None
        result = self._temps.acquire(expr.type)
        if expr.type == INT:
            self._emit(f"move {result.reg}, v0")
        else:
            self._emit(f"fmov {result.reg}, f0")
        return result

    def _gen_builtin(self, expr: ast.Call) -> Optional[Temp]:
        name = expr.name
        if name == "sqrt":
            operand = self._gen_expr(expr.args[0])
            reg = self._temps.ensure(operand)
            dest = self._result_temp(FLOAT, operand)
            self._emit(f"fsqrt {dest.reg}, {reg}")
            if dest is not operand:
                self._temps.release(operand)
            return dest
        number = self._BUILTIN_SYSCALLS[name]
        if name in ("print_int", "print_char"):
            operand = self._gen_expr(expr.args[0])
            reg = self._temps.ensure(operand)
            self._emit(f"move a0, {reg}")
            self._temps.release(operand)
        elif name == "print_float":
            operand = self._gen_expr(expr.args[0])
            reg = self._temps.ensure(operand)
            self._emit(f"fmov f12, {reg}")
            self._temps.release(operand)
        self._emit(f"li v0, {number}")
        self._emit("syscall")
        if name == "read_int":
            result = self._temps.acquire(INT)
            self._emit(f"move {result.reg}, v0")
            return result
        if name == "read_float":
            result = self._temps.acquire(FLOAT)
            self._emit(f"fmov {result.reg}, f0")
            return result
        return None


def generate_assembly(program: ast.ProgramAST, static_frames: bool = False) -> str:
    """Generate assembly text from an analyzed AST."""
    return CodeGen(program, static_frames=static_frames).generate()
