"""Compiler driver: MiniC source -> assembly -> assembled Program."""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.lang.codegen import generate_assembly
from repro.lang.optimizer import optimize_typed, optimize_untyped
from repro.lang.parser import parse
from repro.lang.sema import analyze_ast


def compile_to_assembly(
    source: str, static_frames: bool = False, optimize: bool = False
) -> str:
    """Compile MiniC source text to assembly text.

    Args:
        source: MiniC program text.
        static_frames: FORTRAN-77-style fixed frames (see
            :mod:`repro.lang.codegen`); the default is C-style dynamic
            frames.
        optimize: run the optimizer passes (constant folding, algebraic
            simplification, dead-control elimination, strength reduction).
            Off by default so measured dependency structure is the
            straightforward translation; the ``abl-compiler`` ablation
            measures the difference (the paper's section 3.2 second-order
            compiler effect).
    """
    program_ast = parse(source)
    if optimize:
        program_ast = optimize_untyped(program_ast)
    program_ast = analyze_ast(program_ast)
    if optimize:
        program_ast = optimize_typed(program_ast)
    return generate_assembly(program_ast, static_frames=static_frames)


def compile_source(
    source: str, static_frames: bool = False, optimize: bool = False
) -> Program:
    """Compile MiniC source text to an assembled :class:`Program`."""
    return assemble(
        compile_to_assembly(source, static_frames=static_frames, optimize=optimize)
    )
