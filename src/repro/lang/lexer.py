"""MiniC lexer.

Tokens carry ``(kind, text, value, line)``. Kinds are ``"int"``/``"float"``
literals, ``"ident"``, ``"kw"`` (keywords), ``"op"`` (operators and
punctuation), and the terminal ``"eof"``. Comments are ``//`` to end of
line and ``/* ... */`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.lang.errors import CompileError

KEYWORDS = {
    "int",
    "float",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "int" | "float" | "ident" | "kw" | "op" | "eof"
    text: str
    value: Union[int, float, None]
    line: int

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_kw(self, text: str) -> bool:
        return self.kind == "kw" and self.text == text


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    size = len(source)
    while pos < size:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = size if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < size and source[pos + 1].isdigit()):
            token, pos = _lex_number(source, pos, line)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < size and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line))
            continue
        operator = _match_operator(source, pos)
        if operator is not None:
            tokens.append(Token("op", operator, None, line))
            pos += len(operator)
            continue
        raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens


def _match_operator(source: str, pos: int) -> Optional[str]:
    for operator in _OPERATORS:
        if source.startswith(operator, pos):
            return operator
    return None


def _lex_number(source: str, pos: int, line: int):
    size = len(source)
    start = pos
    if source.startswith("0x", pos) or source.startswith("0X", pos):
        pos += 2
        while pos < size and source[pos] in "0123456789abcdefABCDEF":
            pos += 1
        return Token("int", source[start:pos], int(source[start:pos], 16), line), pos
    is_float = False
    while pos < size and source[pos].isdigit():
        pos += 1
    if pos < size and source[pos] == ".":
        is_float = True
        pos += 1
        while pos < size and source[pos].isdigit():
            pos += 1
    if pos < size and source[pos] in "eE":
        probe = pos + 1
        if probe < size and source[probe] in "+-":
            probe += 1
        if probe < size and source[probe].isdigit():
            is_float = True
            pos = probe
            while pos < size and source[pos].isdigit():
                pos += 1
    text = source[start:pos]
    if is_float:
        return Token("float", text, float(text), line), pos
    return Token("int", text, int(text), line), pos
