"""MiniC's type system: ``int``, ``float``, ``void``, and arrays thereof.

Both scalar types occupy one memory word (the ISA is word-addressed), so an
array of ``n`` elements needs ``n`` words regardless of element type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

INT = "int"
FLOAT = "float"
VOID = "void"

SCALAR_TYPES = (INT, FLOAT)


@dataclass(frozen=True)
class ArrayType:
    """A 1-D or 2-D array of a scalar element type."""

    element: str
    dims: Tuple[int, ...]

    def __post_init__(self):
        if self.element not in SCALAR_TYPES:
            raise ValueError(f"array element must be scalar, got {self.element}")
        if not 1 <= len(self.dims) <= 2:
            raise ValueError(f"arrays are 1-D or 2-D, got {len(self.dims)} dims")
        if any(d < 1 for d in self.dims):
            raise ValueError(f"array dims must be positive: {self.dims}")

    @property
    def size_words(self) -> int:
        """Total storage in words."""
        size = 1
        for dim in self.dims:
            size *= dim
        return size

    def __str__(self) -> str:
        return self.element + "".join(f"[{d}]" for d in self.dims)


def is_scalar(type_) -> bool:
    """True for ``int`` / ``float``."""
    return type_ in SCALAR_TYPES


def is_array(type_) -> bool:
    """True for :class:`ArrayType`."""
    return isinstance(type_, ArrayType)


def is_numeric(type_) -> bool:
    """True for types usable in arithmetic."""
    return is_scalar(type_)


def unify_arithmetic(left, right) -> str:
    """Result type of a mixed arithmetic expression (int promotes to
    float, as in C)."""
    if left == FLOAT or right == FLOAT:
        return FLOAT
    return INT
