"""MiniC recursive-descent parser.

Grammar sketch (see package docstring for the full language description)::

    program     := (global_decl | func_def)*
    global_decl := type name array_dims? ('=' const_init)? ';'
    func_def    := type name '(' params ')' block
    stmt        := local_decl ';' | assign ';' | expr ';' | if | while
                 | for | 'return' expr? ';' | 'break' ';' | 'continue' ';'
                 | block | ';'
    assign      := (name | name '[' expr ']' ('[' expr ']')?) '=' expr

Expression precedence, low to high:
``||  &&  |  ^  &  ==/!=  </<=/>/>=  <</>>  +/-  *,/,%  unary``.
``int(e)`` / ``float(e)`` are explicit casts.
"""

from __future__ import annotations

from typing import List, Union

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.lexer import Token, tokenize
from repro.lang.typesys import FLOAT, INT, VOID, ArrayType

_BINARY_LEVELS = [
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    """One-token-lookahead parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect_op(self, text: str) -> Token:
        token = self.current
        if not token.is_op(text):
            raise CompileError(f"expected {text!r}, got {token.text!r}", token.line)
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.current
        if token.kind != "ident":
            raise CompileError(f"expected identifier, got {token.text!r}", token.line)
        return self.advance()

    def accept_op(self, text: str) -> bool:
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    def at_type_keyword(self) -> bool:
        return self.current.kind == "kw" and self.current.text in (INT, FLOAT, VOID)

    # -- top level ------------------------------------------------------------

    def parse_program(self) -> ast.ProgramAST:
        program = ast.ProgramAST()
        while self.current.kind != "eof":
            if not self.at_type_keyword():
                raise CompileError(
                    f"expected declaration, got {self.current.text!r}", self.current.line
                )
            base_type = self.advance().text
            name_token = self.expect_ident()
            if self.current.is_op("("):
                program.functions.append(self._func_def(base_type, name_token))
            else:
                program.globals.append(self._global_decl(base_type, name_token))
        return program

    def _array_dims(self) -> List[int]:
        dims = []
        while self.accept_op("["):
            token = self.current
            if token.kind != "int":
                raise CompileError("array dimensions must be integer literals", token.line)
            dims.append(token.value)
            self.advance()
            self.expect_op("]")
        return dims

    def _global_decl(self, base_type: str, name_token: Token) -> ast.GlobalDecl:
        if base_type == VOID:
            raise CompileError("variables cannot be void", name_token.line)
        dims = self._array_dims()
        var_type: Union[str, ArrayType] = (
            ArrayType(base_type, tuple(dims)) if dims else base_type
        )
        scalar_init = None
        array_init = None
        if self.accept_op("="):
            if dims:
                array_init = self._const_list(name_token.line)
            else:
                scalar_init = self._const_value()
        self.expect_op(";")
        return ast.GlobalDecl(
            name=name_token.text,
            var_type=var_type,
            line=name_token.line,
            scalar_init=scalar_init,
            array_init=array_init,
        )

    def _const_value(self) -> Union[int, float]:
        negate = self.accept_op("-")
        token = self.current
        if token.kind not in ("int", "float"):
            raise CompileError("global initializers must be constants", token.line)
        self.advance()
        return -token.value if negate else token.value

    def _const_list(self, line: int) -> List[Union[int, float]]:
        self.expect_op("{")
        values = []
        if not self.current.is_op("}"):
            values.append(self._const_value())
            while self.accept_op(","):
                values.append(self._const_value())
        self.expect_op("}")
        if not values:
            raise CompileError("empty array initializer", line)
        return values

    def _func_def(self, return_type: str, name_token: Token) -> ast.FuncDef:
        self.expect_op("(")
        params: List[ast.Param] = []
        if not self.current.is_op(")"):
            while True:
                if not self.at_type_keyword() or self.current.text == VOID:
                    raise CompileError(
                        "parameters must be int or float scalars", self.current.line
                    )
                param_type = self.advance().text
                param_name = self.expect_ident()
                params.append(ast.Param(param_name.text, param_type, param_name.line))
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self._block()
        return ast.FuncDef(
            name=name_token.text,
            return_type=return_type,
            params=params,
            body=body,
            line=name_token.line,
        )

    # -- statements --------------------------------------------------------------

    def _block(self) -> ast.Block:
        open_token = self.expect_op("{")
        statements = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise CompileError("unterminated block", open_token.line)
            statements.append(self._statement())
        self.expect_op("}")
        return ast.Block(line=open_token.line, statements=statements)

    def _statement(self) -> ast.Stmt:
        token = self.current
        if token.is_op("{"):
            return self._block()
        if token.is_op(";"):
            self.advance()
            return ast.Block(line=token.line)
        if token.kind == "kw":
            if token.text in (INT, FLOAT):
                # A cast expression also starts with a type keyword; peek for
                # '(' to disambiguate `int(x);` from `int x;`.
                if self.tokens[self.pos + 1].is_op("("):
                    return self._expr_or_assign()
                statement = self._local_decl()
                self.expect_op(";")
                return statement
            if token.text == VOID:
                raise CompileError("variables cannot be void", token.line)
            if token.text == "if":
                return self._if()
            if token.text == "while":
                return self._while()
            if token.text == "for":
                return self._for()
            if token.text == "return":
                self.advance()
                value = None if self.current.is_op(";") else self._expression()
                self.expect_op(";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self.advance()
                self.expect_op(";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect_op(";")
                return ast.Continue(line=token.line)
        statement = self._expr_or_assign()
        return statement

    def _local_decl(self) -> ast.LocalDecl:
        base_type = self.advance().text
        name_token = self.expect_ident()
        dims = self._array_dims()
        var_type: Union[str, ArrayType] = (
            ArrayType(base_type, tuple(dims)) if dims else base_type
        )
        init = None
        if self.accept_op("="):
            if dims:
                raise CompileError("local arrays cannot be initialized", name_token.line)
            init = self._expression()
        return ast.LocalDecl(
            line=name_token.line, name=name_token.text, var_type=var_type, init=init
        )

    def _simple_statement(self) -> ast.Stmt:
        """A declaration, assignment, or expression without the trailing
        semicolon (for `for` headers)."""
        if self.at_type_keyword() and not self.tokens[self.pos + 1].is_op("("):
            return self._local_decl()
        expr = self._expression()
        if self.accept_op("="):
            if not isinstance(expr, (ast.VarRef, ast.Index)):
                raise CompileError("assignment target must be a variable or element", expr.line)
            value = self._expression()
            return ast.Assign(line=expr.line, target=expr, value=value)
        return ast.ExprStmt(line=expr.line, expr=expr)

    def _expr_or_assign(self) -> ast.Stmt:
        statement = self._simple_statement()
        self.expect_op(";")
        return statement

    def _if(self) -> ast.If:
        token = self.advance()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        then_body = self._statement_as_block()
        else_body = None
        if self.current.is_kw("else"):
            self.advance()
            else_body = self._statement_as_block()
        return ast.If(line=token.line, cond=cond, then_body=then_body, else_body=else_body)

    def _while(self) -> ast.While:
        token = self.advance()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        return ast.While(line=token.line, cond=cond, body=self._statement_as_block())

    def _for(self) -> ast.For:
        token = self.advance()
        self.expect_op("(")
        init = None if self.current.is_op(";") else self._simple_statement()
        self.expect_op(";")
        cond = None if self.current.is_op(";") else self._expression()
        self.expect_op(";")
        step = None if self.current.is_op(")") else self._simple_statement()
        self.expect_op(")")
        return ast.For(
            line=token.line, init=init, cond=cond, step=step, body=self._statement_as_block()
        )

    def _statement_as_block(self) -> ast.Block:
        statement = self._statement()
        if isinstance(statement, ast.Block):
            return statement
        return ast.Block(line=statement.line, statements=[statement])

    # -- expressions ---------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._logical_or()

    def _logical_or(self) -> ast.Expr:
        expr = self._logical_and()
        while self.current.is_op("||"):
            line = self.advance().line
            right = self._logical_and()
            expr = ast.LogicalOp(line=line, op="||", left=expr, right=right)
        return expr

    def _logical_and(self) -> ast.Expr:
        expr = self._binary(0)
        while self.current.is_op("&&"):
            line = self.advance().line
            right = self._binary(0)
            expr = ast.LogicalOp(line=line, op="&&", left=expr, right=right)
        return expr

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        operators = _BINARY_LEVELS[level]
        expr = self._binary(level + 1)
        while self.current.kind == "op" and self.current.text in operators:
            operator = self.advance()
            right = self._binary(level + 1)
            expr = ast.BinOp(line=operator.line, op=operator.text, left=expr, right=right)
        return expr

    def _unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            operand = self._unary()
            return ast.UnOp(line=token.line, op=token.text, operand=operand)
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(line=token.line, value=token.value)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(line=token.line, value=token.value)
        if token.is_op("("):
            self.advance()
            expr = self._expression()
            self.expect_op(")")
            return expr
        if token.kind == "kw" and token.text in (INT, FLOAT):
            self.advance()
            self.expect_op("(")
            operand = self._expression()
            self.expect_op(")")
            cast = ast.Cast(line=token.line, operand=operand)
            cast.type = token.text  # sema validates; parser records the target
            return cast
        if token.kind == "ident":
            self.advance()
            if self.current.is_op("("):
                self.advance()
                args = []
                if not self.current.is_op(")"):
                    args.append(self._expression())
                    while self.accept_op(","):
                        args.append(self._expression())
                self.expect_op(")")
                return ast.Call(line=token.line, name=token.text, args=args)
            if self.current.is_op("["):
                indices = []
                while self.accept_op("["):
                    indices.append(self._expression())
                    self.expect_op("]")
                if len(indices) > 2:
                    raise CompileError("arrays are at most 2-D", token.line)
                return ast.Index(line=token.line, name=token.text, indices=indices)
            return ast.VarRef(line=token.line, name=token.text)
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.ProgramAST:
    """Parse MiniC source into an (untyped) AST."""
    return Parser(tokenize(source)).parse_program()
