"""MiniC semantic analysis: scopes, types, conversions.

Walks the AST produced by the parser, resolving every name to a
:class:`Symbol`, typing every expression, and inserting explicit
:class:`~repro.lang.ast.Cast` nodes wherever C's usual arithmetic
conversions apply — so the code generator never converts implicitly.

Side effects on the AST:

- every ``Expr`` gets ``.type``;
- ``VarRef``/``Index`` get ``.symbol``;
- ``Call`` gets ``.builtin`` (bool) and ``.signature``;
- ``FuncDef`` gets ``.symbols`` (ordered params+locals) and ``.makes_calls``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.typesys import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    is_array,
    is_scalar,
    unify_arithmetic,
)

#: name -> (parameter types, return type)
BUILTINS: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "print_int": ((INT,), VOID),
    "print_float": ((FLOAT,), VOID),
    "print_char": ((INT,), VOID),
    "read_int": ((), INT),
    "read_float": ((), FLOAT),
    "sqrt": ((FLOAT,), FLOAT),
}

_INT_ONLY_OPS = {"%", "<<", ">>", "&", "|", "^"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


@dataclass
class Symbol:
    """A resolved variable."""

    name: str
    type: Union[str, ArrayType]
    kind: str  # "global" | "param" | "local"
    line: int = 0
    #: order of declaration within the function (params first); codegen uses
    #: this to lay out registers and frame slots.
    index: int = -1


@dataclass
class FuncSignature:
    name: str
    param_types: Tuple[str, ...]
    return_type: str


@dataclass
class _FunctionContext:
    func: ast.FuncDef
    symbols: List[Symbol] = field(default_factory=list)
    scopes: List[Dict[str, Symbol]] = field(default_factory=list)
    loop_depth: int = 0
    makes_calls: bool = False


class Analyzer:
    """One-pass semantic analyzer for a translation unit."""

    def __init__(self, program: ast.ProgramAST):
        self.program = program
        self.globals: Dict[str, Symbol] = {}
        self.functions: Dict[str, FuncSignature] = {}

    def run(self) -> ast.ProgramAST:
        """Analyze and annotate; returns the same (mutated) AST."""
        for decl in self.program.globals:
            self._declare_global(decl)
        for func in self.program.functions:
            self._declare_function(func)
        if "main" not in self.functions:
            raise CompileError("program has no main function")
        main = self.functions["main"]
        if main.param_types:
            raise CompileError("main must take no parameters")
        for func in self.program.functions:
            self._check_function(func)
        return self.program

    # -- declarations -----------------------------------------------------

    def _declare_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self.globals or decl.name in BUILTINS:
            raise CompileError(f"duplicate global {decl.name!r}", decl.line)
        if decl.array_init is not None:
            size = decl.var_type.size_words
            if len(decl.array_init) > size:
                raise CompileError(
                    f"too many initializers for {decl.name!r} "
                    f"({len(decl.array_init)} > {size})",
                    decl.line,
                )
        self.globals[decl.name] = Symbol(decl.name, decl.var_type, "global", decl.line)

    def _declare_function(self, func: ast.FuncDef) -> None:
        if func.name in self.functions or func.name in BUILTINS:
            raise CompileError(f"duplicate function {func.name!r}", func.line)
        if func.name in self.globals:
            raise CompileError(
                f"function {func.name!r} collides with a global", func.line
            )
        self.functions[func.name] = FuncSignature(
            func.name,
            tuple(param.var_type for param in func.params),
            func.return_type,
        )

    # -- function bodies ----------------------------------------------------

    def _check_function(self, func: ast.FuncDef) -> None:
        ctx = _FunctionContext(func=func, scopes=[{}])
        for param in func.params:
            self._bind(ctx, Symbol(param.name, param.var_type, "param", param.line))
        self._check_block(ctx, func.body)
        func.symbols = ctx.symbols
        func.makes_calls = ctx.makes_calls

    def _bind(self, ctx: _FunctionContext, symbol: Symbol) -> Symbol:
        scope = ctx.scopes[-1]
        if symbol.name in scope:
            raise CompileError(f"duplicate declaration of {symbol.name!r}", symbol.line)
        symbol.index = len(ctx.symbols)
        scope[symbol.name] = symbol
        ctx.symbols.append(symbol)
        return symbol

    def _resolve(self, ctx: _FunctionContext, name: str, line: int) -> Symbol:
        for scope in reversed(ctx.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise CompileError(f"undefined variable {name!r}", line)

    def _check_block(self, ctx: _FunctionContext, block: ast.Block) -> None:
        ctx.scopes.append({})
        for statement in block.statements:
            self._check_statement(ctx, statement)
        ctx.scopes.pop()

    def _check_statement(self, ctx: _FunctionContext, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self._check_block(ctx, statement)
        elif isinstance(statement, ast.LocalDecl):
            self._check_local_decl(ctx, statement)
        elif isinstance(statement, ast.Assign):
            self._check_assign(ctx, statement)
        elif isinstance(statement, ast.ExprStmt):
            self._check_expr(ctx, statement.expr)
        elif isinstance(statement, ast.If):
            self._require_int(self._check_expr(ctx, statement.cond), statement.line, "if condition")
            self._check_block(ctx, statement.then_body)
            if statement.else_body is not None:
                self._check_block(ctx, statement.else_body)
        elif isinstance(statement, ast.While):
            self._require_int(self._check_expr(ctx, statement.cond), statement.line, "while condition")
            ctx.loop_depth += 1
            self._check_block(ctx, statement.body)
            ctx.loop_depth -= 1
        elif isinstance(statement, ast.For):
            ctx.scopes.append({})
            if statement.init is not None:
                self._check_statement(ctx, statement.init)
            if statement.cond is not None:
                self._require_int(self._check_expr(ctx, statement.cond), statement.line, "for condition")
            ctx.loop_depth += 1
            self._check_block(ctx, statement.body)
            ctx.loop_depth -= 1
            if statement.step is not None:
                self._check_statement(ctx, statement.step)
            ctx.scopes.pop()
        elif isinstance(statement, ast.Return):
            self._check_return(ctx, statement)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if ctx.loop_depth == 0:
                keyword = "break" if isinstance(statement, ast.Break) else "continue"
                raise CompileError(f"{keyword} outside a loop", statement.line)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"unknown statement {type(statement).__name__}", statement.line)

    def _check_local_decl(self, ctx: _FunctionContext, decl: ast.LocalDecl) -> None:
        symbol = self._bind(ctx, Symbol(decl.name, decl.var_type, "local", decl.line))
        decl.symbol = symbol
        if decl.init is not None:
            if is_array(decl.var_type):
                raise CompileError("local arrays cannot be initialized", decl.line)
            init_type = self._check_expr(ctx, decl.init)
            decl.init = self._convert(decl.init, init_type, decl.var_type, decl.line)

    def _check_assign(self, ctx: _FunctionContext, statement: ast.Assign) -> None:
        target_type = self._check_target(ctx, statement.target)
        value_type = self._check_expr(ctx, statement.value)
        statement.value = self._convert(statement.value, value_type, target_type, statement.line)

    def _check_target(self, ctx: _FunctionContext, target: ast.Expr) -> str:
        if isinstance(target, ast.VarRef):
            symbol = self._resolve(ctx, target.name, target.line)
            if is_array(symbol.type):
                raise CompileError(
                    f"cannot assign to array {target.name!r} as a whole", target.line
                )
            target.symbol = symbol
            target.type = symbol.type
            return symbol.type
        if isinstance(target, ast.Index):
            return self._check_index(ctx, target)
        raise CompileError("invalid assignment target", target.line)

    def _check_return(self, ctx: _FunctionContext, statement: ast.Return) -> None:
        expected = ctx.func.return_type
        if statement.value is None:
            if expected != VOID:
                raise CompileError(
                    f"{ctx.func.name} must return a {expected}", statement.line
                )
            return
        if expected == VOID:
            raise CompileError(f"{ctx.func.name} returns void", statement.line)
        value_type = self._check_expr(ctx, statement.value)
        statement.value = self._convert(statement.value, value_type, expected, statement.line)

    # -- expressions -----------------------------------------------------------

    def _check_expr(self, ctx: _FunctionContext, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLiteral):
            expr.type = INT
        elif isinstance(expr, ast.FloatLiteral):
            expr.type = FLOAT
        elif isinstance(expr, ast.VarRef):
            symbol = self._resolve(ctx, expr.name, expr.line)
            if is_array(symbol.type):
                raise CompileError(
                    f"array {expr.name!r} must be indexed", expr.line
                )
            expr.symbol = symbol
            expr.type = symbol.type
        elif isinstance(expr, ast.Index):
            expr.type = self._check_index(ctx, expr)
        elif isinstance(expr, ast.BinOp):
            expr.type = self._check_binop(ctx, expr)
        elif isinstance(expr, ast.LogicalOp):
            self._require_int(self._check_expr(ctx, expr.left), expr.line, f"'{expr.op}' operand")
            self._require_int(self._check_expr(ctx, expr.right), expr.line, f"'{expr.op}' operand")
            expr.type = INT
        elif isinstance(expr, ast.UnOp):
            expr.type = self._check_unop(ctx, expr)
        elif isinstance(expr, ast.Cast):
            operand_type = self._check_expr(ctx, expr.operand)
            if not is_scalar(operand_type):
                raise CompileError("cast operand must be scalar", expr.line)
            # expr.type was set by the parser to the target type.
        elif isinstance(expr, ast.Call):
            expr.type = self._check_call(ctx, expr)
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {type(expr).__name__}", expr.line)
        return expr.type

    def _check_index(self, ctx: _FunctionContext, expr: ast.Index) -> str:
        symbol = self._resolve(ctx, expr.name, expr.line)
        if not is_array(symbol.type):
            raise CompileError(f"{expr.name!r} is not an array", expr.line)
        if len(expr.indices) != len(symbol.type.dims):
            raise CompileError(
                f"{expr.name!r} needs {len(symbol.type.dims)} indices, "
                f"got {len(expr.indices)}",
                expr.line,
            )
        for position, index_expr in enumerate(expr.indices):
            index_type = self._check_expr(ctx, index_expr)
            self._require_int(index_type, expr.line, "array index")
            expr.indices[position] = index_expr
        expr.symbol = symbol
        return symbol.type.element

    def _check_binop(self, ctx: _FunctionContext, expr: ast.BinOp) -> str:
        left_type = self._check_expr(ctx, expr.left)
        right_type = self._check_expr(ctx, expr.right)
        if not is_scalar(left_type) or not is_scalar(right_type):
            raise CompileError(f"operands of {expr.op!r} must be scalars", expr.line)
        if expr.op in _INT_ONLY_OPS:
            self._require_int(left_type, expr.line, f"'{expr.op}' operand")
            self._require_int(right_type, expr.line, f"'{expr.op}' operand")
            return INT
        common = unify_arithmetic(left_type, right_type)
        expr.left = self._convert(expr.left, left_type, common, expr.line)
        expr.right = self._convert(expr.right, right_type, common, expr.line)
        if expr.op in _COMPARISONS:
            return INT
        return common

    def _check_unop(self, ctx: _FunctionContext, expr: ast.UnOp) -> str:
        operand_type = self._check_expr(ctx, expr.operand)
        if expr.op == "-":
            if not is_scalar(operand_type):
                raise CompileError("unary '-' needs a scalar", expr.line)
            return operand_type
        self._require_int(operand_type, expr.line, f"'{expr.op}' operand")
        return INT

    def _check_call(self, ctx: _FunctionContext, expr: ast.Call) -> str:
        if expr.name in BUILTINS:
            # Builtins lower to syscalls/instructions, not jal: they neither
            # clobber ra nor caller-saved registers, so the function stays a
            # leaf.
            param_types, return_type = BUILTINS[expr.name]
            expr.builtin = True
        elif expr.name in self.functions:
            ctx.makes_calls = True
            signature = self.functions[expr.name]
            param_types, return_type = signature.param_types, signature.return_type
            expr.builtin = False
        else:
            raise CompileError(f"undefined function {expr.name!r}", expr.line)
        if len(expr.args) != len(param_types):
            raise CompileError(
                f"{expr.name} expects {len(param_types)} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
            )
        for position, (arg, expected) in enumerate(zip(expr.args, param_types)):
            arg_type = self._check_expr(ctx, arg)
            expr.args[position] = self._convert(arg, arg_type, expected, expr.line)
        return return_type

    # -- conversions ---------------------------------------------------------------

    @staticmethod
    def _require_int(type_: str, line: int, what: str) -> None:
        if type_ != INT:
            raise CompileError(f"{what} must be int, got {type_}", line)

    @staticmethod
    def _convert(expr: ast.Expr, from_type: str, to_type: str, line: int) -> ast.Expr:
        if from_type == to_type:
            return expr
        if not is_scalar(from_type) or not is_scalar(to_type):
            raise CompileError(f"cannot convert {from_type} to {to_type}", line)
        cast = ast.Cast(line=line, operand=expr)
        cast.type = to_type
        return cast


def analyze_ast(program: ast.ProgramAST) -> ast.ProgramAST:
    """Run semantic analysis over a parsed program."""
    return Analyzer(program).run()
