"""Expression-temporary register allocation with spilling.

The code generator evaluates expression trees into *temporaries*. Each
temporary lives either in a caller-saved register or in a frame spill slot;
when the register pool runs dry, the oldest register-resident temporary is
spilled. Around calls every live temporary is forced to its slot (the
callee may clobber all caller-saved registers).

Scalar variables that semantic analysis homes in callee-saved registers are
handled as *borrowed* temporaries: they occupy no pool register, are never
spilled (callee-saved survive calls), and are read-only to the expression
evaluator.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.lang.errors import CompileError

INT_TEMP_REGS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9")
FP_TEMP_REGS = ("f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11")

INT_SAVED_REGS = ("s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7")
FP_SAVED_REGS = ("f20", "f21", "f22", "f23", "f24", "f25", "f26", "f27")

INT_ARG_REGS = ("a0", "a1", "a2", "a3")
FP_ARG_REGS = ("f12", "f13", "f14", "f15")


class Temp:
    """One expression temporary."""

    __slots__ = ("kind", "reg", "slot", "borrowed")

    def __init__(
        self,
        kind: str,
        reg: Optional[str] = None,
        slot: Optional[int] = None,
        borrowed: bool = False,
    ):
        self.kind = kind  # "int" | "float"
        self.reg = reg
        self.slot = slot
        self.borrowed = borrowed

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Temp({self.kind}, reg={self.reg}, slot={self.slot}, borrowed={self.borrowed})"


class TempAllocator:
    """Pool of expression temporaries for one function body.

    Args:
        emit: callback appending one assembly line.
        alloc_slot: callback returning a fresh frame word offset.
        free_slot: callback returning a slot to the free pool.
    """

    def __init__(
        self,
        emit: Callable[[str], None],
        alloc_slot: Callable[[], int],
        free_slot: Callable[[int], None],
        int_pool: Sequence[str] = INT_TEMP_REGS,
        fp_pool: Sequence[str] = FP_TEMP_REGS,
    ):
        self._emit = emit
        self._alloc_slot = alloc_slot
        self._free_slot = free_slot
        self._free = {"int": list(int_pool), "float": list(fp_pool)}
        #: live owned temporaries, oldest first (spill victims).
        self.live: List[Temp] = []

    # -- acquisition -------------------------------------------------------

    def acquire(self, kind: str, keep: Sequence[Temp] = ()) -> Temp:
        """A fresh temporary with a register.

        ``keep`` lists temporaries whose registers must stay resident while
        satisfying this request (operands whose register names the caller
        already holds).
        """
        temp = Temp(kind, reg=self._take_reg(kind, keep))
        self.live.append(temp)
        return temp

    def borrow(self, kind: str, reg: str) -> Temp:
        """A read-only view of a callee-saved home register."""
        return Temp(kind, reg=reg, borrowed=True)

    def _take_reg(self, kind: str, keep: Sequence[Temp] = ()) -> str:
        pool = self._free[kind]
        if pool:
            return pool.pop(0)
        victim = self._oldest_in_register(kind, keep)
        if victim is None:
            raise CompileError(f"expression too complex: no spillable {kind} temporary")
        self._spill(victim)
        return pool.pop(0)

    def _oldest_in_register(self, kind: str, keep: Sequence[Temp] = ()) -> Optional[Temp]:
        protected = set(id(temp) for temp in keep)
        for temp in self.live:
            if temp.kind == kind and temp.reg is not None and id(temp) not in protected:
                return temp
        return None

    # -- spilling ------------------------------------------------------------

    def _spill(self, temp: Temp) -> None:
        if temp.slot is None:
            temp.slot = self._alloc_slot()
        store = "sw" if temp.kind == "int" else "sf"
        self._emit(f"{store} {temp.reg}, {temp.slot}(sp)")
        self._free[temp.kind].append(temp.reg)
        temp.reg = None

    def spill_live(self, exclude: Sequence[Temp] = ()) -> None:
        """Force every live owned temporary (except ``exclude``) to memory;
        used before calls and before expression-internal branches."""
        keep = set(id(temp) for temp in exclude)
        for temp in self.live:
            if temp.reg is not None and id(temp) not in keep:
                self._spill(temp)

    def ensure(self, temp: Temp, keep: Sequence[Temp] = ()) -> str:
        """Make sure ``temp`` is register-resident; returns the register.

        ``keep`` protects other temporaries' registers from being chosen as
        the spill victim for this reload.
        """
        if temp.reg is not None:
            return temp.reg
        temp.reg = self._take_reg(temp.kind, keep)
        load = "lw" if temp.kind == "int" else "lf"
        self._emit(f"{load} {temp.reg}, {temp.slot}(sp)")
        return temp.reg

    # -- release ---------------------------------------------------------------

    def release(self, temp: Temp) -> None:
        """Return a temporary's resources to the pools."""
        if temp.borrowed:
            return
        if temp.reg is not None:
            self._free[temp.kind].append(temp.reg)
            temp.reg = None
        if temp.slot is not None:
            self._free_slot(temp.slot)
            temp.slot = None
        self.live.remove(temp)

    def assert_drained(self, where: str) -> None:
        """Invariant check: no temporaries may outlive a statement."""
        if self.live:  # pragma: no cover - indicates a codegen bug
            raise CompileError(f"internal: {len(self.live)} temporaries leaked at {where}")
