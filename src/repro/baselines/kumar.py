"""Kumar-style statement-granularity parallelism analysis.

Kumar (IEEE ToC 1988) instrumented FORTRAN programs so that each *source
statement* is one unit-time node of the dependency graph. The paper
contrasts Paragraph with this: placing machine instructions instead of
statements gives precise control over operation latencies and exposes
parallelism *within* statements.

This module reconstructs Kumar's granularity from our traces: the MiniC
compiler tags every instruction with its source-statement id (``.stmt``
directives -> the record ``aux`` field), and here a maximal run of
consecutive records with one statement id becomes a single unit-latency
node. Locations read before being written within the run are the node's
inputs; every location the run writes is an output. Benchmarks compare the
statement-level available parallelism against Paragraph's instruction-level
numbers on identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import AnalysisConfig, CONSERVATIVE
from repro.core.profile import ParallelismProfile
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap


@dataclass
class StatementLevelResult:
    """Statement-granularity analysis summary."""

    statements_placed: int
    instructions_placed: int
    critical_path_length: int
    profile: ParallelismProfile

    @property
    def average_parallelism(self) -> float:
        """Statement instances per DDG level."""
        if self.critical_path_length == 0:
            return 0.0
        return self.statements_placed / self.critical_path_length

    @property
    def mean_statement_size(self) -> float:
        """Instructions per statement instance."""
        if self.statements_placed == 0:
            return 0.0
        return self.instructions_placed / self.statements_placed


def statement_parallelism(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
) -> StatementLevelResult:
    """Analyze at statement granularity (unit latency per statement).

    Only the syscall policy of ``config`` is honoured (Kumar's model has
    no storage-dependency or window switches; renaming is implicitly full,
    matching his dataflow formulation).
    """
    if config is None:
        config = AnalysisConfig()
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)
    conservative = config.syscall_policy == CONSERVATIVE
    syscall = int(OpClass.SYSCALL)

    level = {}
    profile = ParallelismProfile()
    floor = 0
    deepest = -1
    statements = 0
    instructions = 0

    group_id = None
    group_reads = []
    group_writes = set()
    group_size = 0

    def flush_group():
        nonlocal statements, deepest, group_size
        if group_size == 0:
            return
        available = floor - 1
        for src in group_reads:
            src_level = level.get(src)
            if src_level is None:
                level[src] = floor - 1
            elif src_level > available:
                available = src_level
        node_level = available + 1
        statements += 1
        profile.add(node_level)
        if node_level > deepest:
            deepest = node_level
        for dest in group_writes:
            level[dest] = node_level
        group_reads.clear()
        group_writes.clear()
        group_size = 0

    for record in trace:
        opclass = record[0]
        if opclass not in PLACED_CLASSES:
            continue
        if opclass == syscall:
            flush_group()
            group_id = None
            if not conservative:
                continue
            node_level = max(deepest + 1, floor)
            statements += 1
            profile.add(node_level)
            if node_level > deepest:
                deepest = node_level
            floor = node_level + 1
            for dest in record[2]:
                level[dest] = node_level
            continue
        stmt = record[4]
        if stmt != group_id:
            flush_group()
            group_id = stmt
        instructions += 1
        group_size += 1
        for src in record[1]:
            if src not in group_writes:
                group_reads.append(src)
        for dest in record[2]:
            group_writes.add(dest)
    flush_group()
    return StatementLevelResult(statements, instructions, deepest + 1, profile)
