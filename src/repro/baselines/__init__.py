"""Prior-work baseline analyzers the paper positions Paragraph against."""

from repro.baselines.average_only import AverageOnlyResult, average_parallelism
from repro.baselines.kumar import StatementLevelResult, statement_parallelism

__all__ = [
    "AverageOnlyResult",
    "average_parallelism",
    "StatementLevelResult",
    "statement_parallelism",
]
