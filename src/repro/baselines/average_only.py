"""Average-parallelism-only estimator (prior work, paper section 3.1).

The studies the paper cites (Tjaden & Flynn 1970, Nicolau & Fisher 1984,
Wall 1991, Butler et al. 1991, Smith et al. 1991) track only the critical
path length and divide the instruction count by it — they never materialize
the parallelism profile, value lifetimes, or sharing. This module
implements that minimal analysis to (a) position Paragraph against it and
(b) serve as a cross-check: its critical path must equal Paragraph's under
the same constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import AnalysisConfig
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap


@dataclass
class AverageOnlyResult:
    """What the average-only studies report."""

    placed_operations: int
    critical_path_length: int

    @property
    def average_parallelism(self) -> float:
        """Instructions divided by critical path length."""
        if self.critical_path_length == 0:
            return 0.0
        return self.placed_operations / self.critical_path_length


def average_parallelism(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
) -> AverageOnlyResult:
    """Critical path + average parallelism, nothing else.

    A deliberately separate, minimal implementation (not a call into
    Paragraph) so the two can validate each other. Supports the renaming
    switches and conservative/optimistic syscalls; no window, profile,
    lifetimes, resources, or branch models.
    """
    if config is None:
        config = AnalysisConfig()
    if config.window_size is not None or config.resources is not None:
        raise ValueError("average-only baseline models no window or resources")
    if config.memory_disambiguation != "perfect":
        raise ValueError("average-only baseline assumes perfect disambiguation")
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)

    latency = config.latency.as_list()
    conservative = config.syscall_policy == "conservative"
    stack_bound = 64 + segments.stack_floor
    rename_regs = config.rename_registers
    rename_stack = config.rename_stack
    rename_data = config.rename_data

    level = {}  # location -> creation level of current value
    last_use = {}  # location -> deepest consumer level (non-renamed only)
    floor = 0
    deepest = -1
    placed = 0
    syscall = int(OpClass.SYSCALL)

    for record in trace:
        opclass = record[0]
        if opclass not in PLACED_CLASSES:
            continue
        if opclass == syscall:
            if not conservative:
                continue
            value_level = max(deepest + 1, floor - 1 + latency[syscall])
            placed += 1
            deepest = max(deepest, value_level)
            floor = value_level + 1
            for dest in record[2]:
                level[dest] = value_level
                last_use.pop(dest, None)
            continue
        top = latency[opclass]
        available = floor - 1
        for src in record[1]:
            src_level = level.get(src)
            if src_level is None:
                level[src] = floor - 1
            elif src_level > available:
                available = src_level
        value_level = available + top
        for dest in record[2]:
            if dest < 64:
                renamed = rename_regs
            elif dest >= stack_bound:
                renamed = rename_stack
            else:
                renamed = rename_data
            if not renamed:
                war = last_use.get(dest)
                if war is not None and war + 1 > value_level:
                    value_level = war + 1
        placed += 1
        if value_level > deepest:
            deepest = value_level
        for src in record[1]:
            if last_use.get(src, -1) < value_level:
                last_use[src] = value_level
        for dest in record[2]:
            level[dest] = value_level
            last_use.pop(dest, None)
    return AverageOnlyResult(placed, deepest + 1)
