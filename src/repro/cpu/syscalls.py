"""System-call layer.

The syscall number travels in ``v0``; arguments in ``a0`` / ``f12``. This is
a deliberately small, deterministic set — enough for the workloads to do I/O
(so that the *System Calls Stall* switch has something to firewall) and to
allocate heap storage.

=====  ============  =========================================
#      Name          Effect
=====  ============  =========================================
1      print_int     append ``a0`` to the output list
2      print_float   append ``f12`` to the output list
5      read_int      pop next int input -> ``v0``
6      read_float    pop next float input -> ``f0``
9      sbrk          allocate ``a0`` heap words -> ``v0``
10     exit          stop execution (code ``a0``)
11     print_char    append ``chr(a0)`` to the output list
=====  ============  =========================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cpu.errors import MachineError, ProgramExit
from repro.cpu.memory import Memory
from repro.isa.registers import REG_A0, REG_V0, fp_reg

SYS_PRINT_INT = 1
SYS_PRINT_FLOAT = 2
SYS_READ_INT = 5
SYS_READ_FLOAT = 6
SYS_SBRK = 9
SYS_EXIT = 10
SYS_PRINT_CHAR = 11

FP_ARG = fp_reg(12)
FP_RESULT = fp_reg(0)


class SyscallHandler:
    """Dispatches system calls against machine state."""

    def __init__(
        self,
        int_inputs: Optional[Sequence[int]] = None,
        float_inputs: Optional[Sequence[float]] = None,
    ):
        self._int_inputs = list(int_inputs or [])
        self._float_inputs = list(float_inputs or [])
        self._int_pos = 0
        self._float_pos = 0
        self.output: List[object] = []

    def dispatch(self, regs: List, memory: Memory) -> None:
        """Execute the syscall selected by ``v0``. May raise ProgramExit."""
        number = regs[REG_V0]
        if number == SYS_PRINT_INT:
            self.output.append(int(regs[REG_A0]))
        elif number == SYS_PRINT_FLOAT:
            self.output.append(float(regs[FP_ARG]))
        elif number == SYS_READ_INT:
            if self._int_pos >= len(self._int_inputs):
                raise MachineError("read_int: input exhausted")
            regs[REG_V0] = self._int_inputs[self._int_pos]
            self._int_pos += 1
        elif number == SYS_READ_FLOAT:
            if self._float_pos >= len(self._float_inputs):
                raise MachineError("read_float: input exhausted")
            regs[FP_RESULT] = self._float_inputs[self._float_pos]
            self._float_pos += 1
        elif number == SYS_SBRK:
            regs[REG_V0] = memory.sbrk(int(regs[REG_A0]))
        elif number == SYS_EXIT:
            raise ProgramExit(int(regs[REG_A0]))
        elif number == SYS_PRINT_CHAR:
            self.output.append(chr(int(regs[REG_A0]) & 0x10FFFF))
        else:
            raise MachineError(f"unknown syscall number: {number}")

    def writes_register(self, number: int) -> bool:
        """True if the syscall writes ``v0``/``f0`` (used for trace dests)."""
        return number in (SYS_READ_INT, SYS_READ_FLOAT, SYS_SBRK)
