"""Tracing CPU simulator (the Pixie/DECstation substitute)."""

from repro.cpu.errors import MachineError, ProgramExit
from repro.cpu.machine import Machine, RunResult, run_and_trace
from repro.cpu.memory import Memory
from repro.cpu.syscalls import SyscallHandler

__all__ = [
    "MachineError",
    "ProgramExit",
    "Machine",
    "RunResult",
    "run_and_trace",
    "Memory",
    "SyscallHandler",
]
