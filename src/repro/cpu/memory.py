"""Sparse word-addressed memory with segment bookkeeping.

Memory is a ``dict`` from word address to value (int or float). Reads of
untouched words return 0 — the analyzer independently treats first-touch
locations as pre-existing values, so simulator and analyzer agree on
initial-state semantics.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.cpu.errors import MachineError
from repro.isa.layout import STACK_SEGMENT_FLOOR
from repro.trace.segments import SegmentMap

Value = Union[int, float]


class Memory:
    """Simulated memory plus the heap break for ``sbrk``."""

    def __init__(self, program_data: Dict[int, Value], data_end: int, segments: SegmentMap):
        self.words: Dict[int, Value] = dict(program_data)
        self.segments = segments
        #: Next free heap word; the heap begins where static data ends.
        self.brk = data_end

    def sbrk(self, count: int) -> int:
        """Allocate ``count`` words on the heap, returning their base address."""
        if count < 0:
            raise MachineError(f"sbrk of negative size: {count}")
        base = self.brk
        if base + count > STACK_SEGMENT_FLOOR:
            raise MachineError("heap exhausted (collides with stack segment)")
        self.brk += count
        return base

    def load(self, address: int) -> Value:
        """Read one word (0 if untouched)."""
        if address < 0:
            raise MachineError(f"negative address: {address}")
        return self.words.get(address, 0)

    def store(self, address: int, value: Value) -> None:
        """Write one word."""
        if address < 0:
            raise MachineError(f"negative address: {address}")
        self.words[address] = value
