"""The tracing interpreter.

The machine *compiles* each static instruction into a Python closure at load
time; executing one dynamic instruction is one closure call returning the
next pc. Trace records for register-register operations are built once at
compile time (they are fully static) and appended by reference, which keeps
tracing overhead low on hot loops.

The simulator plays the role of the paper's DECstation + Pixie combination:
it runs the program and emits the serial trace that Paragraph analyzes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.asm.program import Program
from repro.cpu.errors import MachineError, ProgramExit
from repro.cpu.memory import Memory
from repro.cpu.syscalls import (
    SYS_READ_FLOAT,
    SYS_READ_INT,
    SYS_SBRK,
    SyscallHandler,
)
from repro.isa.layout import STACK_TOP_WORDS
from repro.isa.locations import MEM_BASE
from repro.isa.opclasses import OpClass
from repro.isa.registers import FP_REG_BASE, REG_SP, REG_V0, fp_reg
from repro.trace.buffer import TraceBuffer
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

_IALU = int(OpClass.IALU)
_IMUL = int(OpClass.IMUL)
_IDIV = int(OpClass.IDIV)
_FADD = int(OpClass.FADD)
_FMUL = int(OpClass.FMUL)
_FDIV = int(OpClass.FDIV)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)
_JUMP = int(OpClass.JUMP)

_FP_V0 = fp_reg(0)


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise MachineError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _trunc_rem(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _trunc_div,
    "rem": _trunc_rem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b),
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "sra": lambda a, b: a >> (b & 31),
    "slt": lambda a, b: 1 if a < b else 0,
    "sle": lambda a, b: 1 if a <= b else 0,
    "sgt": lambda a, b: 1 if a > b else 0,
    "sge": lambda a, b: 1 if a >= b else 0,
    "seq": lambda a, b: 1 if a == b else 0,
    "sne": lambda a, b: 1 if a != b else 0,
}

_INT_IMMOPS = {
    "addi": lambda a, b: a + b,
    "move": lambda a, b: a,
    "muli": lambda a, b: a * b,
    "andi": lambda a, b: a & b,
    "ori": lambda a, b: a | b,
    "xori": lambda a, b: a ^ b,
    "slti": lambda a, b: 1 if a < b else 0,
    "slli": lambda a, b: a << (b & 31),
    "srli": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "srai": lambda a, b: a >> (b & 31),
}


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise MachineError("floating-point division by zero")
    return a / b


def _fsqrt(a: float) -> float:
    if a < 0.0:
        raise MachineError(f"sqrt of negative value: {a}")
    return math.sqrt(a)


_FP_BINOPS = {
    "fadd": (_FADD, lambda a, b: a + b),
    "fsub": (_FADD, lambda a, b: a - b),
    "fmul": (_FMUL, lambda a, b: a * b),
    "fdiv": (_FDIV, _fdiv),
}

_FP_UNOPS = {
    "fsqrt": (_FDIV, _fsqrt),
    "fneg": (_IALU, lambda a: -a),
    "fabs": (_IALU, lambda a: abs(a)),
    "fmov": (_IALU, lambda a: a),
}

_FP_COMPARES = {
    "flt": lambda a, b: 1 if a < b else 0,
    "fle": lambda a, b: 1 if a <= b else 0,
    "feq": lambda a, b: 1 if a == b else 0,
}

_BRANCH_TESTS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blez": lambda a, b: a <= 0,
    "bgtz": lambda a, b: a > 0,
    "bltz": lambda a, b: a < 0,
    "bgez": lambda a, b: a >= 0,
    "beqz": lambda a, b: a == 0,
    "bnez": lambda a, b: a != 0,
}


@dataclass
class RunResult:
    """Outcome of one simulation."""

    executed: int
    reason: str  # "exit" | "limit" | "end"
    exit_code: Optional[int]
    output: List[object] = field(default_factory=list)


class Machine:
    """Executes a :class:`~repro.asm.program.Program`, emitting a trace.

    Args:
        program: the assembled program.
        int_inputs / float_inputs: values consumed by the read syscalls.
        trace: when False, no records are collected (fast functional run).
        segments: address-space description recorded with the trace.
    """

    def __init__(
        self,
        program: Program,
        int_inputs: Optional[Sequence[int]] = None,
        float_inputs: Optional[Sequence[float]] = None,
        trace: bool = True,
        segments: SegmentMap = DEFAULT_SEGMENTS,
    ):
        self.program = program
        self.segments = segments
        self.regs: List = [0] * FP_REG_BASE + [0.0] * 32
        self.regs[REG_SP] = STACK_TOP_WORDS
        self.memory = Memory(program.data, program.data_end, segments)
        self.syscalls = SyscallHandler(int_inputs, float_inputs)
        self.trace = TraceBuffer(segments=segments) if trace else None
        self._tracing = trace
        self._records = self.trace.records if trace else None
        self._code = [self._compile(i, instr) for i, instr in enumerate(program.instructions)]

    # -- execution ------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Run from the program entry until exit, falling off the end, or
        hitting ``max_instructions``."""
        code = self._code
        size = len(code)
        pc = self.program.entry
        executed = 0
        limit = max_instructions if max_instructions is not None else float("inf")
        try:
            while 0 <= pc < size and executed < limit:
                pc = code[pc]()
                executed += 1
        except ProgramExit as exit_info:
            return RunResult(executed + 1, "exit", exit_info.code, self.syscalls.output)
        except MachineError as err:
            raise MachineError(f"{err} (after {executed} instructions)", pc) from err
        reason = "limit" if executed >= limit else "end"
        return RunResult(executed, reason, None, self.syscalls.output)

    # -- compilation ----------------------------------------------------

    def _compile(self, index, instr):
        """Build the closure implementing instruction ``index``."""
        regs = self.regs
        mem = self.memory.words
        records = self._records
        append = records.append if records is not None else None
        tracing = self._tracing
        op = instr.op
        d, s1, s2 = instr.dst, instr.src1, instr.src2
        imm, tgt, stmt = instr.imm, instr.target, instr.stmt_id
        nxt = index + 1

        if d is not None and d == 0 and op not in ("sw", "sf"):
            raise MachineError(f"instruction writes r0: {instr}", index)

        if op in _INT_BINOPS or op in _FP_BINOPS or op in _FP_COMPARES:
            if op in _INT_BINOPS:
                klass, fn = (
                    _IMUL if op == "mul" else _IDIV if op in ("div", "rem") else _IALU,
                    _INT_BINOPS[op],
                )
            elif op in _FP_BINOPS:
                klass, fn = _FP_BINOPS[op]
            else:
                klass, fn = _IALU, _FP_COMPARES[op]
            rec = (klass, (s1, s2), (d,), 0, stmt)
            if tracing:
                def step():
                    regs[d] = fn(regs[s1], regs[s2])
                    append(rec)
                    return nxt
            else:
                def step():
                    regs[d] = fn(regs[s1], regs[s2])
                    return nxt
            return step

        if op in _INT_IMMOPS:
            fn = _INT_IMMOPS[op]
            klass = _IMUL if op == "muli" else _IALU
            rec = (klass, (s1,), (d,), 0, stmt)
            if tracing:
                def step():
                    regs[d] = fn(regs[s1], imm)
                    append(rec)
                    return nxt
            else:
                def step():
                    regs[d] = fn(regs[s1], imm)
                    return nxt
            return step

        if op in _FP_UNOPS or op in ("cvtif", "cvtfi"):
            if op in _FP_UNOPS:
                klass, fn = _FP_UNOPS[op]
            elif op == "cvtif":
                klass, fn = _FADD, float
            else:
                klass, fn = _FADD, lambda a: math.trunc(a)
            rec = (klass, (s1,), (d,), 0, stmt)
            if tracing:
                def step():
                    regs[d] = fn(regs[s1])
                    append(rec)
                    return nxt
            else:
                def step():
                    regs[d] = fn(regs[s1])
                    return nxt
            return step

        if op in ("li", "lfi", "la"):
            value = float(imm) if op == "lfi" else imm
            rec = (_IALU, (), (d,), 0, stmt)
            if tracing:
                def step():
                    regs[d] = value
                    append(rec)
                    return nxt
            else:
                def step():
                    regs[d] = value
                    return nxt
            return step

        if op in ("lw", "lf"):
            default = 0.0 if op == "lf" else 0
            if s1 == 0:  # absolute address, zero register base
                addr = imm
                rec = (_LOAD, (MEM_BASE + addr,), (d,), 0, stmt)
                if tracing:
                    def step():
                        regs[d] = mem.get(addr, default)
                        append(rec)
                        return nxt
                else:
                    def step():
                        regs[d] = mem.get(addr, default)
                        return nxt
            else:
                if tracing:
                    def step():
                        addr = regs[s1] + imm
                        if addr < 0:
                            raise MachineError(f"load from negative address {addr}", index)
                        regs[d] = mem.get(addr, default)
                        append((_LOAD, (s1, MEM_BASE + addr), (d,), 0, stmt))
                        return nxt
                else:
                    def step():
                        addr = regs[s1] + imm
                        if addr < 0:
                            raise MachineError(f"load from negative address {addr}", index)
                        regs[d] = mem.get(addr, default)
                        return nxt
            return step

        if op in ("sw", "sf"):
            if s1 == 0:
                addr = imm
                rec = (_STORE, (d,), (MEM_BASE + addr,), 0, stmt)
                if tracing:
                    def step():
                        mem[addr] = regs[d]
                        append(rec)
                        return nxt
                else:
                    def step():
                        mem[addr] = regs[d]
                        return nxt
            else:
                if tracing:
                    def step():
                        addr = regs[s1] + imm
                        if addr < 0:
                            raise MachineError(f"store to negative address {addr}", index)
                        mem[addr] = regs[d]
                        append((_STORE, (d, s1), (MEM_BASE + addr,), 0, stmt))
                        return nxt
                else:
                    def step():
                        addr = regs[s1] + imm
                        if addr < 0:
                            raise MachineError(f"store to negative address {addr}", index)
                        mem[addr] = regs[d]
                        return nxt
            return step

        if op in _BRANCH_TESTS:
            test = _BRANCH_TESTS[op]
            srcs = (s1, s2) if s2 is not None else (s1,)
            rec_taken = (_BRANCH, srcs, (), FLAG_CONDITIONAL | FLAG_TAKEN, index)
            rec_fall = (_BRANCH, srcs, (), FLAG_CONDITIONAL, index)
            if tracing:
                def step():
                    if test(regs[s1], regs[s2] if s2 is not None else 0):
                        append(rec_taken)
                        return tgt
                    append(rec_fall)
                    return nxt
            else:
                def step():
                    if test(regs[s1], regs[s2] if s2 is not None else 0):
                        return tgt
                    return nxt
            return step

        if op == "j":
            rec = (_JUMP, (), (), 0, index)
            if tracing:
                def step():
                    append(rec)
                    return tgt
            else:
                def step():
                    return tgt
            return step

        if op == "jal":
            rec = (_JUMP, (), (), 0, index)
            if tracing:
                def step():
                    regs[31] = nxt
                    append(rec)
                    return tgt
            else:
                def step():
                    regs[31] = nxt
                    return tgt
            return step

        if op == "jr":
            rec = (_JUMP, (s1,), (), 0, index)
            size = len(self.program.instructions)
            if tracing:
                def step():
                    target = regs[s1]
                    if not isinstance(target, int) or not 0 <= target <= size:
                        raise MachineError(f"jr to invalid target {target!r}", index)
                    append(rec)
                    return target
            else:
                def step():
                    target = regs[s1]
                    if not isinstance(target, int) or not 0 <= target <= size:
                        raise MachineError(f"jr to invalid target {target!r}", index)
                    return target
            return step

        if op == "syscall":
            dispatch = self.syscalls.dispatch
            memory = self.memory
            if tracing:
                def step():
                    number = regs[REG_V0]
                    if number == SYS_READ_INT or number == SYS_SBRK:
                        dests = (REG_V0,)
                    elif number == SYS_READ_FLOAT:
                        dests = (_FP_V0,)
                    else:
                        dests = ()
                    append((_SYSCALL, (REG_V0,), dests, 0, stmt))
                    dispatch(regs, memory)
                    return nxt
            else:
                def step():
                    dispatch(regs, memory)
                    return nxt
            return step

        if op == "nop":
            def step():
                return nxt
            return step

        raise MachineError(f"cannot compile opcode {op!r}", index)


def run_and_trace(
    program: Program,
    int_inputs: Optional[Sequence[int]] = None,
    float_inputs: Optional[Sequence[float]] = None,
    max_instructions: Optional[int] = None,
) -> tuple:
    """Convenience: run ``program`` with tracing; returns ``(result, trace)``."""
    machine = Machine(program, int_inputs=int_inputs, float_inputs=float_inputs, trace=True)
    result = machine.run(max_instructions=max_instructions)
    return result, machine.trace
