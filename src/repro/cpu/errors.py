"""Simulator diagnostics and control-flow exceptions."""

from __future__ import annotations


class MachineError(Exception):
    """A runtime fault in the simulated program (bad address, divide by
    zero, unaligned control transfer, ...)."""

    def __init__(self, message: str, pc: int = -1):
        self.pc = pc
        if pc >= 0:
            message = f"pc={pc}: {message}"
        super().__init__(message)


class ProgramExit(Exception):
    """Raised internally when the program executes the exit syscall."""

    def __init__(self, code: int = 0):
        self.code = code
        super().__init__(f"program exited with code {code}")
