"""MIPS-like instruction-set definition used by the tracing simulator.

This package defines the target ISA of the reproduction: a word-addressed
RISC with 32 integer and 32 floating-point registers, the operation classes
of the paper's Table 1, and a compact storage-location encoding shared by the
trace layer and the Paragraph analyzer.
"""

from repro.isa.instruction import Instruction
from repro.isa.locations import (
    MEM_BASE,
    NUM_LOCATIONS_RESERVED,
    format_location,
    is_memory_location,
    is_register_location,
    memory_address,
    memory_location,
)
from repro.isa.opcodes import OPCODES, OpSpec, opcode_spec
from repro.isa.opclasses import PLACED_CLASSES, OpClass
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_FP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    fp_reg,
    int_reg,
    parse_register,
    register_name,
)

__all__ = [
    "Instruction",
    "MEM_BASE",
    "NUM_LOCATIONS_RESERVED",
    "format_location",
    "is_memory_location",
    "is_register_location",
    "memory_address",
    "memory_location",
    "OPCODES",
    "OpSpec",
    "opcode_spec",
    "PLACED_CLASSES",
    "OpClass",
    "FP_REG_BASE",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "REG_FP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "fp_reg",
    "int_reg",
    "parse_register",
    "register_name",
]
