"""Operation classes.

Every opcode belongs to exactly one operation class. Classes serve two
purposes:

1. They index the latency table (the paper's Table 1): the class determines
   ``top``, the number of DDG levels an operation spans before the value it
   creates becomes available.
2. They decide whether a dynamic instruction is *placed* in the DDG at all.
   Branches and jumps steer control flow but create no values, so the paper
   excludes them from the DDG and from the parallelism statistics.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Latency/placement class of an operation (paper Table 1 rows)."""

    IALU = 0
    IMUL = 1
    IDIV = 2
    FADD = 3
    FMUL = 4
    FDIV = 5
    LOAD = 6
    STORE = 7
    SYSCALL = 8
    BRANCH = 9
    JUMP = 10
    NOP = 11


#: Classes whose dynamic instances become DDG nodes. Branches, jumps and nops
#: create no values and are excluded (paper section 2.2 / 4).
PLACED_CLASSES = frozenset(
    {
        OpClass.IALU,
        OpClass.IMUL,
        OpClass.IDIV,
        OpClass.FADD,
        OpClass.FMUL,
        OpClass.FDIV,
        OpClass.LOAD,
        OpClass.STORE,
        OpClass.SYSCALL,
    }
)

#: Classes that transfer control. Used by trace statistics and the
#: branch-prediction firewall models.
CONTROL_CLASSES = frozenset({OpClass.BRANCH, OpClass.JUMP})
