"""Register file definition and naming.

The ISA has 32 integer registers (``r0`` .. ``r31``) and 32 floating-point
registers (``f0`` .. ``f31``). Storage-location ids place integer registers
at 0..31 and floating-point registers at 32..63 (see
:mod:`repro.isa.locations`).

ABI conventions (a simplified MIPS o32):

========  ==========  =====================================
Register  Alias       Role
========  ==========  =====================================
r0        zero        hard-wired zero
r2..r3    v0..v1      return values / syscall number
r4..r7    a0..a3      arguments
r8..r15   t0..t7      caller-saved temporaries
r16..r23  s0..s7      callee-saved locals
r24..r25  t8..t9      caller-saved temporaries
r28       gp          global pointer (unused)
r29       sp          stack pointer
r30       fp          frame pointer
r31       ra          return address
========  ==========  =====================================
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
FP_REG_BASE = NUM_INT_REGS

REG_ZERO = 0
REG_V0 = 2
REG_V1 = 3
REG_A0 = 4
REG_A1 = 5
REG_A2 = 6
REG_A3 = 7
REG_GP = 28
REG_SP = 29
REG_FP = 30
REG_RA = 31

_ALIASES = {
    "zero": 0,
    "at": 1,
    "v0": 2,
    "v1": 3,
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    "t8": 24,
    "t9": 25,
    "k0": 26,
    "k1": 27,
    "gp": 28,
    "sp": 29,
    "fp": 30,
    "ra": 31,
}

_ALIAS_BY_NUMBER = {}
for _name, _num in _ALIASES.items():
    _ALIAS_BY_NUMBER.setdefault(_num, _name)


def int_reg(number: int) -> int:
    """Return the storage-location id of integer register ``number``."""
    if not 0 <= number < NUM_INT_REGS:
        raise ValueError(f"integer register number out of range: {number}")
    return number


def fp_reg(number: int) -> int:
    """Return the storage-location id of floating-point register ``number``."""
    if not 0 <= number < NUM_FP_REGS:
        raise ValueError(f"fp register number out of range: {number}")
    return FP_REG_BASE + number


def parse_register(text: str) -> int:
    """Parse a register name into its storage-location id.

    Accepts ``rN``/``fN`` numeric names, ABI aliases (``sp``, ``t0``...),
    and an optional leading ``$``.
    """
    name = text.lower().lstrip("$")
    if name in _ALIASES:
        return _ALIASES[name]
    if len(name) >= 2 and name[0] in "rf" and name[1:].isdigit():
        number = int(name[1:])
        return int_reg(number) if name[0] == "r" else fp_reg(number)
    raise ValueError(f"not a register name: {text!r}")


def register_name(location: int, prefer_alias: bool = True) -> str:
    """Return the assembly name for a register storage-location id."""
    if 0 <= location < NUM_INT_REGS:
        if prefer_alias and location in _ALIAS_BY_NUMBER:
            return _ALIAS_BY_NUMBER[location]
        return f"r{location}"
    if FP_REG_BASE <= location < FP_REG_BASE + NUM_FP_REGS:
        return f"f{location - FP_REG_BASE}"
    raise ValueError(f"not a register location: {location}")


def is_fp_location(location: int) -> bool:
    """True if the location id names a floating-point register."""
    return FP_REG_BASE <= location < FP_REG_BASE + NUM_FP_REGS
