"""Opcode registry.

Each opcode carries an operand *format* string that drives both the assembler
(parsing) and the simulator (operand decoding):

==========  ==========================================  ==================
Format      Operands                                    Example
==========  ==========================================  ==================
``rrr``     int rd, int rs, int rt                      ``add t0, t1, t2``
``rri``     int rd, int rs, imm                         ``addi t0, t1, 4``
``ri``      int rd, imm                                 ``li t0, 42``
``rl``      int rd, label/imm (address)                 ``la t0, table``
``fff``     fp fd, fp fs, fp ft                         ``fadd f0, f1, f2``
``ff``      fp fd, fp fs                                ``fsqrt f0, f1``
``rff``     int rd, fp fs, fp ft                        ``flt t0, f1, f2``
``fr``      fp fd, int rs                               ``cvtif f0, t1``
``rf``      int rd, fp fs                               ``cvtfi t0, f1``
``rm``      int reg, offset(int base)                   ``lw t0, 4(sp)``
``fm``      fp reg, offset(int base)                    ``lf f0, 8(sp)``
``rrb``     int rs, int rt, label                       ``beq t0, t1, L``
``rb``      int rs, label                               ``beqz t0, L``
``b``       label                                       ``j loop``
``r``       int rs                                      ``jr ra``
``n``       (none)                                      ``syscall``
==========  ==========================================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opclasses import OpClass


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    opclass: OpClass
    fmt: str
    #: True for ``rm``/``fm`` opcodes that write memory (stores).
    writes_memory: bool = False
    #: True for branch opcodes whose outcome depends on register contents
    #: (conditional); unconditional jumps are not predictable events.
    conditional: bool = False


def _spec(name, opclass, fmt, **kwargs):
    return OpSpec(name=name, opclass=opclass, fmt=fmt, **kwargs)


_SPECS = [
    # Integer ALU, three-register.
    _spec("add", OpClass.IALU, "rrr"),
    _spec("sub", OpClass.IALU, "rrr"),
    _spec("and", OpClass.IALU, "rrr"),
    _spec("or", OpClass.IALU, "rrr"),
    _spec("xor", OpClass.IALU, "rrr"),
    _spec("nor", OpClass.IALU, "rrr"),
    _spec("sll", OpClass.IALU, "rrr"),
    _spec("srl", OpClass.IALU, "rrr"),
    _spec("sra", OpClass.IALU, "rrr"),
    _spec("slt", OpClass.IALU, "rrr"),
    _spec("sle", OpClass.IALU, "rrr"),
    _spec("sgt", OpClass.IALU, "rrr"),
    _spec("sge", OpClass.IALU, "rrr"),
    _spec("seq", OpClass.IALU, "rrr"),
    _spec("sne", OpClass.IALU, "rrr"),
    # Integer multiply/divide.
    _spec("mul", OpClass.IMUL, "rrr"),
    _spec("div", OpClass.IDIV, "rrr"),
    _spec("rem", OpClass.IDIV, "rrr"),
    # Integer ALU, immediate.
    _spec("addi", OpClass.IALU, "rri"),
    _spec("andi", OpClass.IALU, "rri"),
    _spec("ori", OpClass.IALU, "rri"),
    _spec("xori", OpClass.IALU, "rri"),
    _spec("slti", OpClass.IALU, "rri"),
    _spec("slli", OpClass.IALU, "rri"),
    _spec("srli", OpClass.IALU, "rri"),
    _spec("srai", OpClass.IALU, "rri"),
    _spec("muli", OpClass.IMUL, "rri"),
    # Register/immediate moves.
    _spec("li", OpClass.IALU, "ri"),
    _spec("la", OpClass.IALU, "rl"),
    _spec("move", OpClass.IALU, "rri"),  # encoded as addi rd, rs, 0
    # Floating point.
    _spec("fadd", OpClass.FADD, "fff"),
    _spec("fsub", OpClass.FADD, "fff"),
    _spec("fmul", OpClass.FMUL, "fff"),
    _spec("fdiv", OpClass.FDIV, "fff"),
    _spec("fsqrt", OpClass.FDIV, "ff"),
    _spec("fneg", OpClass.IALU, "ff"),
    _spec("fabs", OpClass.IALU, "ff"),
    _spec("fmov", OpClass.IALU, "ff"),
    _spec("flt", OpClass.IALU, "rff"),
    _spec("fle", OpClass.IALU, "rff"),
    _spec("feq", OpClass.IALU, "rff"),
    _spec("cvtif", OpClass.FADD, "fr"),
    _spec("cvtfi", OpClass.FADD, "rf"),
    _spec("lfi", OpClass.IALU, "fi"),  # load fp immediate
    # Memory.
    _spec("lw", OpClass.LOAD, "rm"),
    _spec("sw", OpClass.STORE, "rm", writes_memory=True),
    _spec("lf", OpClass.LOAD, "fm"),
    _spec("sf", OpClass.STORE, "fm", writes_memory=True),
    # Control transfer.
    _spec("beq", OpClass.BRANCH, "rrb", conditional=True),
    _spec("bne", OpClass.BRANCH, "rrb", conditional=True),
    _spec("blez", OpClass.BRANCH, "rb", conditional=True),
    _spec("bgtz", OpClass.BRANCH, "rb", conditional=True),
    _spec("bltz", OpClass.BRANCH, "rb", conditional=True),
    _spec("bgez", OpClass.BRANCH, "rb", conditional=True),
    _spec("beqz", OpClass.BRANCH, "rb", conditional=True),
    _spec("bnez", OpClass.BRANCH, "rb", conditional=True),
    _spec("j", OpClass.JUMP, "b"),
    _spec("jal", OpClass.JUMP, "b"),
    _spec("jr", OpClass.JUMP, "r"),
    # System.
    _spec("syscall", OpClass.SYSCALL, "n"),
    _spec("nop", OpClass.NOP, "n"),
]

#: Name -> :class:`OpSpec` for every opcode in the ISA.
OPCODES = {spec.name: spec for spec in _SPECS}


def opcode_spec(name: str) -> OpSpec:
    """Look up an opcode, raising ``KeyError`` with a helpful message."""
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode: {name!r}") from None
