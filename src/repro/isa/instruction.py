"""The :class:`Instruction` container produced by the assembler.

Operands are stored in fixed slots with labels already resolved:

==========  =========================================================
Slot        Meaning by format
==========  =========================================================
``dst``     destination register location (``rrr``/``rri``/``ri``/
            ``rl``/``fff``/``ff``/``rff``/``fr``/``rf``/``fi``);
            for ``rm``/``fm`` it holds the data register (destination
            of a load, *source* of a store)
``src1``    first source register location; base register for
            ``rm``/``fm``; compared register for ``rb``; jump-target
            register for ``r``
``src2``    second source register location
``imm``     immediate (int, or float for ``fi``); memory offset in
            words for ``rm``/``fm``; resolved address for ``la``
``target``  resolved instruction index for branches/jumps
==========  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.opcodes import opcode_spec
from repro.isa.registers import register_name


@dataclass
class Instruction:
    """One static instruction with resolved operands."""

    op: str
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: Union[int, float, None] = None
    target: Optional[int] = None
    #: Source-statement id assigned by the MiniC compiler (``-1`` when the
    #: program came from hand-written assembly). Used by the Kumar-style
    #: statement-granularity baseline.
    stmt_id: int = -1
    #: Source line in the assembly text, for diagnostics.
    line: int = 0

    @property
    def spec(self):
        """The :class:`~repro.isa.opcodes.OpSpec` for this opcode."""
        return opcode_spec(self.op)

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(instr: Instruction) -> str:
    """Disassemble one instruction back to assembly syntax."""
    fmt = opcode_spec(instr.op).fmt
    op = instr.op
    if fmt == "rrr" or fmt == "fff":
        return (
            f"{op} {register_name(instr.dst)}, "
            f"{register_name(instr.src1)}, {register_name(instr.src2)}"
        )
    if fmt == "rri":
        if op == "move":  # assembled with an implicit immediate of 0
            return f"{op} {register_name(instr.dst)}, {register_name(instr.src1)}"
        return f"{op} {register_name(instr.dst)}, {register_name(instr.src1)}, {instr.imm}"
    if fmt in ("ri", "rl", "fi"):
        return f"{op} {register_name(instr.dst)}, {instr.imm}"
    if fmt in ("ff", "fr", "rf"):
        return f"{op} {register_name(instr.dst)}, {register_name(instr.src1)}"
    if fmt == "rff":
        return (
            f"{op} {register_name(instr.dst)}, "
            f"{register_name(instr.src1)}, {register_name(instr.src2)}"
        )
    if fmt in ("rm", "fm"):
        return f"{op} {register_name(instr.dst)}, {instr.imm}({register_name(instr.src1)})"
    if fmt == "rrb":
        return (
            f"{op} {register_name(instr.src1)}, "
            f"{register_name(instr.src2)}, {instr.target}"
        )
    if fmt == "rb":
        return f"{op} {register_name(instr.src1)}, {instr.target}"
    if fmt == "b":
        return f"{op} {instr.target}"
    if fmt == "r":
        return f"{op} {register_name(instr.src1)}"
    return op
