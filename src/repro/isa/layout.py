"""Memory layout of the abstract machine (word-addressed).

The address space is split into three segments; the split is what gives the
*Rename Stack* vs. *Rename Data* switches their meaning (paper section 3.2):

- **data**: globals and compiler-emitted constants, laid out from
  :data:`DATA_BASE_WORDS` upward by the assembler;
- **heap**: ``sbrk``-allocated storage, growing upward from the end of the
  data segment (classified with data as "non-stack");
- **stack**: grows downward from :data:`STACK_TOP_WORDS`; every address at or
  above :data:`STACK_SEGMENT_FLOOR` is classified as stack.
"""

#: First word address of the data segment.
DATA_BASE_WORDS = 0x1000

#: Initial stack pointer (one past the highest stack word).
STACK_TOP_WORDS = 1 << 20

#: Addresses at or above this word address belong to the stack segment.
STACK_SEGMENT_FLOOR = 1 << 19
