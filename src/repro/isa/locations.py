"""Storage-location encoding shared by traces and the analyzer.

Paragraph's live well is keyed by *storage location*: a register or a memory
word. We encode every location as a single non-negative integer so that the
analyzer's hot loop works with plain ``dict[int, ...]`` lookups:

- ``0 .. 31``   integer registers
- ``32 .. 63``  floating-point registers
- ``64 + a``    the memory word at word-address ``a``

The renaming switches classify memory locations further into *stack* and
*non-stack* (data/heap) segments; that classification is done by address
against the trace's segment map (:mod:`repro.trace.segments`), not baked into
the encoding.
"""

from __future__ import annotations

from repro.isa.registers import FP_REG_BASE, NUM_FP_REGS, register_name

#: First memory location id; everything below is a register.
MEM_BASE = FP_REG_BASE + NUM_FP_REGS

#: Number of reserved (register) location ids.
NUM_LOCATIONS_RESERVED = MEM_BASE


def memory_location(word_address: int) -> int:
    """Encode a memory word address as a storage-location id."""
    if word_address < 0:
        raise ValueError(f"negative word address: {word_address}")
    return MEM_BASE + word_address


def memory_address(location: int) -> int:
    """Decode a memory storage-location id back to its word address."""
    if location < MEM_BASE:
        raise ValueError(f"not a memory location: {location}")
    return location - MEM_BASE


def is_register_location(location: int) -> bool:
    """True if the location id names a register."""
    return 0 <= location < MEM_BASE


def is_memory_location(location: int) -> bool:
    """True if the location id names a memory word."""
    return location >= MEM_BASE


def format_location(location: int) -> str:
    """Human-readable rendering, e.g. ``t0``, ``f2``, ``mem[0x1000]``."""
    if is_register_location(location):
        return register_name(location)
    return f"mem[{memory_address(location):#x}]"
