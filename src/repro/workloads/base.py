"""Workload definition and loading."""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.asm.program import Program
from repro.cpu.machine import Machine, RunResult
from repro.lang.compiler import compile_source
from repro.trace.buffer import TraceBuffer


@dataclass
class Workload:
    """One benchmark program of the suite.

    Attributes:
        name: suite key (e.g. ``"matrix300x"``).
        analog_of: the SPEC89 benchmark this mirrors.
        category: ``"int"`` / ``"fp"`` / ``"int+fp"`` (paper Table 2 column).
        description: one-line dependency-character summary.
        source_file: MiniC file under ``repro/workloads/programs``.
        int_inputs / float_inputs: values for the read syscalls.
        expected_output_head: first few output values, used by tests to pin
            functional correctness of the simulator+compiler stack.
    """

    name: str
    analog_of: str
    category: str
    description: str
    source_file: str
    #: FORTRAN-analog workloads compile with fixed (static) frames, C
    #: analogs with dynamic sp frames — matching the source language of the
    #: SPEC original (see repro.lang.codegen).
    static_frames: bool = False
    int_inputs: Tuple[int, ...] = ()
    float_inputs: Tuple[float, ...] = ()
    expected_output_head: Tuple = ()
    _programs: dict = field(default_factory=dict, repr=False, compare=False)
    _source: Optional[str] = field(default=None, repr=False, compare=False)

    def source(self) -> str:
        """The MiniC source text."""
        if self._source is None:
            package = importlib.resources.files("repro.workloads") / "programs"
            self._source = (package / self.source_file).read_text()
        return self._source

    def program(self, optimize: bool = False) -> Program:
        """The compiled program (cached per optimization flag)."""
        if optimize not in self._programs:
            self._programs[optimize] = compile_source(
                self.source(), static_frames=self.static_frames, optimize=optimize
            )
        return self._programs[optimize]

    def run(
        self,
        max_instructions: Optional[int] = None,
        trace: bool = True,
        optimize: bool = False,
    ) -> Tuple[RunResult, Optional[TraceBuffer]]:
        """Execute, returning ``(run_result, trace_or_None)``."""
        machine = Machine(
            self.program(optimize=optimize),
            int_inputs=list(self.int_inputs),
            float_inputs=list(self.float_inputs),
            trace=trace,
        )
        result = machine.run(max_instructions=max_instructions)
        return result, machine.trace

    def trace(
        self, max_instructions: Optional[int] = None, optimize: bool = False
    ) -> TraceBuffer:
        """Execute and return just the trace (the paper analyzes the first
        N instructions of each benchmark)."""
        _, trace = self.run(max_instructions=max_instructions, optimize=optimize)
        return trace
