"""Hand-written assembly micro-kernels with analytically known parallelism.

Unlike the SPEC analogs (compiled MiniC), these are written directly in
assembly, so their dynamic dependence structure is exact and their
critical paths can be derived by hand — which makes them both teaching
examples and sharp analyzer tests:

==============  ====================================================
Kernel          Dependence structure
==============  ====================================================
``saxpy``       y[i] = a*x[i] + y[i]: iterations independent, bound
                by the loop counter recurrence
``reduction``   s += x[i]: one serial fadd chain of length N
``chase``       p = next[p]: serial load chain of length N (pure
                pointer chasing, the worst case for any machine)
``parallel8``   eight independent accumulator chains, interleaved
``fib``         naive recursive Fibonacci (dynamic sp frames by hand)
==============  ====================================================
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.cpu.machine import Machine
from repro.trace.buffer import TraceBuffer

#: Default element/iteration count baked into the sources below.
N = 256

_SAXPY = f"""
.data
x:  .space {N}
y:  .space {N}

.text
main:
    # initialize x[i] = i, y[i] = 2i (independent stores)
    li   t0, 0
init:
    la   t1, x
    add  t1, t1, t0
    sw   t0, 0(t1)
    add  t2, t0, t0
    la   t3, y
    add  t3, t3, t0
    sw   t2, 0(t3)
    addi t0, t0, 1
    slti t4, t0, {N}
    bnez t4, init
    # saxpy: y[i] = 3*x[i] + y[i]
    li   t0, 0
loop:
    la   t1, x
    add  t1, t1, t0
    lw   t2, 0(t1)
    muli t2, t2, 3
    la   t3, y
    add  t3, t3, t0
    lw   t4, 0(t3)
    add  t4, t4, t2
    sw   t4, 0(t3)
    addi t0, t0, 1
    slti t5, t0, {N}
    bnez t5, loop
    li   v0, 10
    li   a0, 0
    syscall
"""

_REDUCTION = f"""
.data
x:  .space {N}

.text
main:
    li   t0, 0
init:
    la   t1, x
    add  t1, t1, t0
    sw   t0, 0(t1)
    addi t0, t0, 1
    slti t2, t0, {N}
    bnez t2, init
    # serial reduction through f0
    lfi  f0, 0.0
    li   t0, 0
loop:
    la   t1, x
    add  t1, t1, t0
    lw   t2, 0(t1)
    cvtif f1, t2
    fadd f0, f0, f1
    addi t0, t0, 1
    slti t3, t0, {N}
    bnez t3, loop
    fmov f12, f0
    li   v0, 2
    syscall
    li   v0, 10
    li   a0, 0
    syscall
"""

_CHASE = f"""
.data
next: .space {N}

.text
main:
    # build a cycle: next[i] = (i + 1) mod N (independent stores)
    li   t0, 0
init:
    addi t1, t0, 1
    slti t2, t1, {N}
    bnez t2, store
    li   t1, 0
store:
    la   t3, next
    add  t3, t3, t0
    sw   t1, 0(t3)
    addi t0, t0, 1
    slti t4, t0, {N}
    bnez t4, init
    # chase the chain for N steps: each load depends on the last
    li   t0, 0
    li   t5, 0
loop:
    la   t1, next
    add  t1, t1, t0
    lw   t0, 0(t1)
    addi t5, t5, 1
    slti t6, t5, {N}
    bnez t6, loop
    li   v0, 10
    move a0, t0
    syscall
"""

_PARALLEL8 = f"""
.text
main:
    li   t0, 0
    li   s0, 0
    li   s1, 0
    li   s2, 0
    li   s3, 0
    li   s4, 0
    li   s5, 0
    li   s6, 0
    li   s7, 0
loop:
    addi s0, s0, 1
    addi s1, s1, 2
    addi s2, s2, 3
    addi s3, s3, 4
    addi s4, s4, 5
    addi s5, s5, 6
    addi s6, s6, 7
    addi s7, s7, 8
    addi t0, t0, 1
    slti t1, t0, {N}
    bnez t1, loop
    add  a0, s0, s7
    li   v0, 1
    syscall
    li   v0, 10
    li   a0, 0
    syscall
"""

_FIB = """
.text
main:
    li   a0, 12
    jal  fib
    move a0, v0
    li   v0, 1
    syscall
    li   v0, 10
    li   a0, 0
    syscall

# int fib(n): naive recursion, hand-managed sp frame
fib:
    slti t0, a0, 2
    beqz t0, recurse
    move v0, a0
    jr   ra
recurse:
    addi sp, sp, -3
    sw   ra, 0(sp)
    sw   s0, 1(sp)
    sw   s1, 2(sp)
    move s0, a0
    addi a0, s0, -1
    jal  fib
    move s1, v0
    addi a0, s0, -2
    jal  fib
    add  v0, v0, s1
    lw   ra, 0(sp)
    lw   s0, 1(sp)
    lw   s1, 2(sp)
    addi sp, sp, 3
    jr   ra
"""

#: name -> (source, one-line description)
MICRO_KERNELS: Dict[str, Tuple[str, str]] = {
    "saxpy": (_SAXPY, "independent vector update; counter-recurrence bound"),
    "reduction": (_REDUCTION, "one serial FADD chain of length N"),
    "chase": (_CHASE, "serial pointer-chasing load chain"),
    "parallel8": (_PARALLEL8, "eight independent accumulator chains"),
    "fib": (_FIB, "naive recursion with hand-managed stack frames"),
}


def micro_program(name: str) -> Program:
    """Assemble one micro-kernel."""
    try:
        source, _ = MICRO_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown micro kernel {name!r}; choose from {sorted(MICRO_KERNELS)}"
        ) from None
    return assemble(source)


def micro_trace(name: str, max_instructions: Optional[int] = None) -> TraceBuffer:
    """Run one micro-kernel and return its trace."""
    machine = Machine(micro_program(name))
    machine.run(max_instructions=max_instructions)
    return machine.trace
