"""SPEC-analog workload suite and hand-written micro-kernels."""

from repro.workloads.base import Workload
from repro.workloads.micro import MICRO_KERNELS, micro_program, micro_trace
from repro.workloads.suite import SUITE_NAMES, all_workloads, load_workload

__all__ = [
    "Workload",
    "SUITE_NAMES",
    "all_workloads",
    "load_workload",
    "MICRO_KERNELS",
    "micro_program",
    "micro_trace",
]
