"""The SPEC-analog workload suite (paper Table 2 stand-in).

Each entry mirrors one SPEC89 benchmark's *dependency character* — the
property the paper's experiments actually measure — as documented in the
program sources and DESIGN.md section 5.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload

_SUITE: List[Workload] = [
    Workload(
        name="cc1x",
        analog_of="cc1",
        category="int",
        description="token scan + hash table + search tree; moderate ILP, frequent syscalls",
        source_file="cc1x.mc",
        expected_output_head=(0, 1, 2, 3),
    ),
    Workload(
        name="doducx",
        analog_of="doduc",
        category="fp",
        description="per-cell Newton kernels behind calls; needs register+stack renaming",
        source_file="doducx.mc",
        expected_output_head=(0, 14, 1000, 1014),
        static_frames=True,
    ),
    Workload(
        name="eqntottx",
        analog_of="eqntott",
        category="int",
        description="independent bit-vector comparisons; registers expose most ILP",
        source_file="eqntottx.mc",
        expected_output_head=(0,),
    ),
    Workload(
        name="espressox",
        analog_of="espresso",
        category="int",
        description="cube intersections through one shared scratch row; needs data renaming",
        source_file="espressox.mc",
        expected_output_head=(0,),
    ),
    Workload(
        name="fppppx",
        analog_of="fpppp",
        category="fp",
        description="huge straight-line FP blocks over reused global scratch; every renaming level pays",
        source_file="fppppx.mc",
        expected_output_head=(0, 7),
        static_frames=True,
    ),
    Workload(
        name="matrix300x",
        analog_of="matrix300",
        category="fp",
        description="dense matmul via called inner-product kernels; stack renaming unlocks it",
        source_file="matrix300x.mc",
        expected_output_head=(0, 12),
        static_frames=True,
    ),
    Workload(
        name="naskerx",
        analog_of="nasker",
        category="fp",
        description="inline recurrences over write-once arrays; renaming-insensitive",
        source_file="naskerx.mc",
        expected_output_head=(15.965677330174172,),
        static_frames=True,
    ),
    Workload(
        name="spice2g6x",
        analog_of="spice2g6",
        category="int+fp",
        description="matrix re-stamping via calls + Gauss-Seidel recurrences; stack and data both pay",
        source_file="spice2g6x.mc",
        expected_output_head=(0.003350618268847227, 0.05445334727141996),
        static_frames=True,
    ),
    Workload(
        name="tomcatvx",
        analog_of="tomcatv",
        category="fp",
        description="Jacobi mesh relaxation via per-point kernels; stack renaming unlocks it",
        source_file="tomcatvx.mc",
        expected_output_head=(0.007999999999999119, 0.004231250000001907),
        static_frames=True,
    ),
    Workload(
        name="xlispx",
        analog_of="xlisp",
        category="int",
        description="bytecode interpreter (abstract serial machine); lowest ILP, renaming-immune",
        source_file="xlispx.mc",
        expected_output_head=(2048, 4096),
    ),
]

_BY_NAME: Dict[str, Workload] = {workload.name: workload for workload in _SUITE}

#: Suite order (alphabetical, as in the paper's tables).
SUITE_NAMES = tuple(workload.name for workload in _SUITE)


def all_workloads() -> List[Workload]:
    """Every workload, in table order."""
    return list(_SUITE)


def load_workload(name: str) -> Workload:
    """Look up one workload by suite name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {', '.join(SUITE_NAMES)}"
        ) from None
