"""Replayable counterexample artifacts.

A failing (shrunk) case is persisted as two files under the artifact
directory (``results/verify/`` by default):

- ``<stem>.pgt2`` — the shrunk trace in the standard binary trace format
  (the extension names the embedded PGT2 format; any trace tool in the
  repository reads it);
- ``<stem>.json`` — a sidecar with the case identity (root index and
  mixed seed), the full canonical configuration, the trace content
  digest, and the failure messages observed.

``paragraph verify --replay <artifact>`` (either file works) reloads the
pair and re-runs the full in-process verification on it, so a
counterexample found in CI reproduces locally from the uploaded artifact
alone — no seed hunting.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

from repro.core.config import AnalysisConfig
from repro.trace.buffer import TraceBuffer
from repro.trace.io import read_trace_file, write_trace_file

TRACE_SUFFIX = ".pgt2"
META_SUFFIX = ".json"

#: Bumped if the sidecar layout ever changes incompatibly.
ARTIFACT_FORMAT = 1


def persist_failure(
    directory: str,
    case,
    trace: TraceBuffer,
    failures: List[str],
) -> Tuple[str, str]:
    """Write the (trace, sidecar) pair for a failing case; returns their
    paths (trace first)."""
    os.makedirs(directory, exist_ok=True)
    stem = f"seed{case.seed:016x}-{case.name}"
    trace_path = os.path.join(directory, stem + TRACE_SUFFIX)
    meta_path = os.path.join(directory, stem + META_SUFFIX)
    write_trace_file(trace_path, trace)
    meta = {
        "format": ARTIFACT_FORMAT,
        "case": case.name,
        "index": case.index,
        "seed": case.seed,
        "records": len(trace),
        "trace_file": os.path.basename(trace_path),
        "trace_digest": trace.digest(),
        "config": case.config.canonical(),
        "failures": list(failures),
    }
    with open(meta_path, "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return trace_path, meta_path


def load_artifact(path: str) -> Tuple[TraceBuffer, AnalysisConfig, dict]:
    """Load a persisted counterexample from either half of the pair."""
    if path.endswith(TRACE_SUFFIX):
        meta_path = path[: -len(TRACE_SUFFIX)] + META_SUFFIX
    elif path.endswith(META_SUFFIX):
        meta_path = path
    else:
        raise ValueError(
            f"not a verify artifact (expected {TRACE_SUFFIX} or {META_SUFFIX}): {path}"
        )
    with open(meta_path) as handle:
        meta = json.load(handle)
    trace_path = os.path.join(os.path.dirname(meta_path) or ".", meta["trace_file"])
    trace = read_trace_file(trace_path)
    digest = meta.get("trace_digest")
    if digest and trace.digest() != digest:
        raise ValueError(
            f"artifact trace {trace_path} does not match the sidecar digest "
            f"({trace.digest()} != {digest})"
        )
    return trace, AnalysisConfig.from_canonical(meta["config"]), meta


def replay_artifact(path: str) -> List[str]:
    """Re-run the full verification on a persisted counterexample; returns
    the current failure list (empty = the bug no longer reproduces)."""
    from repro.verify.harness import verify_case

    trace, config, _ = load_artifact(path)
    return verify_case(trace, config)
