"""Field-wise differential comparison of analysis results.

The four production implementations promise *identical* results, with two
documented exceptions, and the oracle promises a *subset* of the fields:

- ``twopass`` reclaims live-well entries after their last use, so its
  ``peak_live_well`` is legitimately smaller — masked;
- the oracle has no live well and no firewall tally (it reports ``-1``
  sentinels) and never collects lifetimes — compared only on the fields it
  defines.

Comparison happens on :func:`~repro.engine.serialize.result_to_dict`
encodings (the same canonical form the engine's byte-identity contract
uses), so "equal" here means equal under the strictest encoding the
repository already has. The ``config`` entry is dropped — every
comparison is within one case, where the config is shared by construction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.results import AnalysisResult
from repro.engine.serialize import result_to_dict

#: Fields the oracle defines (everything else is a sentinel).
ORACLE_FIELDS = (
    "records_processed",
    "placed_operations",
    "critical_path_length",
    "profile",
    "syscalls",
    "branches",
    "mispredictions",
)

#: Per-implementation field masks: keys dropped before comparison.
MASKED_FIELDS: Dict[str, Sequence[str]] = {
    "twopass": ("peak_live_well",),
}


def result_view(result: AnalysisResult, method: str) -> dict:
    """The canonical comparison view of ``result`` for ``method``."""
    view = result_to_dict(result)
    view.pop("config", None)
    if method == "oracle":
        return {key: view[key] for key in ORACLE_FIELDS}
    for key in MASKED_FIELDS.get(method, ()):
        view.pop(key, None)
    return view


def diff_results(
    baseline_name: str,
    baseline: AnalysisResult,
    method: str,
    result: AnalysisResult,
) -> List[str]:
    """Human-readable field mismatches of ``result`` against ``baseline``
    (empty when they agree on every field ``method`` promises)."""
    expected = result_view(baseline, baseline_name)
    actual = result_view(result, method)
    mismatches = []
    for key in actual:
        if key not in expected:
            continue
        if actual[key] != expected[key]:
            mismatches.append(
                f"{method} vs {baseline_name}: {key} = {actual[key]!r}, "
                f"expected {expected[key]!r}"
            )
    return mismatches
