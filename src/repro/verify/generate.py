"""Deterministic random case generation and counterexample shrinking.

A *case* is one (trace, config) pair. Both halves are derived from a single
64-bit case seed mixed from ``sha256(root_seed : index)``, so ``verify
--seed 0 --cases 500`` enumerates the same 500 cases on every machine and
Python version, and any failure report can name the exact case by
``(seed, index)``.

The trace generator is adversarial rather than realistic: operand pools
are kept tiny (a handful of registers, four data words, four stack words,
four branch pcs) so that register reuse, write-after-read hazards, memory
aliasing across the stack/data boundary, and predictor index collisions —
precisely the conditions that distinguish the four analyzer
implementations — occur every few records instead of once per thousand.
The menu covers every record shape the analyzers accept: int/float ALU ops
with 0-3 sources, multi-destination ops, loads and stores in both
segments (with and without base registers), same-location read-then-write
in one instruction, system calls with and without operands, conditional
branches (taken and not), jumps, and nops.

Shrinking is greedy delta-debugging over the record list: repeatedly try
deleting chunks (halving the chunk size down to single records) and keep
any deletion after which the case still fails. Quadratic in the worst
case, but cases are <= ``MAX_CASE_RECORDS`` records and the predicate is a
few milliseconds, so a shrink completes in well under a second.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    OPTIMISTIC,
    PERFECT_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.branch import PREDICTOR_NAMES
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.isa.opclasses import OpClass
from repro.trace.buffer import TraceBuffer
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap
from repro.trace.synthetic import TraceBuilder

#: Upper bound on generated trace length. Kept small deliberately: the
#: verification oracle is O(n^2), and short traces shrink to crisper
#: counterexamples.
MAX_CASE_RECORDS = 40

#: Tiny operand pools (see module docstring).
_INT_REGS = (1, 2, 3, 4, 5)
_FP_REGS = (32, 33, 34)
_PCS = (0, 1, 2, 3)
_WINDOW_SIZES = (1, 2, 3, 4, 8, 16)
_INT_CLASSES = (OpClass.IALU, OpClass.IALU, OpClass.IALU, OpClass.IMUL, OpClass.IDIV)
_FP_CLASSES = (OpClass.FADD, OpClass.FMUL, OpClass.FDIV)


@dataclass(frozen=True)
class VerifyCase:
    """One generated verification case.

    Attributes:
        index: position in the ``--seed/--cases`` enumeration.
        seed: the mixed 64-bit case seed (replays this case alone).
        trace: the generated trace.
        config: the sampled analysis configuration.
    """

    index: int
    seed: int
    trace: TraceBuffer
    config: AnalysisConfig

    @property
    def name(self) -> str:
        return f"case{self.index:05d}"


def case_seed(root_seed: int, index: int) -> int:
    """The 64-bit seed of case ``index`` under ``root_seed`` (sha256-mixed
    so nearby root seeds/indices give unrelated streams)."""
    payload = f"{root_seed}:{index}".encode("ascii")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def generate_trace(rng: random.Random, segments: SegmentMap = DEFAULT_SEGMENTS) -> TraceBuffer:
    """One adversarial random trace (1..MAX_CASE_RECORDS records)."""
    builder = TraceBuilder(segments)
    data_addrs = [segments.data_base + i for i in range(4)]
    stack_addrs = [segments.stack_top - 1 - i for i in range(4)]

    def addr() -> int:
        return rng.choice(data_addrs if rng.random() < 0.5 else stack_addrs)

    def base() -> Optional[int]:
        return rng.choice(_INT_REGS) if rng.random() < 0.5 else None

    for _ in range(rng.randint(1, MAX_CASE_RECORDS)):
        roll = rng.random()
        if roll < 0.30:  # integer op, 0-3 sources (reuse-heavy pool)
            srcs = tuple(rng.choice(_INT_REGS) for _ in range(rng.randint(0, 3)))
            builder.op(rng.choice(_INT_CLASSES), (rng.choice(_INT_REGS),), srcs)
        elif roll < 0.38:  # same-register read-then-write in one instruction
            reg = rng.choice(_INT_REGS)
            builder.op(rng.choice(_INT_CLASSES), (reg,), (reg,))
        elif roll < 0.43:  # multi-destination op (divmod-style)
            dests = tuple(rng.sample(_INT_REGS, 2))
            srcs = tuple(rng.choice(_INT_REGS) for _ in range(rng.randint(0, 2)))
            builder.op(rng.choice(_INT_CLASSES), dests, srcs)
        elif roll < 0.53:  # floating point
            srcs = tuple(rng.choice(_FP_REGS) for _ in range(rng.randint(0, 2)))
            builder.op(rng.choice(_FP_CLASSES), (rng.choice(_FP_REGS),), srcs)
        elif roll < 0.66:  # load (both segments, optional base register)
            builder.load(rng.choice(_INT_REGS), addr(), base=base())
        elif roll < 0.78:  # store
            builder.store(rng.choice(_INT_REGS), addr(), base=base())
        elif roll < 0.83:  # system call, sometimes with operands
            if rng.random() < 0.4:
                builder.op(
                    OpClass.SYSCALL,
                    (rng.choice(_INT_REGS),) if rng.random() < 0.5 else (),
                    (rng.choice(_INT_REGS),) if rng.random() < 0.5 else (),
                )
            else:
                builder.syscall()
        elif roll < 0.93:  # conditional branch (tiny pc pool aliases predictors)
            builder.branch(
                rng.choice(_INT_REGS),
                taken=rng.random() < 0.6,
                pc=rng.choice(_PCS),
            )
        elif roll < 0.97:
            builder.jump(pc=rng.choice(_PCS))
        else:
            builder.op(OpClass.NOP)
    return builder.build()


def sample_config(rng: random.Random, allow_resources: bool = True) -> AnalysisConfig:
    """One random :class:`AnalysisConfig`, biased toward the corners the
    paper's experiments use but covering every switch."""
    latency_roll = rng.random()
    if latency_roll < 0.45:
        latency = LatencyTable.default()
    elif latency_roll < 0.75:
        latency = LatencyTable.unit()
    else:
        overrides = {
            opclass.name: rng.randint(1, 4)
            for opclass in rng.sample(list(OpClass), rng.randint(1, 3))
        }
        latency = LatencyTable.default().with_overrides(**overrides)

    resources = None
    if allow_resources and rng.random() < 0.15:
        if rng.random() < 0.5:
            resources = ResourceModel(universal=rng.randint(1, 3))
        else:
            resources = ResourceModel(per_class={rng.choice(list(OpClass)): rng.randint(1, 2)})

    return AnalysisConfig(
        syscall_policy=CONSERVATIVE if rng.random() < 0.6 else OPTIMISTIC,
        rename_registers=rng.random() < 0.6,
        rename_stack=rng.random() < 0.6,
        rename_data=rng.random() < 0.6,
        window_size=rng.choice(_WINDOW_SIZES) if rng.random() < 0.5 else None,
        latency=latency,
        resources=resources,
        branch_predictor=rng.choice(PREDICTOR_NAMES) if rng.random() < 0.5 else None,
        memory_disambiguation=(
            CONSERVATIVE_DISAMBIGUATION if rng.random() < 0.3 else PERFECT_DISAMBIGUATION
        ),
        collect_lifetimes=rng.random() < 0.15,
        collect_profile=rng.random() < 0.9,
    )


def generate_case(root_seed: int, index: int) -> VerifyCase:
    """Case ``index`` of the deterministic enumeration under ``root_seed``."""
    seed = case_seed(root_seed, index)
    rng = random.Random(seed)
    trace = generate_trace(rng)
    config = sample_config(rng)
    return VerifyCase(index=index, seed=seed, trace=trace, config=config)


def shrink_trace(
    trace: TraceBuffer,
    still_failing: Callable[[TraceBuffer], bool],
    min_records: int = 1,
) -> TraceBuffer:
    """Greedy delta-debugging: the smallest sub-trace (by record deletion,
    order preserved) on which ``still_failing`` still returns True.

    ``still_failing(trace)`` must be True for the input trace; the result
    is guaranteed to satisfy it too (worst case: the input comes back
    unchanged).
    """
    records: List = list(trace)
    segments = trace.segments
    chunk = max(1, len(records) // 2)
    while chunk >= 1:
        index = 0
        while index < len(records) and len(records) > min_records:
            candidate = records[:index] + records[index + chunk:]
            if len(candidate) >= min_records and still_failing(
                TraceBuffer(candidate, segments)
            ):
                records = candidate  # keep the deletion, retry same position
            else:
                index += chunk
        chunk //= 2
    return TraceBuffer(records, segments)
