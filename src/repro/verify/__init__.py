"""Property-based differential verification of the Paragraph analyzers.

Every production result in this repository hangs on one placement rule
(see DESIGN.md section 4), and after the columnar-kernel work that rule is
implemented four times: the legacy streaming analyzer, three
config-specialized kernels, and the two-pass method. This package checks
all of them against each other — and against a deliberately slow oracle
that never runs the live-well algorithm at all — on randomized traces:

- :mod:`repro.verify.oracle` — recomputes every placement level by explicit
  DDG edge construction followed by a topological longest-path pass;
- :mod:`repro.verify.generate` — deterministic seeded trace/config
  generator with greedy-deletion shrinking;
- :mod:`repro.verify.harness` — the differential + metamorphic harness
  behind ``python -m repro verify``;
- :mod:`repro.verify.artifacts` — persisted ``.pgt2`` counterexamples and
  their replay;
- :mod:`repro.verify.mutations` — deliberately buggy analyzer variants for
  the harness's own mutation smoke checks.
"""

from repro.verify.generate import generate_case, sample_config, shrink_trace
from repro.verify.harness import VerifySummary, run_verification, verify_case
from repro.verify.oracle import OracleDDG, build_oracle_ddg, oracle_analyze

__all__ = [
    "OracleDDG",
    "VerifySummary",
    "build_oracle_ddg",
    "generate_case",
    "oracle_analyze",
    "run_verification",
    "sample_config",
    "shrink_trace",
    "verify_case",
]
