"""Reference oracle: explicit DDG edges + topological longest path.

The production analyzers (streaming, columnar kernels, two-pass) all
compute placement levels *incrementally* with a live well: each record's
level is final the moment it is scanned, using running ``floor`` /
``deepest`` scalars. This oracle deliberately does neither. It makes two
passes:

1. **Edge construction** — a forward scan that records, for every dynamic
   operation, the complete set of level constraints the paper defines
   (section 2.2), as explicit weighted edges. No level is computed here;
   the scan tracks only *identities* (who produced the value at a
   location, who has consumed it, which nodes have become firewall
   sources), never levels. Where the incremental analyzers keep one scalar
   (``floor``, ``deepest``, ``mem_store_level``), the oracle keeps the
   whole set of nodes behind that scalar and emits one edge per member —
   obviously correct, quadratic, and fine for the short traces the
   verification harness generates.
2. **Longest path** — node ids are assigned in scan order and every edge
   points forward, so scan order is a topological order; one relaxation
   sweep computes each node's level as the longest constraint path ending
   at it.

Constraint edges (``u -> v`` with weight ``w`` meaning
``level(v) >= level(u) + w``; ``top`` is the latency of ``v``):

=========  ==========  ====================================================
Kind       Weight      Emitted when
=========  ==========  ====================================================
raw        top         ``v`` reads the value ``u`` created
war        1           ``v`` overwrites a value ``u`` consumed and ``v``'s
                       destination class is not renamed
fence      1           ``v`` is a conservative system call; one edge from
                       *every* previously placed node (the incremental
                       analyzers compress this to ``deepest + 1``)
firewall   top         ``u`` is any firewall source so far: a conservative
                       system call, a window-displaced node, or a
                       mispredicted-branch pseudo node (the incremental
                       analyzers compress this to ``floor - 1 + top``)
mem        top / 1     conservative disambiguation: a load behind every
                       prior store (``top``), a store behind every prior
                       memory access (``1``)
=========  ==========  ====================================================

Pseudo nodes (never placed, never counted):

- **preexist** — materialized at a location's first touch; its level
  resolves to ``floor - 1`` *at touch time* via weight-0 firewall edges,
  reproducing the frozen-at-first-touch semantics of the live well.
- **branch** — a mispredicted conditional branch; its level resolves to
  ``resolve - 1`` (raw/firewall edges weighted ``top(BRANCH) - 1``), after
  which it acts as an ordinary firewall source, reproducing
  ``raise_to(resolve)``.

Unsupported: resource models (greedy first-fit slot allocation is a
machine throttle, not a dependence — it has no longest-path form). The
harness skips the oracle for resource-constrained configurations and
cross-checks the implementations against each other instead.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.branch import make_predictor
from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.profile import ParallelismProfile
from repro.core.results import AnalysisResult
from repro.isa.locations import is_register_location, memory_address
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

#: Safety cap: the oracle is quadratic by design.
DEFAULT_MAX_RECORDS = 5_000

#: Node kinds. Only ``op`` and ``syscall`` nodes are placed operations.
KIND_OP = "op"
KIND_SYSCALL = "syscall"
KIND_PREEXIST = "preexist"
KIND_BRANCH = "branch"

_PLACED_KINDS = (KIND_OP, KIND_SYSCALL)


@dataclass
class _Node:
    """One oracle DDG node: a base constant plus in-edges."""

    kind: str
    base: int
    record_index: int
    edges: List[Tuple[int, int]] = field(default_factory=list)  # (source, weight)


class OracleDDG:
    """The materialized constraint graph plus its longest-path levels."""

    def __init__(self, nodes: List[_Node], config: AnalysisConfig, records: int,
                 syscalls: int, branches: int, mispredictions: int):
        self.nodes = nodes
        self.config = config
        self.records_processed = records
        self.syscalls = syscalls
        self.branches = branches
        self.mispredictions = mispredictions
        self.levels = self._longest_path()

    def _longest_path(self) -> List[int]:
        """One relaxation sweep in node order (a topological order: every
        edge points from a lower node id to a higher one)."""
        levels: List[int] = []
        for node in self.nodes:
            level = node.base
            for source, weight in node.edges:
                candidate = levels[source] + weight
                if candidate > level:
                    level = candidate
            levels.append(level)
        return levels

    # -- summaries ---------------------------------------------------------

    def placed_levels(self) -> List[int]:
        """Levels of placed operations, in trace order."""
        return [
            level
            for node, level in zip(self.nodes, self.levels)
            if node.kind in _PLACED_KINDS
        ]

    def placed_records(self) -> List[Tuple[int, str, int]]:
        """``(record_index, kind, level)`` per placed operation, in trace
        order — the form the metamorphic firewall-partition check reads."""
        return [
            (node.record_index, node.kind, level)
            for node, level in zip(self.nodes, self.levels)
            if node.kind in _PLACED_KINDS
        ]

    @property
    def placed_operations(self) -> int:
        return sum(1 for node in self.nodes if node.kind in _PLACED_KINDS)

    @property
    def critical_path_length(self) -> int:
        placed = self.placed_levels()
        return max(placed) + 1 if placed else 0

    def profile(self) -> ParallelismProfile:
        return ParallelismProfile(dict(Counter(self.placed_levels())))

    def to_result(self) -> AnalysisResult:
        """Summarize as an :class:`AnalysisResult`. Fields the oracle does
        not define (firewall tally, live-well peak, lifetimes) carry the
        ``-1`` / ``None`` sentinels; the harness masks them out."""
        return AnalysisResult(
            records_processed=self.records_processed,
            placed_operations=self.placed_operations,
            critical_path_length=self.critical_path_length,
            profile=self.profile() if self.config.collect_profile else None,
            syscalls=self.syscalls,
            firewalls=-1,
            branches=self.branches,
            mispredictions=self.mispredictions,
            peak_live_well=-1,
            lifetimes=None,
            config=self.config,
        )


class _Value:
    """Identity of the value currently live at a location: who produced it
    and who has consumed it. No levels."""

    __slots__ = ("producer", "consumers")

    def __init__(self, producer: int):
        self.producer = producer
        self.consumers: List[int] = []


def build_oracle_ddg(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
    max_records: int = DEFAULT_MAX_RECORDS,
) -> OracleDDG:
    """Build the oracle constraint graph for ``trace`` under ``config``.

    Raises:
        ValueError: for resource-constrained configs (unsupported, see the
            module docstring) or traces longer than ``max_records``.
    """
    if config is None:
        config = AnalysisConfig()
    if config.resources is not None and not config.resources.unconstrained:
        raise ValueError(
            "the verification oracle does not support resource models "
            "(greedy slot allocation has no longest-path form)"
        )
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)

    latency = config.latency.steps
    conservative = config.syscall_policy == CONSERVATIVE
    conservative_mem = config.memory_disambiguation == CONSERVATIVE_DISAMBIGUATION
    predictor = make_predictor(config.branch_predictor) if config.branch_predictor else None
    stack_floor = segments.stack_floor
    branch_top = latency[OpClass.BRANCH]

    def renamed(location: int) -> bool:
        if is_register_location(location):
            return config.rename_registers
        if memory_address(location) >= stack_floor:
            return config.rename_stack
        return config.rename_data

    nodes: List[_Node] = []

    def add_node(kind: str, base: int, record_index: int) -> int:
        nodes.append(_Node(kind, base, record_index))
        return len(nodes) - 1

    values: Dict[int, _Value] = {}
    placed_so_far: List[int] = []  # every placed node (fence edge sources)
    floor_sources: List[int] = []  # syscalls, displaced nodes, branch pseudos
    prior_stores: List[int] = []  # conservative disambiguation
    prior_mem_accesses: List[int] = []

    window = config.window_size
    ring: List[Optional[int]] = [None] * window if window else []
    ring_pos = 0

    records = 0
    syscalls = 0
    branches = 0
    mispredictions = 0

    def touch(location: int) -> _Value:
        """The live value at ``location``; first touches materialize a
        pre-existing value frozen at the floor of the touching record."""
        value = values.get(location)
        if value is None:
            pseudo = add_node(KIND_PREEXIST, -1, -1)
            # level(pseudo) = floor - 1 at touch time: weight-0 edges from
            # every firewall source active right now.
            nodes[pseudo].edges.extend((source, 0) for source in floor_sources)
            value = _Value(pseudo)
            values[location] = value
        return value

    for index, record in enumerate(trace):
        records += 1
        if records > max_records:
            raise ValueError(
                f"trace exceeds max_records={max_records}; the oracle is "
                "quadratic — analyze long traces with the streaming analyzer"
            )
        if ring:
            displaced = ring[ring_pos]
            if displaced is not None:
                floor_sources.append(displaced)
        opclass = OpClass(record[0])

        if opclass not in PLACED_CLASSES:
            if opclass is OpClass.BRANCH and record[3] & FLAG_CONDITIONAL:
                branches += 1
                if predictor is not None:
                    pc, actual = record[4], bool(record[3] & FLAG_TAKEN)
                    predicted = predictor.predict(pc)
                    predictor.update(pc, actual)
                    if predicted != actual:
                        mispredictions += 1
                        # Pseudo node at level resolve - 1, so that the
                        # uniform "floor = source level + 1" rule yields
                        # floor = resolve for nodes placed after it.
                        pseudo = add_node(KIND_BRANCH, branch_top - 2, index)
                        edges = nodes[pseudo].edges
                        edges.extend(
                            (source, branch_top - 1) for source in floor_sources
                        )
                        for src in record[1]:
                            value = values.get(src)  # peek: no materialization
                            if value is not None:
                                edges.append((value.producer, branch_top - 1))
                        floor_sources.append(pseudo)
            if ring:
                ring[ring_pos] = None
                ring_pos = (ring_pos + 1) % window
            continue

        if opclass is OpClass.SYSCALL:
            syscalls += 1
            if not conservative:
                if ring:
                    ring[ring_pos] = None
                    ring_pos = (ring_pos + 1) % window
                continue
            top = latency[OpClass.SYSCALL]
            node = add_node(KIND_SYSCALL, max(0, top - 1), index)
            edges = nodes[node].edges
            edges.extend((prior, 1) for prior in placed_so_far)  # deepest + 1
            edges.extend((source, top) for source in floor_sources)
            placed_so_far.append(node)
            floor_sources.append(node)
            for dest in record[2]:
                values[dest] = _Value(node)
            if ring:
                ring[ring_pos] = node
                ring_pos = (ring_pos + 1) % window
            continue

        top = latency[opclass]
        srcs, dests = record[1], record[2]
        # Materialize first touches BEFORE allocating this node: pre-exist
        # pseudo nodes must get lower ids (scan order == topological order).
        producers = [touch(src).producer for src in srcs]
        node = add_node(KIND_OP, top - 1, index)
        edges = nodes[node].edges
        for producer in producers:
            edges.append((producer, top))
        for dest in dests:
            if renamed(dest):
                continue
            old = values.get(dest)
            if old is not None:
                edges.extend((consumer, 1) for consumer in old.consumers)
        if conservative_mem:
            if opclass is OpClass.LOAD:
                edges.extend((store, top) for store in prior_stores)
            elif opclass is OpClass.STORE:
                edges.extend((access, 1) for access in prior_mem_accesses)
        edges.extend((source, top) for source in floor_sources)

        placed_so_far.append(node)
        if conservative_mem and opclass in (OpClass.LOAD, OpClass.STORE):
            prior_mem_accesses.append(node)
            if opclass is OpClass.STORE:
                prior_stores.append(node)
        for src in srcs:
            values[src].consumers.append(node)
        for dest in dests:
            values[dest] = _Value(node)
        if ring:
            ring[ring_pos] = node
            ring_pos = (ring_pos + 1) % window

    return OracleDDG(nodes, config, records, syscalls, branches, mispredictions)


def oracle_analyze(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
) -> AnalysisResult:
    """Analyze ``trace`` with the oracle; drop-in signature for
    :data:`repro.engine.jobs.METHODS` (sentinel fields per
    :meth:`OracleDDG.to_result`)."""
    return build_oracle_ddg(trace, config, segments).to_result()
