"""Deliberately buggy analyzer variants — the harness's own smoke test.

A verification harness that has never caught a bug is unverified itself.
These context managers monkeypatch a *known* off-by-one into one
implementation and restore the original on exit; tests (and ``paragraph
verify --mutate <name>``) assert the harness catches the mutant with a
shrunk, persisted counterexample. Because the patches live in this
process, mutation runs must use ``--jobs 1`` (the in-process engine
path); worker processes would import the unmutated modules.

Mutations:

- ``kernel-load-skew`` — every columnar kernel places loads one level too
  deep (the canonical off-by-one: the real kernel runs with the LOAD
  latency raised by one, which perturbs exactly the load placement term
  of the rule). Caught by the ``columnar`` vs ``legacy`` differential
  whenever a load is at or feeds the critical path.
- ``legacy-war-loss`` — the streaming analyzer forgets write-after-read
  constraints (it analyzes as if every storage class were renamed).
  Caught on any case with renaming off and a binding WAR hazard.
- ``stream-splice-skew`` — the shard stitch grafts segment summaries one
  level too shallow (``offset = floor - 1`` instead of the true floor at
  the cut). Caught by the exact-vs-sharded invariant on any case whose
  sharded run actually splices a summary with post-cut placements.
- ``vkernel-batch-skew`` — the vectorized backend's block seeding skips
  each frontier batch's first record (an off-by-one at the batch
  boundary), so that record misses its floor term. Caught by the
  cross-backend differential (``verify --focus backend``) on any case
  where a block-leading record's placement binds on the floor. A no-op
  when NumPy is absent — the backend falls back to the (unmutated)
  python kernels, so no-numpy environments must skip this self-test.

Both patch through module attributes that the call sites late-bind
(``kernels._dispatch`` resolves ``_kernel_*`` as globals per call;
:data:`repro.engine.jobs.METHODS` wrappers fetch ``analyzer.analyze`` per
call), so no reload tricks are needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace

from repro.core.config import AnalysisConfig
from repro.isa.opclasses import OpClass


def _deepened_loads(config: AnalysisConfig) -> AnalysisConfig:
    latency = config.latency
    return config.derive(
        latency=latency.with_overrides(LOAD=latency.steps[OpClass.LOAD] + 1)
    )


@contextmanager
def mutate_kernel_load_skew():
    """Columnar kernels place every load one level too deep."""
    from repro.core import kernels

    originals = {
        name: getattr(kernels, name)
        for name in ("_kernel_dataflow", "_kernel_windowed", "_kernel_generic")
    }

    def wrap(original):
        def mutant(trace, config, *rest):
            result = original(trace, _deepened_loads(config), *rest)
            result.config = config  # report under the requested config
            return result

        return mutant

    for name, original in originals.items():
        setattr(kernels, name, wrap(original))
    try:
        yield
    finally:
        for name, original in originals.items():
            setattr(kernels, name, original)


@contextmanager
def mutate_legacy_war_loss():
    """The streaming analyzer drops all write-after-read constraints."""
    from repro.core import analyzer

    original = analyzer.analyze

    def mutant(trace, config=None, segments=None):
        requested = config if config is not None else AnalysisConfig()
        bare = replace(
            requested, rename_registers=True, rename_stack=True, rename_data=True
        )
        result = original(trace, bare, segments)
        result.config = requested
        return result

    analyzer.analyze = mutant
    try:
        yield
    finally:
        analyzer.analyze = original


@contextmanager
def mutate_stream_splice_skew():
    """The shard stitch splices summaries one level too shallow."""
    from repro.core import stream

    original = stream.splice

    def mutant(fr, summary):
        fr.floor -= 1  # corrupt the cut offset the splice algebra relies on
        return original(fr, summary)

    stream.splice = mutant
    try:
        yield
    finally:
        stream.splice = original


@contextmanager
def mutate_vkernel_batch_skew():
    """The vectorized backend's seeding skips each batch's first record."""
    from repro.core import vkernels

    original = vkernels._seed_frontier_batch

    def mutant(C, recs, base):
        original(C, recs[1:], base[1:])

    vkernels._seed_frontier_batch = mutant
    try:
        yield
    finally:
        vkernels._seed_frontier_batch = original


MUTATIONS = {
    "kernel-load-skew": mutate_kernel_load_skew,
    "legacy-war-loss": mutate_legacy_war_loss,
    "stream-splice-skew": mutate_stream_splice_skew,
    "vkernel-batch-skew": mutate_vkernel_batch_skew,
}


@contextmanager
def apply_mutation(name: str):
    """Apply a named mutation for the duration of a ``with`` block."""
    try:
        factory = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {sorted(MUTATIONS)}"
        ) from None
    with factory():
        yield
