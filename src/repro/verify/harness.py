"""The differential + metamorphic verification harness.

For every generated case (see :mod:`repro.verify.generate`) the harness
runs a *plan* of analyses and checks two families of properties:

**Differential** — every implementation of the placement rule produces
the same result on the same (trace, config):

- ``legacy``  — the streaming hot loop (:mod:`repro.core.analyzer`);
- ``columnar`` — the config-specialized kernels (:mod:`repro.core.kernels`);
- ``twopass`` — the reverse-annotated method (``peak_live_well`` masked);
- ``reference`` — the readable live-well implementation;
- ``oracle`` — explicit DDG + longest path (:mod:`repro.verify.oracle`),
  skipped for resource-constrained configs.

**Metamorphic** — the paper's own invariants, checked as relations between
analyses of the *same trace* under transformed configs:

1. *renaming-monotone*: adding renaming (none -> regs -> regs+stack ->
   all) never lengthens the critical path, and never changes the placed
   operation count;
2. *window-monotone*: the critical path is non-increasing in window size
   (1 -> 4 -> 16 -> unlimited);
3. *latency-scaling*: in the pure dataflow limit, scaling every latency
   uniformly by ``k`` scales the critical path exactly by ``k``;
4. *firewall-partition*: in the oracle DDG under conservative system
   calls, each system call's level strictly separates the levels of all
   operations before it (in trace order) from all operations after it;
5. *conservation*: placed operations, record counts, syscall/branch
   tallies, and profile mass all match a direct census of the trace.

Properties 1 and 2 are skipped under resource models: greedy first-fit
slot allocation is subject to scheduling anomalies (a *relaxed* input
schedule can first-fit to a *longer* one), so pointwise monotonicity is
not guaranteed there — only the differential checks apply.

Case analyses are expressed as :class:`~repro.engine.jobs.AnalysisJob`
grids over a :class:`GeneratedTraceStore` and executed through the
existing engine pool, so ``verify --jobs 8`` parallelizes cases exactly
like experiment grids (``--jobs 1``, the default, stays in-process — the
mode mutation smoke tests require, since monkeypatched analyzers don't
cross process boundaries). Failures are re-checked in-process, shrunk by
greedy record deletion, and persisted as replayable artifacts
(:mod:`repro.verify.artifacts`).
"""

from __future__ import annotations

import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CONSERVATIVE, OPTIMISTIC, AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.results import AnalysisResult
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.buffer import TraceBuffer
from repro.trace.record import FLAG_CONDITIONAL
from repro.verify.compare import diff_results
from repro.verify.generate import VerifyCase, generate_case, shrink_trace
from repro.verify.oracle import KIND_SYSCALL, build_oracle_ddg

#: The implementation every other one is diffed against.
BASELINE_METHOD = "legacy"

#: Implementations diffed against the baseline on the case config.
DIFF_METHODS = ("columnar", "twopass", "reference")

#: The exact-vs-sharded metamorphic pair: ``stream`` re-analyzes the case
#: trace through chunked frontier streaming, ``sharded`` through the full
#: segment-summary + splice machinery (see :mod:`repro.core.stream`).
#: Both must match the baseline on *every* field — no masking — for every
#: configuration, eligible for splicing or not.
SHARD_CHECKS = (("shard:stream", "stream"), ("shard:stitch", "sharded"))

#: Window sizes of the window-monotonicity chain (None = unlimited).
WINDOW_CHAIN: Tuple[Optional[int], ...] = (1, 4, 16, None)

#: Uniform latency multipliers for the latency-scaling property.
SCALE_FACTORS = (2, 3)

_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)
_PLACED_INTS = frozenset(int(opclass) for opclass in PLACED_CLASSES)

_RENAME_STEPS = (
    (False, False, False),
    (True, False, False),
    (True, True, False),
    (True, True, True),
)


def _oracle_supported(config: AnalysisConfig) -> bool:
    return config.resources is None or config.resources.unconstrained


def _pure_dataflow(scale: int) -> AnalysisConfig:
    """The dataflow limit with every latency equal to ``scale`` (the only
    regime where latency scaling is exact — see DESIGN.md section 11)."""
    return AnalysisConfig(
        syscall_policy=OPTIMISTIC,
        latency=LatencyTable({opclass: scale for opclass in OpClass}),
        collect_profile=False,
    )


def case_plan(
    config: AnalysisConfig, focus: str = "all"
) -> List[Tuple[str, str, AnalysisConfig]]:
    """The analyses one case needs, as ``(tag, method, config)`` triples.

    ``focus="shard"`` restricts the plan to the baseline plus the
    exact-vs-sharded pair (the CI shard-equivalence gate runs many more
    cases than the full sweep could afford per case).

    ``focus="backend"`` diffs the vectorized numpy backend
    (:mod:`repro.core.vkernels`, pinned via the ``vkernel`` method)
    against the python implementations: once against the baseline on the
    case config, and pairwise against the ``columnar`` kernels across the
    rename-step x window grid (the generated cases themselves vary
    syscall policy, memory disambiguation, latency tables, and lifetime
    collection, so the product grid is covered across a sweep). Where the
    backend is ineligible or NumPy is absent, ``vkernel`` falls back to
    the python kernels and the diff degenerates to a self-check."""
    plan = [(f"diff:{BASELINE_METHOD}", BASELINE_METHOD, config)]
    if focus == "shard":
        plan.extend((tag, method, config) for tag, method in SHARD_CHECKS)
        return plan
    if focus == "backend":
        plan.append(("backend:case", "vkernel", config))
        if config.resources is None:
            for step, (regs, stack, data) in enumerate(_RENAME_STEPS):
                derived = config.derive(
                    rename_registers=regs, rename_stack=stack, rename_data=data
                )
                plan.append((f"backend:rename{step}:py", "columnar", derived))
                plan.append((f"backend:rename{step}:np", "vkernel", derived))
            for window in WINDOW_CHAIN:
                derived = config.derive(window_size=window)
                plan.append((f"backend:window{window}:py", "columnar", derived))
                plan.append((f"backend:window{window}:np", "vkernel", derived))
        return plan
    if focus != "all":
        raise ValueError(f"unknown verification focus {focus!r}")
    for tag, method in SHARD_CHECKS:
        plan.append((tag, method, config))
    for method in DIFF_METHODS:
        plan.append((f"diff:{method}", method, config))
    if _oracle_supported(config):
        plan.append(("diff:oracle", "oracle", config))
    if config.resources is None:
        for step, (regs, stack, data) in enumerate(_RENAME_STEPS):
            plan.append((
                f"rename:{step}",
                BASELINE_METHOD,
                config.derive(
                    rename_registers=regs, rename_stack=stack, rename_data=data
                ),
            ))
        for window in WINDOW_CHAIN:
            plan.append((
                f"window:{window}",
                BASELINE_METHOD,
                config.derive(window_size=window),
            ))
    plan.append(("scale:1", BASELINE_METHOD, _pure_dataflow(1)))
    for factor in SCALE_FACTORS:
        plan.append((f"scale:{factor}", BASELINE_METHOD, _pure_dataflow(factor)))
    return plan


# -- checks -----------------------------------------------------------------


def _census_failures(
    trace: TraceBuffer, config: AnalysisConfig, result: AnalysisResult
) -> List[str]:
    """Conservation: result tallies match a direct census of the trace."""
    records = syscalls = branches = placed = 0
    conservative = config.syscall_policy == CONSERVATIVE
    for record in trace:
        records += 1
        opclass = record[0]
        if opclass == _SYSCALL:
            syscalls += 1
            if conservative:
                placed += 1
        elif opclass in _PLACED_INTS:
            placed += 1
        elif opclass == _BRANCH and record[3] & FLAG_CONDITIONAL:
            branches += 1
    failures = []
    for name, want in (
        ("records_processed", records),
        ("placed_operations", placed),
        ("syscalls", syscalls),
        ("branches", branches),
    ):
        got = getattr(result, name)
        if got != want:
            failures.append(
                f"property conservation: {name} = {got}, trace census expects {want}"
            )
    if result.profile is not None:
        if result.profile.total_operations != result.placed_operations:
            failures.append(
                "property conservation: profile mass "
                f"{result.profile.total_operations} != placed operations "
                f"{result.placed_operations}"
            )
        if result.profile.depth != result.critical_path_length:
            failures.append(
                f"property conservation: profile depth {result.profile.depth} "
                f"!= critical path {result.critical_path_length}"
            )
    return failures


def _firewall_partition_failures(
    trace: TraceBuffer, config: AnalysisConfig
) -> List[str]:
    """Each conservative system call's level strictly separates every
    earlier placed operation's level from every later one's (checked on
    the oracle DDG, which keeps per-node levels)."""
    ddg = build_oracle_ddg(
        trace, config.derive(syscall_policy=CONSERVATIVE, resources=None)
    )
    placed = ddg.placed_records()  # (record_index, kind, level), trace order
    failures = []
    for position, (record_index, kind, level) in enumerate(placed):
        if kind != KIND_SYSCALL:
            continue
        before = max((lvl for _, _, lvl in placed[:position]), default=None)
        after = min((lvl for _, _, lvl in placed[position + 1:]), default=None)
        if before is not None and before >= level:
            failures.append(
                "property firewall-partition: operation at level "
                f"{before} before the syscall at record {record_index} is not "
                f"below its level {level}"
            )
        if after is not None and after <= level:
            failures.append(
                "property firewall-partition: operation at level "
                f"{after} after the syscall at record {record_index} is not "
                f"above its level {level}"
            )
    return failures


def evaluate_case(
    trace: TraceBuffer,
    config: AnalysisConfig,
    results: Dict[str, AnalysisResult],
) -> List[str]:
    """All differential + metamorphic checks for one case, given the
    results of its :func:`case_plan` analyses. Tolerates missing entries
    (an analysis that crashed is reported separately by the caller)."""
    failures: List[str] = []
    baseline = results.get(f"diff:{BASELINE_METHOD}")
    if baseline is not None:
        for method in DIFF_METHODS + ("oracle",):
            result = results.get(f"diff:{method}")
            if result is not None:
                failures.extend(
                    diff_results(BASELINE_METHOD, baseline, method, result)
                )
        for tag, method in SHARD_CHECKS:
            result = results.get(tag)
            if result is not None:
                # Exact-vs-sharded invariant: unmasked field-for-field
                # equality (peak_live_well included) against the baseline.
                failures.extend(
                    diff_results(BASELINE_METHOD, baseline, method, result)
                )
        backend_case = results.get("backend:case")
        if backend_case is not None:
            # Cross-backend invariant: the vectorized backend is unmasked
            # field-for-field identical to the streaming python loop.
            failures.extend(
                diff_results(BASELINE_METHOD, baseline, "backend:case", backend_case)
            )
        failures.extend(_census_failures(trace, config, baseline))

    for tag in sorted(results):
        # Paired grid points: backend:<axis>:np diffs against its
        # backend:<axis>:py twin (same derived config, python kernels).
        if not tag.startswith("backend:") or not tag.endswith(":np"):
            continue
        py_tag = tag[:-3] + ":py"
        reference = results.get(py_tag)
        if reference is not None:
            failures.extend(diff_results(py_tag, reference, tag, results[tag]))

    rename_tags = [f"rename:{step}" for step in range(len(_RENAME_STEPS))]
    if all(tag in results for tag in rename_tags):
        paths = [results[tag].critical_path_length for tag in rename_tags]
        if any(paths[i + 1] > paths[i] for i in range(len(paths) - 1)):
            failures.append(
                f"property renaming-monotone: critical paths {paths} "
                "(none -> regs -> regs+stack -> all) increase with more renaming"
            )
        placed = {results[tag].placed_operations for tag in rename_tags}
        if len(placed) > 1:
            failures.append(
                f"property renaming-monotone: placed operations {sorted(placed)} "
                "change with renaming (renaming must only move levels)"
            )

    window_tags = [f"window:{window}" for window in WINDOW_CHAIN]
    if all(tag in results for tag in window_tags):
        paths = [results[tag].critical_path_length for tag in window_tags]
        if any(paths[i + 1] > paths[i] for i in range(len(paths) - 1)):
            failures.append(
                f"property window-monotone: critical paths {paths} for windows "
                f"{WINDOW_CHAIN} increase with window size"
            )

    if "scale:1" in results:
        unit_path = results["scale:1"].critical_path_length
        for factor in SCALE_FACTORS:
            scaled = results.get(f"scale:{factor}")
            if scaled is None:
                continue
            if scaled.critical_path_length != factor * unit_path:
                failures.append(
                    "property latency-scaling: critical path "
                    f"{scaled.critical_path_length} at uniform latency {factor} "
                    f"!= {factor} * {unit_path}"
                )

    if _oracle_supported(config):
        failures.extend(_firewall_partition_failures(trace, config))
    return failures


# -- in-process execution (shrinking, artifact replay, unit tests) ----------


def analyze_case(
    trace: TraceBuffer,
    config: AnalysisConfig,
    plan: Optional[Sequence[Tuple[str, str, AnalysisConfig]]] = None,
) -> Tuple[Dict[str, AnalysisResult], List[str]]:
    """Run a case plan in-process; returns ``(results, errors)`` where
    errors are analyses that raised instead of returning."""
    from repro.engine.jobs import METHODS

    results: Dict[str, AnalysisResult] = {}
    errors: List[str] = []
    for tag, method, cfg in plan if plan is not None else case_plan(config):
        try:
            results[tag] = METHODS[method](trace, cfg)
        except Exception as error:  # noqa: BLE001 - a crash is a finding
            errors.append(f"{tag}: {type(error).__name__}: {error}")
    return results, errors


def verify_case(
    trace: TraceBuffer, config: AnalysisConfig, focus: str = "all"
) -> List[str]:
    """Fully verify one (trace, config) in-process; empty list = pass."""
    results, errors = analyze_case(trace, config, plan=case_plan(config, focus))
    return errors + evaluate_case(trace, config, results)


# -- engine-driven fuzz run --------------------------------------------------


@dataclass
class CaseFailure:
    """One failing case after shrinking."""

    index: int
    seed: int
    name: str
    records: int
    failures: List[str]
    artifacts: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"case {self.name} (seed {self.seed:#018x}, "
            f"{self.records} records after shrink):"
        ]
        lines.extend(f"  {failure}" for failure in self.failures)
        if self.artifacts:
            lines.append(f"  artifact: {self.artifacts[0]}")
        return "\n".join(lines)


@dataclass
class VerifySummary:
    """Outcome of one :func:`run_verification` sweep."""

    seed: int
    cases: int
    evaluated: int
    analyses: int
    failures: List[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} cases)"
        lines = [
            f"verify: {status} — {self.evaluated}/{self.cases} cases, "
            f"{self.analyses} analyses, seed {self.seed}"
        ]
        lines.extend(failure.describe() for failure in self.failures)
        return "\n".join(lines)


class GeneratedTraceStore:
    """A :class:`~repro.harness.runner.TraceStore` over generated case
    traces, keyed by case name — no workload suite behind it.

    Wraps the real store's columnar caching and disk spill, so the
    engine pool's worker processes (which only ever see trace file paths
    and shared-memory blocks, never workload names) work unchanged.
    """

    def __init__(self, directory: Optional[str] = None):
        # Composition, not subclassing: reuse the caching machinery but
        # refuse to fall back to the workload suite for unknown names.
        from repro.harness.runner import TraceStore

        self._base = TraceStore(directory)
        self._names: Dict[str, int] = {}

    @property
    def directory(self):
        return self._base.directory

    def persist_to(self, directory: str) -> None:
        self._base.persist_to(directory)

    def add(self, name: str, trace: TraceBuffer) -> int:
        """Register a generated trace; returns the cap (= record count)
        jobs against it must use."""
        cap = max(1, len(trace))
        self._base._memory[(name, cap, False)] = trace
        self._names[name] = cap
        return cap

    def _require(self, name: str, cap: int, optimize: bool) -> TraceBuffer:
        if optimize or self._names.get(name) != cap:
            raise KeyError(
                f"unknown generated trace {name!r} at cap {cap} "
                f"(optimize={optimize})"
            )
        return self._base._memory[(name, cap, False)]

    def trace(self, workload, cap: int, optimize: bool = False) -> TraceBuffer:
        name = workload if isinstance(workload, str) else workload.name
        return self._require(name, cap, optimize)

    def columnar(self, workload, cap: int, optimize: bool = False):
        name = workload if isinstance(workload, str) else workload.name
        self._require(name, cap, optimize)
        return self._base.columnar(name, cap, optimize)

    def ensure_on_disk(self, workload, cap: int, optimize: bool = False):
        name = workload if isinstance(workload, str) else workload.name
        trace = self._require(name, cap, optimize)
        if not self.directory:
            raise ValueError("ensure_on_disk requires a disk-backed store")
        from repro.trace.io import TraceFormatError, read_trace_digest, write_trace_file

        path = self._base._path(name, cap, optimize)
        digest = trace.digest()
        on_disk = None
        if path and os.path.exists(path):
            try:
                on_disk = read_trace_digest(path)
            except TraceFormatError:
                on_disk = None
        if on_disk != digest:
            write_trace_file(path, trace)
        return path, digest

    def invalidate(self, workload, cap: int, optimize: bool = False) -> bool:
        return self._base.invalidate(workload, cap, optimize)


def run_verification(
    seed: int = 0,
    cases: int = 200,
    shrink: bool = True,
    artifact_dir: Optional[str] = None,
    jobs: int = 1,
    engine=None,
    max_failures: int = 20,
    progress: Optional[Callable[[int, int], None]] = None,
    focus: str = "all",
) -> VerifySummary:
    """Fuzz ``cases`` generated cases under ``seed``.

    Analyses fan out through the engine pool (``jobs`` workers; 1 =
    in-process). Failing cases are re-verified in-process, shrunk by
    greedy deletion when ``shrink`` is set, and persisted under
    ``artifact_dir`` when given. Evaluation stops after ``max_failures``
    failing cases. ``focus`` narrows the per-case plan (``"shard"`` runs
    just the exact-vs-sharded invariant, see :func:`case_plan`).
    """
    if engine is None:
        from repro.engine.api import ExperimentEngine

        engine = ExperimentEngine(store=GeneratedTraceStore(), jobs=jobs)
    store = engine.store
    if not hasattr(store, "add"):
        raise ValueError("run_verification needs an engine with a GeneratedTraceStore")

    from repro.engine.jobs import AnalysisJob

    all_cases = [generate_case(seed, index) for index in range(cases)]
    grid: List[AnalysisJob] = []
    index_map: List[Tuple[int, str]] = []
    for case in all_cases:
        cap = store.add(case.name, case.trace)
        for tag, method, cfg in case_plan(case.config, focus):
            grid.append(AnalysisJob(workload=case.name, cap=cap, config=cfg, method=method))
            index_map.append((case.index, tag))

    outcomes = engine.run_grid(grid)
    results_by_case: Dict[int, Dict[str, AnalysisResult]] = defaultdict(dict)
    errors_by_case: Dict[int, List[str]] = defaultdict(list)
    for outcome, (case_index, tag) in zip(outcomes, index_map):
        if outcome.ok:
            results_by_case[case_index][tag] = outcome.result
        else:
            errors_by_case[case_index].append(f"{tag}: analysis failed: {outcome.error}")

    failures: List[CaseFailure] = []
    evaluated = 0
    for case in all_cases:
        case_failures = errors_by_case.get(case.index, [])
        if not case_failures:
            case_failures = evaluate_case(
                case.trace, case.config, results_by_case.get(case.index, {})
            )
        evaluated += 1
        if progress is not None:
            progress(evaluated, cases)
        if not case_failures:
            continue
        trace = case.trace
        if shrink:
            shrunk = shrink_trace(
                trace,
                lambda candidate: bool(verify_case(candidate, case.config, focus)),
            )
            refreshed = verify_case(shrunk, case.config, focus)
            if refreshed:  # guard: keep the original if shrinking lost the bug
                trace, case_failures = shrunk, refreshed
        artifacts: Tuple[str, ...] = ()
        if artifact_dir:
            from repro.verify.artifacts import persist_failure

            artifacts = persist_failure(artifact_dir, case, trace, case_failures)
        failures.append(
            CaseFailure(
                index=case.index,
                seed=case.seed,
                name=case.name,
                records=len(trace),
                failures=case_failures,
                artifacts=artifacts,
            )
        )
        if len(failures) >= max_failures:
            break
    return VerifySummary(
        seed=seed,
        cases=cases,
        evaluated=evaluated,
        analyses=len(grid),
        failures=failures,
    )


__all__ = [
    "BASELINE_METHOD",
    "CaseFailure",
    "DIFF_METHODS",
    "SHARD_CHECKS",
    "GeneratedTraceStore",
    "VerifyCase",
    "VerifySummary",
    "analyze_case",
    "case_plan",
    "evaluate_case",
    "run_verification",
    "verify_case",
]
