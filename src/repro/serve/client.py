"""Thin stdlib client for the analysis server.

:class:`ServeClient` wraps ``http.client`` — no dependencies, usable from
scripts, tests, and the load generator alike. JSON calls reuse one
keep-alive connection; the SSE stream opens its own (the server closes
event-stream connections when the stream ends).

    client = ServeClient("127.0.0.1", 8037, client_id="notebook")
    rows = client.submit({"workload": "xlispx", "cap": 3000})
    record = client.wait(rows[0]["id"])
    print(record["result"]["available_parallelism"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, List, Optional


class ServeClientError(Exception):
    """A non-2xx server response, carrying the HTTP status."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(f"HTTP {status}: {message}")


#: Job states the server never leaves (mirrors ``repro.serve.state``).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class ServeClient:
    """Blocking client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8037,
        client_id: Optional[str] = None,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------

    def _headers(self, extra: Optional[dict] = None) -> dict:
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if extra:
            headers.update(extra)
        return headers

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> dict:
        headers = self._headers()
        if body is not None:
            headers["Content-Type"] = content_type
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # A dropped keep-alive connection: reconnect once.
                self.close()
                if attempt == 2:
                    raise
        try:
            data = json.loads(payload.decode("utf-8")) if payload else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = {"error": payload.decode("utf-8", "replace")}
        if response.status >= 400:
            raise ServeClientError(response.status, data.get("error", response.reason))
        return data

    def _json(self, method: str, path: str, data: Optional[dict] = None) -> dict:
        body = json.dumps(data).encode("utf-8") if data is not None else None
        return self._request(method, path, body=body)

    # -- API ---------------------------------------------------------------

    def submit(self, body: dict) -> List[dict]:
        """Submit one spec, a ``configs`` grid, or ``{"jobs": [...]}``;
        returns one row per job (``id``, ``state``, ``deduped``)."""
        return self._json("POST", "/v1/jobs", body)["jobs"]

    def upload_trace(self, payload: bytes) -> dict:
        """Upload a PGT2 trace body; the returned ``trace`` id is a valid
        job ``workload``."""
        return self._request(
            "POST", "/v1/traces", body=payload, content_type="application/x-pgt2"
        )

    def job(self, job_id: str) -> dict:
        """The current status record (includes ``result`` once done)."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def run_report(self, run_id: str) -> dict:
        return self._json("GET", f"/v1/runs/{run_id}")

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final status record.
        Raises :class:`TimeoutError` if it stays live past ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {record['state']} after {timeout}s")
            time.sleep(poll)

    def events(self, job_id: str, after: Optional[int] = None) -> Iterator[dict]:
        """Stream the job's SSE events as dicts; the generator ends when
        the server closes the stream (after the terminal event)."""
        path = f"/v1/jobs/{job_id}/events"
        if after is not None:
            path += f"?after={after}"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", path, headers=self._headers())
            response = conn.getresponse()
            if response.status >= 400:
                payload = response.read()
                try:
                    message = json.loads(payload.decode("utf-8")).get("error", "")
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = payload.decode("utf-8", "replace")
                raise ServeClientError(response.status, message or response.reason)
            data_lines: List[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                        data_lines = []
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
            if data_lines:
                yield json.loads("\n".join(data_lines))
        finally:
            conn.close()
