"""Server lifecycle: sockets, signals, drain, and embedding.

Three ways to run the service:

- ``python -m repro serve ...`` → :func:`run_server` (blocking; SIGTERM or
  SIGINT triggers a graceful drain and a zero exit);
- ``async with``-style embedding → :class:`JobServer` (used by the event
  loop of a larger program);
- :class:`ServerThread` → a real server on a background thread with its
  own event loop, for tests and benchmarks that need a live socket without
  giving up their thread.

Port discovery: pass ``port=0`` to bind an ephemeral port; ``--port-file``
writes a small JSON document (host, port, pid, run id) atomically once the
socket is listening, which is how the smoke tests and load scripts find a
just-started subprocess.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import tempfile
import threading
from typing import Optional, Set

from repro.serve.app import handle_connection
from repro.serve.service import AnalysisService, ServeConfig

logger = logging.getLogger(__name__)

#: Signals that trigger a graceful drain of a foreground server.
DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class JobServer:
    """One listening socket over one :class:`AnalysisService`."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.service = AnalysisService(config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._connections: Set[asyncio.Task] = set()

    @property
    def port(self) -> Optional[int]:
        """The bound port (meaningful once :meth:`start` returns; resolves
        ``port=0`` to the kernel-assigned ephemeral port)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start the dispatcher and bind the listening socket."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        if self.config.port_file:
            self._write_port_file()
        logger.info(
            "repro.serve listening on %s:%s (run %s, %d engine jobs)",
            self.config.host, self.port, self.service.run_id, self.config.jobs,
        )

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await handle_connection(self.service, reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    def _write_port_file(self) -> None:
        """Atomically publish the bound address for subprocess discovery."""
        payload = {
            "host": self.config.host,
            "port": self.port,
            "pid": os.getpid(),
            "run_id": self.service.run_id,
        }
        directory = os.path.dirname(os.path.abspath(self.config.port_file))
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, prefix=".port-", delete=False
        )
        with handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(handle.name, self.config.port_file)

    def request_stop(self) -> None:
        """Ask a :meth:`serve_until_stopped` loop to drain and exit
        (signal handlers and tests call this; idempotent)."""
        if self._stop is not None:
            self._stop.set()

    async def shutdown(self) -> None:
        """Stop accepting connections, drain the service, clean up.

        Order matters: the drain runs *before* ``wait_closed()``. On
        Python >= 3.12.1 ``wait_closed()`` blocks until every connection
        handler returns, and keep-alive handlers sit in a read until the
        client goes away — waiting on them first would make a SIGTERM
        hang forever with the journal/metrics flush never reached. So:
        stop accepting, drain (queued jobs cancel and post terminal
        events, so live SSE streams end on their own), then cancel any
        lingering keep-alive handlers and reap the socket.
        """
        if self._server is not None:
            self._server.close()
        await self.service.drain()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        if self.config.port_file:
            try:
                os.remove(self.config.port_file)
            except OSError:
                pass
        logger.info(
            "repro.serve drained (run %s resumable with --resume)", self.service.run_id
        )

    async def serve_until_stopped(self) -> None:
        """Block until a drain signal (or :meth:`request_stop`), then shut
        down gracefully. Signal handlers are loop-level where the platform
        supports them; elsewhere (non-main thread, Windows) the caller owns
        signal delivery and uses :meth:`request_stop`."""
        self._stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in DRAIN_SIGNALS:
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await self._stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        await self.shutdown()


async def _serve(config: ServeConfig) -> int:
    server = JobServer(config)
    await server.start()
    print(f"repro.serve listening on http://{config.host}:{server.port}", flush=True)
    if server.service.run_id:
        print(f"run id: {server.service.run_id}", flush=True)
    await server.serve_until_stopped()
    return 0


def run_server(config: ServeConfig) -> int:
    """Run a foreground server until SIGTERM/SIGINT; returns the exit code."""
    try:
        return asyncio.run(_serve(config))
    except KeyboardInterrupt:
        # Platforms without loop signal handlers land here; the drain
        # already ran only if the loop handler fired, so exit quietly.
        return 130


class ServerThread:
    """A live server on a daemon thread (tests, benchmarks, examples).

    Usage::

        with ServerThread(ServeConfig(port=0)) as server:
            client = ServeClient("127.0.0.1", server.port)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, config: ServeConfig, startup_timeout: float = 30.0):
        self.config = config
        self.startup_timeout = startup_timeout
        self.port: Optional[int] = None
        self.server: Optional[JobServer] = None
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()/stop()
            self.error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = JobServer(self.config)
        server._stop = asyncio.Event()
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self.error = error
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        await server._stop.wait()
        await server.shutdown()

    @property
    def service(self) -> AnalysisService:
        assert self.server is not None, "server not started"
        return self.server.service

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise RuntimeError("server failed to start within the startup timeout")
        if self.error is not None:
            raise RuntimeError(f"server failed to start: {self.error!r}") from self.error
        return self

    def stop(self) -> None:
        """Drain and join; safe to call more than once."""
        if self._loop is not None and self.server is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=60.0)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not drain within 60s")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
