"""The analysis service: one engine pool behind an async submission queue.

This is the piece that turns the batch :class:`~repro.engine.api.
ExperimentEngine` into a long-lived multi-tenant system:

- **Content-addressed dedupe.** A submission is hashed to its job digest
  before anything executes; identical submissions from any client attach
  to the same :class:`~repro.serve.state.JobRecord`. Completed records
  answer resubmissions without touching the queue, and the engine's
  shared :class:`~repro.engine.cache.ResultCache` catches identical work
  across server processes and restarts before it ever reaches the pool.
- **Bounded fair intake.** Submissions land in a per-client round-robin
  queue (:class:`~repro.serve.state.FairQueue`); a full queue rejects
  loudly (HTTP 429 upstream) instead of buffering without limit.
- **One dispatcher, one engine.** A single dispatcher task drains the
  queue in batches and runs each batch as one engine grid on a dedicated
  executor thread — the engine keeps its multiprocess pool, retry/
  quarantine, journaling, and metrics untouched; worker crashes surface
  as retries, not 500s.
- **Graceful drain.** ``drain()`` closes intake, cancels queued jobs,
  waits for the in-flight grid (whose outcomes are journaled as they
  land), and flushes the journal + metrics export through the shared
  shutdown helper — a drained run resumes with ``--resume <run-id>``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import AnalysisConfig
from repro.engine.api import ExperimentEngine
from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob
from repro.engine.progress import (
    JOB_RETRY,
    JOB_STARTED,
    JobEvent,
)
from repro.engine.serialize import result_to_dict
from repro.engine.shutdown import flush_engine
from repro.harness.runner import DEFAULT_CAP, TraceStore
from repro.obs import metrics as obs
from repro.serve.state import (
    DONE,
    FAILED,
    TERMINAL_STATES,
    FairQueue,
    JobRecord,
    JobRegistry,
    QueueFullError,
)
from repro.trace.buffer import TraceBuffer
from repro.trace.io import read_trace_digest, write_trace_file


class SpecError(ValueError):
    """A submission spec that cannot become an :class:`AnalysisJob`."""


class UploadBudgetError(Exception):
    """The upload byte budget is exhausted and nothing is evictable
    (HTTP 413 upstream)."""


@dataclass
class ServeConfig:
    """Server construction knobs (the ``repro serve`` CLI surface)."""

    host: str = "127.0.0.1"
    port: int = 8037
    jobs: int = 1
    trace_dir: Optional[str] = None
    result_cache: Optional[str] = None
    result_cache_max_bytes: Optional[int] = None
    journal_dir: Optional[str] = None
    resume: Optional[str] = None
    retries: int = 2
    job_timeout: Optional[float] = None
    queue_limit: int = 256
    batch: Optional[int] = None
    metrics: bool = True
    port_file: Optional[str] = None
    #: Seconds an idle keep-alive connection may sit between requests
    #: before the server closes it (None disables the timeout). Keeps a
    #: parked client from holding its handler open across a drain.
    keepalive_timeout: Optional[float] = 75.0
    #: Byte budget for uploaded traces held in memory; the least recently
    #: used upload not referenced by a live job is evicted when a new
    #: upload would exceed it (HTTP 413 when nothing is evictable).
    upload_budget_bytes: int = 256 * 1024 * 1024


class ServeStore:
    """A :class:`TraceStore` that also serves uploaded PGT2 traces.

    Uploads are registered in the base store's memory cache under a
    content-derived name (``upload-<digest prefix>``), so the engine pool's
    disk-spill and shared-memory machinery work on them unchanged (the
    same composition trick as ``repro.verify``'s ``GeneratedTraceStore``);
    suite workload names fall through to the normal store.

    Uploads live under a byte budget: registering one that would exceed
    ``upload_budget`` evicts least-recently-used uploads first, skipping
    any the ``pinned`` callback claims (the service pins uploads that a
    live job references). When nothing evictable frees enough room, the
    upload is refused with :class:`UploadBudgetError`.
    """

    def __init__(self, directory: Optional[str] = None, upload_budget: Optional[int] = None):
        self._base = TraceStore(directory)
        self._uploads: Dict[str, int] = {}
        self._upload_sizes: "OrderedDict[str, int]" = OrderedDict()  # LRU order
        self._upload_total = 0
        self.upload_budget = upload_budget
        #: Set by the owning service: ``pinned(name)`` is True while a
        #: live (non-terminal) job references the upload.
        self.pinned: Optional[Callable[[str], bool]] = None

    @property
    def directory(self):
        return self._base.directory

    def persist_to(self, directory: str) -> None:
        self._base.persist_to(directory)

    # -- uploads -----------------------------------------------------------

    def add_upload(self, trace: TraceBuffer, size: Optional[int] = None) -> Tuple[str, int]:
        """Register an uploaded trace; returns its (name, cap). Identical
        uploads land on the same name — uploads dedupe by content too.
        ``size`` is the wire size charged against the upload budget;
        raises :class:`UploadBudgetError` when it cannot be made to fit."""
        name = f"upload-{trace.digest()[:16]}"
        cap = max(1, len(trace))
        if name in self._uploads:
            self.touch_upload(name)  # re-upload of known content: free
            return name, cap
        # Charged at wire size (the caller knows it); fall back to a
        # per-record estimate of the PGT2 encoding for direct callers.
        charged = size if size is not None else 48 * max(1, len(trace))
        if self.upload_budget is not None:
            if charged > self.upload_budget:
                raise UploadBudgetError(
                    f"upload of {charged} bytes exceeds the "
                    f"{self.upload_budget} byte upload budget"
                )
            self._evict_uploads(self.upload_budget - charged)
        self._base._memory[(name, cap, False)] = trace
        self._uploads[name] = cap
        self._upload_sizes[name] = charged
        self._upload_total += charged
        return name, cap

    def _evict_uploads(self, budget: int) -> None:
        """Evict LRU un-pinned uploads until the total fits ``budget``;
        raises :class:`UploadBudgetError` if it cannot."""
        if self._upload_total <= budget:
            return
        for name in list(self._upload_sizes):
            if self._upload_total <= budget:
                return
            if self.pinned is not None and self.pinned(name):
                continue
            cap = self._uploads.pop(name)
            self._upload_total -= self._upload_sizes.pop(name)
            self._base._memory.pop((name, cap, False), None)
            obs.inc("serve.upload_evictions")
        if self._upload_total > budget:
            raise UploadBudgetError(
                "upload budget exhausted and every resident upload is "
                "referenced by a live job; retry once they finish"
            )

    def touch_upload(self, name: str) -> None:
        """Mark an upload recently used (eviction is LRU)."""
        if name in self._upload_sizes:
            self._upload_sizes.move_to_end(name)

    def upload_cap(self, name: str) -> Optional[int]:
        return self._uploads.get(name)

    @property
    def upload_bytes(self) -> int:
        return self._upload_total

    def _require_upload(self, name: str, cap: int, optimize: bool) -> TraceBuffer:
        if optimize or self._uploads.get(name) != cap:
            raise KeyError(
                f"unknown uploaded trace {name!r} at cap {cap} (optimize={optimize})"
            )
        return self._base._memory[(name, cap, False)]

    # -- TraceStore protocol -----------------------------------------------

    def trace(self, workload, cap: int = DEFAULT_CAP, optimize: bool = False):
        name = workload if isinstance(workload, str) else workload.name
        if name in self._uploads:
            return self._require_upload(name, cap, optimize)
        return self._base.trace(workload, cap, optimize)

    def columnar(self, workload, cap: int = DEFAULT_CAP, optimize: bool = False):
        name = workload if isinstance(workload, str) else workload.name
        if name in self._uploads:
            self._require_upload(name, cap, optimize)
            return self._base.columnar(name, cap, optimize)
        return self._base.columnar(workload, cap, optimize)

    def ensure_on_disk(self, workload, cap: int = DEFAULT_CAP, optimize: bool = False):
        name = workload if isinstance(workload, str) else workload.name
        if name not in self._uploads:
            return self._base.ensure_on_disk(workload, cap, optimize)
        trace = self._require_upload(name, cap, optimize)
        if not self.directory:
            raise ValueError("ensure_on_disk requires a disk-backed store")
        path = self._base._path(name, cap, optimize)
        digest = trace.digest()
        if os.path.exists(path):
            try:
                if read_trace_digest(path) == digest:
                    return path, digest
            except Exception:  # noqa: BLE001 - stale/corrupt file; rewrite below
                pass
        write_trace_file(path, trace)
        return path, digest

    def invalidate(self, workload, cap: int = DEFAULT_CAP, optimize: bool = False) -> bool:
        name = workload if isinstance(workload, str) else workload.name
        if name in self._uploads:
            # The memory copy is the source of truth for uploads; only the
            # disk spill can go stale.
            path = self._base._path(name, cap, optimize)
            if path and os.path.exists(path):
                try:
                    os.remove(path)
                    return True
                except OSError:
                    return False
            return False
        return self._base.invalidate(workload, cap, optimize)

    def full_run_length(self, workload) -> int:
        return self._base.full_run_length(workload)


def job_from_spec(spec: dict, store: Optional[ServeStore] = None) -> AnalysisJob:
    """Build an :class:`AnalysisJob` from a submission spec dict.

    Spec shape: ``{"workload": <suite name or upload id>, "cap": <int>,
    "config": {<canonical keys>}, "method": ..., "optimize": ...}``.
    ``cap`` defaults to the upload's record count for uploaded traces and
    to :data:`DEFAULT_CAP` otherwise. A partial ``config`` is merged over
    the defaults (dedupe stays exact: the job digest is computed from the
    reconstructed :class:`AnalysisConfig`, not from the raw spec), but an
    unknown config key is rejected — a typo silently meaning "default"
    would dedupe two submissions the client believes are different.
    """
    if not isinstance(spec, dict):
        raise SpecError(f"job spec must be an object, got {type(spec).__name__}")
    workload = spec.get("workload") or spec.get("trace")
    if not isinstance(workload, str) or not workload:
        raise SpecError("job spec needs a 'workload' (suite name or uploaded trace id)")
    upload_cap = store.upload_cap(workload) if store is not None else None
    cap = spec.get("cap")
    if cap is None:
        cap = upload_cap if upload_cap is not None else DEFAULT_CAP
    if not isinstance(cap, int) or isinstance(cap, bool):
        raise SpecError(f"cap must be an integer, got {cap!r}")
    if upload_cap is not None:
        # Uploaded traces are served only at their registered cap and
        # unoptimized; anything else would pass validation here and fail
        # at execution — reject it as a 400 now instead.
        if cap != upload_cap:
            raise SpecError(
                f"uploaded trace {workload!r} is registered at cap "
                f"{upload_cap}; a job may not override it (got cap {cap})"
            )
        if spec.get("optimize"):
            raise SpecError(
                f"uploaded trace {workload!r} cannot run with optimize=true "
                "(uploads are served exactly as submitted)"
            )
    config_data = spec.get("config")
    if config_data is None:
        config = AnalysisConfig()
    else:
        if not isinstance(config_data, dict):
            raise SpecError(f"config must be an object, got {type(config_data).__name__}")
        defaults = AnalysisConfig().canonical()
        unknown = sorted(set(config_data) - set(defaults))
        if unknown:
            raise SpecError(f"unknown config keys: {', '.join(unknown)}")
        try:
            config = AnalysisConfig.from_canonical({**defaults, **config_data})
        except Exception as error:  # noqa: BLE001 - any malformed canonical form
            raise SpecError(f"malformed config: {type(error).__name__}: {error}") from None
    try:
        return AnalysisJob(
            workload=workload,
            cap=cap,
            config=config,
            method=spec.get("method", "forward"),
            optimize=bool(spec.get("optimize", False)),
        )
    except ValueError as error:
        raise SpecError(str(error)) from None


def expand_specs(body: dict) -> List[dict]:
    """Expand a submission body into per-job specs.

    Accepted shapes: a single spec; a spec with ``configs`` (one job per
    config — the grid form); or ``{"jobs": [spec, ...]}``.
    """
    if "jobs" in body:
        jobs = body["jobs"]
        if not isinstance(jobs, list) or not jobs:
            raise SpecError("'jobs' must be a non-empty list of job specs")
        return [spec for item in jobs for spec in expand_specs(item)]
    if "configs" in body:
        configs = body["configs"]
        if not isinstance(configs, list) or not configs:
            raise SpecError("'configs' must be a non-empty list of canonical configs")
        base = {key: value for key, value in body.items() if key != "configs"}
        return [{**base, "config": config} for config in configs]
    return [body]


class AnalysisService:
    """Owns the engine, the registry, the queue, and the dispatcher."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = ServeStore(config.trace_dir, upload_budget=config.upload_budget_bytes)
        self.store.pinned = self._upload_pinned
        cache = None
        if config.result_cache:
            cache = ResultCache(config.result_cache, max_bytes=config.result_cache_max_bytes)
        self.engine = ExperimentEngine(
            store=self.store,
            jobs=config.jobs,
            result_cache=cache,
            timeout=config.job_timeout,
            progress=self._on_engine_event,
            retries=config.retries,
            journal_dir=config.journal_dir,
            resume=config.resume,
            metrics=config.metrics or None,
        )
        self.registry = JobRegistry()
        self.queue = FairQueue(limit=config.queue_limit)
        self.batch_size = config.batch or max(1, config.jobs)
        self.started_at = time.time()
        self.draining = False
        self.stats = {
            "submitted": 0,
            "deduped": 0,
            "completed": 0,
            "executed": 0,
            "cached": 0,
            "replayed": 0,
            "failed": 0,
            "cancelled": 0,
            "retried": 0,
            "uploads": 0,
            "http_requests": 0,
        }
        self.in_flight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._grid_records: Optional[List[JobRecord]] = None
        # One thread: the engine (and its multiprocess pool) is not
        # thread-safe, and grids are the unit of pool-level parallelism.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        # Separate small executor for upload parsing — a 64MB PGT2 parse
        # must neither stall the event loop nor queue behind the engine.
        self._io_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="serve-io"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop and start the dispatcher task."""
        self._loop = asyncio.get_running_loop()
        self._dispatcher = self._loop.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Stop intake, cancel queued jobs, wait out the in-flight grid,
        flush the journal and metrics export. Idempotent."""
        if self.draining:
            if self._dispatcher is not None:
                await self._dispatcher
            return
        self.draining = True
        obs.inc("serve.drains")
        for job_id in self.queue.drain_pending():
            record = self.registry.get(job_id)
            if record is not None and record.state not in TERMINAL_STATES:
                record.cancel("server draining")
                self._bump("cancelled")
        self.queue.close()
        if self._dispatcher is not None:
            await self._dispatcher
        self._executor.shutdown(wait=True)
        self._io_executor.shutdown(wait=True)
        flush_engine(self.engine)

    @property
    def run_id(self) -> Optional[str]:
        return self.engine.run_id

    def _bump(self, name: str, amount: int = 1) -> None:
        self.stats[name] = self.stats.get(name, 0) + amount
        obs.inc(f"serve.{name}", amount)

    def _upload_pinned(self, name: str) -> bool:
        """An upload referenced by a live job must not be evicted."""
        return any(
            record.job.workload == name and record.state not in TERMINAL_STATES
            for record in self.registry.records()
        )

    # -- submission --------------------------------------------------------

    def submit(self, spec: dict, client: str) -> Tuple[JobRecord, bool]:
        """Dedupe-or-enqueue one spec; returns ``(record, deduped)``.

        Raises :class:`SpecError` (bad spec) or
        :class:`~repro.serve.state.QueueFullError` (backpressure/drain).
        """
        return self.submit_many([spec], client)[0]

    def submit_many(self, specs: Sequence[dict], client: str) -> List[Tuple[JobRecord, bool]]:
        """Dedupe-or-enqueue a batch, all-or-nothing.

        Every spec is validated and the queue capacity checked against
        the batch's distinct fresh digests *before* anything enqueues, so
        a 400/429 means no job from this body was accepted — the client
        never has to guess which half of a rejected batch is running.
        (The service is single-threaded on the event loop and nothing
        awaits between the check and the puts, so the check cannot race.)
        """
        if self.draining:
            raise QueueFullError("server is draining; submissions refused")
        jobs = [job_from_spec(spec, self.store) for spec in specs]
        fresh = set()
        for job in jobs:
            digest = job.digest()
            if digest in fresh or self._dedupe_target(digest) is not None:
                continue
            fresh.add(digest)
        if len(fresh) > self.queue.remaining:
            raise QueueFullError(
                f"batch needs {len(fresh)} queue slots but only "
                f"{self.queue.remaining} of {self.queue.limit} remain; "
                "no jobs from this submission were enqueued"
            )
        return [self._submit_job(job, client) for job in jobs]

    def _dedupe_target(self, digest: str) -> Optional[JobRecord]:
        """The live-or-done record a resubmission of ``digest`` attaches
        to, if any (failed/cancelled records invite an explicit retry)."""
        existing = self.registry.get(digest)
        if existing is None:
            return None
        if existing.state in (DONE,) or existing.state not in TERMINAL_STATES:
            return existing
        return None

    def _submit_job(self, job: AnalysisJob, client: str) -> Tuple[JobRecord, bool]:
        self._bump("submitted")
        digest = job.digest()
        target = self._dedupe_target(digest)
        if target is not None:
            # Same digest, result live or on the way: attach, don't re-run.
            if client not in target.clients:
                target.clients.append(client)
            self._bump("deduped")
            return target, True
        self.store.touch_upload(job.workload)  # live reference: protect from LRU
        record = JobRecord(job, client)
        self.queue.put(client, record.id)
        if self.registry.get(digest) is not None:
            self.registry.replace(record)
        else:
            self.registry.add(record)
        record.post("queued", queue_depth=self.queue.depth)
        obs.gauge_set("serve.queue_depth", self.queue.depth)
        return record, False

    async def upload(self, payload: bytes) -> Tuple[str, int, str]:
        """Register an uploaded PGT2 trace; returns (name, cap, digest).

        The temp-file write, parse, and digest run on the I/O executor so
        a large body never stalls the event loop; registration (budget
        accounting, eviction) happens back on the loop thread, where the
        pin check can read the registry safely.
        """
        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        trace, digest = await loop.run_in_executor(
            self._io_executor, self._parse_upload, payload
        )
        name, cap = self.store.add_upload(trace, size=len(payload))
        self._bump("uploads")
        obs.gauge_set("serve.upload_bytes", self.store.upload_bytes)
        return name, cap, digest

    @staticmethod
    def _parse_upload(payload: bytes) -> Tuple[TraceBuffer, str]:
        import tempfile

        from repro.trace.io import TraceFormatError, read_trace_file

        handle = tempfile.NamedTemporaryFile(suffix=".pgt2", delete=False)
        try:
            with handle:
                handle.write(payload)
            try:
                trace = read_trace_file(handle.name)
            except TraceFormatError as error:
                raise SpecError(f"bad PGT2 payload: {error}") from None
        finally:
            try:
                os.remove(handle.name)
            except OSError:
                pass
        return trace, trace.digest()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None
        while True:
            job_ids = await self.queue.take(self.batch_size)
            if not job_ids:
                return  # queue closed and empty: drain complete
            obs.gauge_set("serve.queue_depth", self.queue.depth)
            records = [self.registry.get(job_id) for job_id in job_ids]
            records = [r for r in records if r is not None and r.state not in TERMINAL_STATES]
            if not records:
                continue
            grid = [record.job for record in records]
            self._grid_records = records
            self.in_flight = len(records)
            obs.gauge_set("serve.in_flight", self.in_flight)
            try:
                outcomes = await self._loop.run_in_executor(
                    self._executor, self.engine.run_grid, grid
                )
            except Exception as error:  # noqa: BLE001 - engine-level failure
                message = f"engine failure: {type(error).__name__}: {error}"
                for record in records:
                    record.error = message
                    record.finish(FAILED, "failed", error=message)
                    self._bump("failed")
            else:
                for record, outcome in zip(records, outcomes):
                    self._finish(record, outcome)
            finally:
                self._grid_records = None
                self.in_flight = 0
                obs.gauge_set("serve.in_flight", 0)

    def _finish(self, record: JobRecord, outcome) -> None:
        record.seconds = outcome.seconds
        record.attempts = max(record.attempts, outcome.attempts)
        if outcome.ok:
            if outcome.cached:
                status = "cached"
            elif outcome.replayed:
                status = "replayed"
            else:
                status = "ok"
                self._bump("executed")
            self._bump("completed")
            if status in ("cached", "replayed"):
                self._bump(status)
            record.result = result_to_dict(outcome.result)
            record.summary = summary = {
                "available_parallelism": outcome.result.available_parallelism,
                "critical_path_length": outcome.result.critical_path_length,
                "placed_operations": outcome.result.placed_operations,
            }
            record.finish(
                DONE,
                status,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
                phases=outcome.phases,
                summary=summary,
            )
        else:
            self._bump("failed")
            record.error = outcome.error
            record.finish(
                FAILED,
                "failed",
                error=outcome.error,
                seconds=outcome.seconds,
                attempts=outcome.attempts,
            )

    def _on_engine_event(self, event: JobEvent) -> None:
        """Engine progress listener — called on the dispatcher's executor
        thread; marshals per-job transitions onto the event loop. Terminal
        transitions are *not* taken from events: the dispatcher applies
        them from the returned outcomes, which carry the results."""
        records = self._grid_records
        loop = self._loop
        if records is None or loop is None or event.index >= len(records):
            return
        record = records[event.index]
        if event.kind == JOB_STARTED:
            loop.call_soon_threadsafe(record.mark_running, event.worker)
        elif event.kind == JOB_RETRY:
            self.stats["retried"] += 1
            loop.call_soon_threadsafe(record.mark_retry, event.error)

    # -- views -------------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": self.queue.depth,
            "in_flight": self.in_flight,
            "jobs": self.engine.jobs,
            "run_id": self.run_id,
            "records": len(self.registry),
            "stats": dict(self.stats),
        }

    def metrics_snapshot(self) -> dict:
        return {
            "stats": dict(self.stats),
            "queue_depth": self.queue.depth,
            "in_flight": self.in_flight,
            "registry": obs.registry().snapshot(),
        }
