"""Server-side job state: records, the dedupe registry, the fairness queue.

Jobs are content-addressed — a :class:`JobRecord` id *is* the
:meth:`~repro.engine.jobs.AnalysisJob.digest` of its spec — so two clients
submitting the same (workload, cap, config, method) land on the same record
and the engine executes it once. Every record keeps an append-only event
log (``queued``/``started``/``retry``/terminal) that both the status
endpoint and the SSE stream render; waiters block on a generation-swapped
:class:`asyncio.Event`, so posting an event costs one ``set()`` regardless
of listener count.

The submission queue is bounded and fair: one FIFO lane per client id,
drained round-robin one job per lane per turn, so a tenant dumping a
thousand-job grid cannot starve another tenant's single submission.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from typing import Deque, List, Optional

from repro.engine.jobs import AnalysisJob

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a record never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Completed records kept for status queries before the oldest are dropped.
DEFAULT_RETENTION = 4096


class QueueFullError(Exception):
    """The bounded submission queue is at capacity (HTTP 429 upstream)."""


class JobRecord:
    """One deduplicated analysis job and its event history."""

    def __init__(self, job: AnalysisJob, client: str):
        self.id = job.digest()
        self.job = job
        self.clients: List[str] = [client]
        self.state = QUEUED
        self.status: Optional[str] = None  # ok / cached / replayed / failed
        self.error: Optional[str] = None
        self.result: Optional[dict] = None  # serialized AnalysisResult
        self.summary: Optional[dict] = None  # headline numbers (ILP, path, ops)
        self.attempts = 0
        self.seconds = 0.0
        self.created = time.time()
        self.finished: Optional[float] = None
        self.events: List[dict] = []
        self._changed = asyncio.Event()

    # -- events ------------------------------------------------------------

    def post(self, kind: str, **data) -> dict:
        """Append one event and wake every waiter (event-loop thread only).

        Events are sequence-numbered from 0; the SSE endpoint uses the
        numbers as SSE ids so a dropped stream resumes where it left off.
        """
        event = {"seq": len(self.events), "event": kind, "job": self.id, **data}
        self.events.append(event)
        changed, self._changed = self._changed, asyncio.Event()
        changed.set()
        return event

    async def wait_events(self, after: int) -> List[dict]:
        """Every event past sequence number ``after`` (blocking until at
        least one exists); ``[]`` once the record is terminal with nothing
        newer — the SSE stream's end-of-stream signal."""
        while True:
            if len(self.events) > after:
                return self.events[after:]
            if self.state in TERMINAL_STATES:
                return []
            await self._changed.wait()

    # -- transitions (event-loop thread only) ------------------------------

    def mark_running(self, worker: Optional[int] = None) -> None:
        if self.state == QUEUED:
            self.state = RUNNING
        self.post("started", worker=worker)

    def mark_retry(self, error: Optional[str]) -> None:
        self.attempts += 1
        self.post("retry", error=error)

    def finish(self, state: str, status: str, **data) -> None:
        """Terminal transition; posts the terminal event last so SSE
        streams always end on it."""
        if self.state in TERMINAL_STATES:
            return
        self.state = state
        self.status = status
        self.finished = time.time()
        self.post(state, status=status, **data)

    def cancel(self, reason: str) -> None:
        self.error = reason
        self.finish(CANCELLED, "cancelled", error=reason)

    # -- views -------------------------------------------------------------

    def describe(self) -> dict:
        """The status-endpoint JSON (without the result payload)."""
        return {
            "id": self.id,
            "state": self.state,
            "status": self.status,
            "workload": self.job.workload,
            "cap": self.job.cap,
            "method": self.job.method,
            "describe": self.job.describe(),
            "clients": list(self.clients),
            "attempts": self.attempts,
            "seconds": self.seconds,
            "summary": self.summary,
            "error": self.error,
            "created": self.created,
            "finished": self.finished,
            "events": len(self.events),
        }


class JobRegistry:
    """Records by content id, with bounded retention of terminal records."""

    def __init__(self, retention: int = DEFAULT_RETENTION):
        self._records: "OrderedDict[str, JobRecord]" = OrderedDict()
        self.retention = retention

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._records.get(job_id)

    def add(self, record: JobRecord) -> None:
        self._records[record.id] = record
        self._prune()

    def replace(self, record: JobRecord) -> None:
        """Install a fresh record under an id whose previous run is
        terminal (failed-job resubmission)."""
        self._records.pop(record.id, None)
        self.add(record)

    def _prune(self) -> None:
        if len(self._records) <= self.retention:
            return
        for job_id, record in list(self._records.items()):
            if len(self._records) <= self.retention:
                break
            if record.state in TERMINAL_STATES:
                del self._records[job_id]

    def records(self) -> List[JobRecord]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)


class FairQueue:
    """Bounded multi-tenant submission queue with round-robin drain.

    ``put`` is synchronous (callers see :class:`QueueFullError`
    immediately); ``take`` is a coroutine that blocks until work exists or
    the queue is closed. Fairness: each take round-robins across client
    lanes, one job per lane per turn.
    """

    def __init__(self, limit: int = 256):
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._lanes: "OrderedDict[str, Deque[str]]" = OrderedDict()
        self._size = 0
        self._closed = False
        self._wake = asyncio.Event()

    @property
    def depth(self) -> int:
        return self._size

    @property
    def remaining(self) -> int:
        """Free slots before :meth:`put` starts refusing (0 when closed)."""
        if self._closed:
            return 0
        return max(0, self.limit - self._size)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, client: str, job_id: str) -> None:
        if self._closed:
            raise QueueFullError("queue is closed (server draining)")
        if self._size >= self.limit:
            raise QueueFullError(f"submission queue full ({self.limit} jobs queued)")
        lane = self._lanes.get(client)
        if lane is None:
            lane = self._lanes[client] = deque()
        lane.append(job_id)
        self._size += 1
        self._wake.set()

    async def take(self, max_items: int) -> List[str]:
        """Up to ``max_items`` job ids, round-robin across client lanes;
        ``[]`` only once the queue is closed and empty."""
        while self._size == 0:
            if self._closed:
                return []
            self._wake.clear()
            await self._wake.wait()
        items: List[str] = []
        while self._size and len(items) < max_items:
            client, lane = next(iter(self._lanes.items()))
            items.append(lane.popleft())
            self._size -= 1
            self._lanes.move_to_end(client)
            if not lane:
                del self._lanes[client]
        return items

    def drain_pending(self) -> List[str]:
        """Remove and return every queued job id (drain path)."""
        pending: List[str] = []
        for lane in self._lanes.values():
            pending.extend(lane)
        self._lanes.clear()
        self._size = 0
        return pending

    def close(self) -> None:
        """Refuse further puts and unblock any waiting take."""
        self._closed = True
        self._wake.set()
