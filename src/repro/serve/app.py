"""HTTP API over an :class:`~repro.serve.service.AnalysisService`.

Endpoints (all JSON unless noted):

- ``POST /v1/jobs`` — submit one spec, a config grid, or ``{"jobs": [...]}``;
  202 with one entry per job (content-addressed id + ``deduped`` flag).
- ``POST /v1/traces`` — upload a PGT2 trace body; 201 with the trace id
  jobs can reference as their ``workload``.
- ``GET /v1/jobs`` — registry summary.
- ``GET /v1/jobs/{id}`` — status; includes the serialized result once done.
- ``GET /v1/jobs/{id}/events`` — SSE stream of the job's event log
  (``?after=<seq>`` or ``Last-Event-ID`` resumes; stream ends after the
  terminal event).
- ``GET /v1/runs/{run_id}`` — journal-backed run report (the data behind
  ``repro report-run``).
- ``GET /healthz`` — liveness + queue/drain state.
- ``GET /metrics`` — service stats + the ``repro.obs`` registry snapshot.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Optional

from repro.obs import metrics as obs
from repro.serve.http import (
    HttpError,
    HttpRequest,
    read_request,
    send_json,
    send_sse,
    start_sse,
)
from repro.serve.service import (
    AnalysisService,
    SpecError,
    UploadBudgetError,
    expand_specs,
)
from repro.serve.state import DONE, QueueFullError

logger = logging.getLogger(__name__)


def _client_id(request: HttpRequest, writer: asyncio.StreamWriter) -> str:
    """The fairness-lane identity of a request: an explicit header wins,
    else the peer address (port excluded, so one host is one tenant)."""
    explicit = request.headers.get("x-client-id")
    if explicit:
        return explicit
    peer = writer.get_extra_info("peername")
    return str(peer[0]) if isinstance(peer, tuple) else "unknown"


def _submission_row(record, deduped: bool) -> dict:
    return {
        "id": record.id,
        "state": record.state,
        "status": record.status,
        "deduped": deduped,
        "describe": record.job.describe(),
    }


async def _handle_submit(service: AnalysisService, request: HttpRequest, client: str) -> tuple:
    try:
        specs = expand_specs(request.json())
        results = service.submit_many(specs, client)
    except SpecError as error:
        raise HttpError(400, str(error)) from None
    except QueueFullError as error:
        status = 503 if service.draining else 429
        raise HttpError(status, str(error)) from None
    return 202, {"jobs": [_submission_row(record, deduped) for record, deduped in results]}


async def _handle_upload(service: AnalysisService, request: HttpRequest) -> tuple:
    if not request.body:
        raise HttpError(400, "upload body must be a PGT2 trace")
    if service.draining:
        raise HttpError(503, "server is draining; uploads refused")
    try:
        name, cap, digest = await service.upload(request.body)
    except SpecError as error:
        raise HttpError(400, str(error)) from None
    except UploadBudgetError as error:
        raise HttpError(413, str(error)) from None
    return 201, {"trace": name, "cap": cap, "digest": digest}


def _require_record(service: AnalysisService, job_id: str):
    record = service.registry.get(job_id)
    if record is None:
        raise HttpError(404, f"unknown job {job_id!r}")
    return record


async def _handle_job_status(service: AnalysisService, job_id: str) -> tuple:
    record = _require_record(service, job_id)
    payload = record.describe()
    if record.state == DONE and record.result is not None:
        payload["result"] = record.result
    return 200, payload


async def _handle_job_events(
    service: AnalysisService, request: HttpRequest, writer: asyncio.StreamWriter, job_id: str
) -> None:
    record = _require_record(service, job_id)
    after = request.query.get("after", request.headers.get("last-event-id"))
    try:
        cursor = int(after) + 1 if after is not None else 0
    except ValueError:
        raise HttpError(400, f"bad event cursor {after!r}") from None
    await start_sse(writer)
    while True:
        events = await record.wait_events(cursor)
        if not events:
            return  # terminal event already delivered
        for event in events:
            await send_sse(writer, event)
        cursor = events[-1]["seq"] + 1


async def _handle_run_report(service: AnalysisService, run_id: str) -> tuple:
    from repro.obs.export import MetricsExportError, load_run, metrics_path

    journal_dir = service.config.journal_dir
    if not journal_dir:
        raise HttpError(404, "server runs without a journal directory; no run reports")
    if "/" in run_id or run_id.startswith("."):
        raise HttpError(400, f"bad run id {run_id!r}")
    try:
        run = load_run(metrics_path(journal_dir, run_id))
    except MetricsExportError as error:
        raise HttpError(404, str(error)) from None
    from repro.obs.report import render_run_report

    return 200, {
        "run_id": run.get("run_id") or run_id,
        "jobs": run["jobs"],
        "grids": run["grids"],
        "report": render_run_report(run),
    }


async def handle_request(
    service: AnalysisService,
    request: HttpRequest,
    writer: asyncio.StreamWriter,
) -> Optional[tuple]:
    """Route one request; returns ``(status, payload)`` for JSON routes,
    ``None`` when the handler wrote the response itself (SSE)."""
    method, path = request.method, request.path.rstrip("/") or "/"
    obs.inc("serve.http.requests")
    service.stats["http_requests"] += 1

    if path == "/healthz" and method == "GET":
        return 200, service.health()
    if path == "/metrics" and method == "GET":
        return 200, service.metrics_snapshot()
    if path == "/v1/jobs":
        if method == "POST":
            return await _handle_submit(service, request, _client_id(request, writer))
        if method == "GET":
            return 200, {"jobs": [record.describe() for record in service.registry.records()]}
        raise HttpError(405, f"{method} not allowed on {path}")
    if path == "/v1/traces" and method == "POST":
        return await _handle_upload(service, request)
    if path.startswith("/v1/jobs/"):
        rest = path[len("/v1/jobs/"):]
        if rest.endswith("/events"):
            job_id = rest[: -len("/events")]
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            await _handle_job_events(service, request, writer, job_id)
            return None
        if "/" in rest:
            raise HttpError(404, f"no route for {path}")
        if method != "GET":
            raise HttpError(405, f"{method} not allowed on {path}")
        return await _handle_job_status(service, rest)
    if path.startswith("/v1/runs/") and method == "GET":
        return await _handle_run_report(service, path[len("/v1/runs/"):])
    raise HttpError(404, f"no route for {method} {path}")


async def handle_connection(
    service: AnalysisService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: serve keep-alive requests until close. SSE
    responses end the connection (they have no framed length). An idle
    keep-alive connection is closed after ``keepalive_timeout`` seconds
    so parked clients cannot pin handlers open across a drain."""
    idle_timeout = service.config.keepalive_timeout
    try:
        while True:
            try:
                request = await asyncio.wait_for(read_request(reader), idle_timeout)
            except asyncio.TimeoutError:
                return  # idle keep-alive connection: close quietly
            except HttpError as error:
                obs.inc("serve.http.errors")
                await send_json(
                    writer, error.status, {"error": error.message}, keep_alive=False
                )
                return
            if request is None:
                return
            try:
                routed = await handle_request(service, request, writer)
            except HttpError as error:
                obs.inc("serve.http.errors")
                await send_json(
                    writer,
                    error.status,
                    {"error": error.message},
                    keep_alive=request.keep_alive,
                )
                if not request.keep_alive:
                    return
                continue
            except Exception as error:  # noqa: BLE001 - a handler bug must not kill the server
                logger.exception("unhandled error serving %s %s", request.method, request.path)
                obs.inc("serve.http.errors")
                await send_json(
                    writer,
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                    keep_alive=False,
                )
                return
            if routed is None:
                return  # SSE stream finished; its connection closes
            status, payload = routed
            await send_json(writer, status, payload, keep_alive=request.keep_alive)
            if not request.keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
        pass  # client went away (or server shutdown); nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
