"""Minimal asyncio HTTP/1.1 layer for the analysis server.

Deliberately not a framework: the server speaks a small, well-understood
subset of HTTP — request line + headers + ``Content-Length`` bodies in,
JSON (or SSE) responses out, optional keep-alive. That subset is all the
:mod:`repro.serve` API needs, it runs on the stdlib event loop with zero
dependencies, and every byte on the wire is produced by code in this file
(no hidden middleware to reason about when a drain or a fault-injection
scenario misbehaves).

Limits are enforced at the parsing boundary: oversized request lines,
header blocks, and bodies are rejected with structured
:class:`HttpError` responses before any handler runs.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

#: Parser limits — generous for JSON control traffic, small enough that a
#: misbehaving client cannot balloon server memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 64 * 1024 * 1024  # uploaded PGT2 traces ride POST bodies

#: Reason phrases for the statuses this server actually emits.
REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request-level failure with an HTTP status; handlers raise it and
    the connection loop renders a JSON error body."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(f"{status}: {message}")


@dataclass
class HttpRequest:
    """One parsed request.

    Attributes:
        method: upper-cased HTTP method.
        path: decoded path component (no query string).
        query: first-value-wins query parameters.
        headers: header map with lower-cased names.
        body: raw request body (``b""`` when absent).
    """

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body parsed as a JSON object (:class:`HttpError` 400 when it
        is not one)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from None
        if not isinstance(data, dict):
            raise HttpError(400, "request body must be a JSON object")
        return data

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on a cleanly closed
    connection, :class:`HttpError` on anything malformed or oversized."""
    try:
        request_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(request_line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers") from None
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(411, "chunked bodies are not supported; send Content-Length")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds the {max_body} byte limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None

    split = urlsplit(target)
    query = {name: value for name, value in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """One complete HTTP/1.1 response as bytes."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_payload(data) -> bytes:
    return (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")


async def send_json(
    writer: asyncio.StreamWriter, status: int, data, keep_alive: bool = True
) -> None:
    writer.write(render_response(status, json_payload(data), keep_alive=keep_alive))
    await writer.drain()


# -- server-sent events --------------------------------------------------------


SSE_HEADERS = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\n"
    b"Connection: close\r\n"
    b"\r\n"
)


def format_sse(event: dict) -> bytes:
    """One SSE frame: ``id`` carries the event sequence number (clients
    resume with ``Last-Event-ID``/``?after=``), ``event`` the kind, and
    ``data`` the full JSON payload."""
    lines = []
    if "seq" in event:
        lines.append(f"id: {event['seq']}")
    if "event" in event:
        lines.append(f"event: {event['event']}")
    lines.append(f"data: {json.dumps(event, sort_keys=True)}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


async def start_sse(writer: asyncio.StreamWriter) -> None:
    writer.write(SSE_HEADERS)
    await writer.drain()


async def send_sse(writer: asyncio.StreamWriter, event: dict) -> None:
    writer.write(format_sse(event))
    await writer.drain()
