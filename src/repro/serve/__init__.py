"""repro.serve — analysis-as-a-service over the experiment engine.

A small asyncio HTTP/JSON server that owns one
:class:`~repro.engine.api.ExperimentEngine` pool and exposes job
submission, content-addressed dedupe, SSE progress streams, run reports,
and health/metrics endpoints. See :mod:`repro.serve.app` for the API
surface and :mod:`repro.serve.server` for lifecycle/embedding.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import JobServer, ServerThread, run_server
from repro.serve.service import (
    AnalysisService,
    ServeConfig,
    SpecError,
    UploadBudgetError,
)

__all__ = [
    "AnalysisService",
    "JobServer",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerThread",
    "SpecError",
    "UploadBudgetError",
    "run_server",
]
