"""Explicit dynamic dependency graph construction (small traces).

While the streaming analyzer never materializes the DDG, this module builds
it explicitly as a ``networkx.DiGraph`` — the form the paper *defines* the
analysis on (section 2.2). It exists for three reasons:

1. **Cross-validation**: node levels computed here must match the streaming
   analyzer exactly; :meth:`DynamicDependencyGraph.verify_levels` recomputes
   every level from graph edges alone.
2. **Inspection**: users can extract the actual critical-path operation
   sequence, per-node dependencies, and edge kinds (``raw``, ``war``,
   ``fence``, ``firewall``) for small kernels.
3. **Pedagogy**: the paper's Figures 1-4 are reproduced as graphs in tests.

Edge kinds and the level constraints they carry (``top`` = latency of the
edge's head node):

=========  ===================  ========================================
Kind       Constraint           Inserted when
=========  ===================  ========================================
raw        level(u) + top(v)    v reads the value u created
war        level(u) + 1         v overwrites a value u consumed
                                (destination not renamed)
fence      level(u) + 1         v is a conservative system call; u is the
                                deepest prior computation
firewall   level(u) + top(v)    u is the most recent firewall source
                                (system call or window-displaced op)
=========  ===================  ========================================

Resource constraints and branch-prediction firewalls are not supported here
(they are machine throttles rather than dependencies); use the streaming
analyzer for those.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import networkx as nx

from repro.core.config import CONSERVATIVE, AnalysisConfig
from repro.core.profile import ParallelismProfile
from repro.core.results import AnalysisResult
from repro.isa.locations import is_register_location, memory_address
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

#: Safety cap: explicit graphs are for small traces.
DEFAULT_MAX_RECORDS = 200_000


class _Entry:
    """Live-well entry extended with graph provenance."""

    __slots__ = ("level", "producer", "consumers", "preexisting")

    def __init__(self, level: int, producer: Optional[int], preexisting: bool):
        self.level = level
        self.producer = producer
        self.consumers: List[int] = []
        self.preexisting = preexisting


class DynamicDependencyGraph:
    """The materialized DDG plus its summary statistics."""

    def __init__(self, graph: nx.DiGraph, config: AnalysisConfig, records: int):
        self.graph = graph
        self.config = config
        self.records_processed = records

    # -- summaries --------------------------------------------------------

    @property
    def placed_operations(self) -> int:
        """Number of DDG nodes."""
        return self.graph.number_of_nodes()

    @property
    def critical_path_length(self) -> int:
        """DDG height in levels."""
        if not self.graph:
            return 0
        return max(level for _, level in self.graph.nodes(data="level")) + 1

    @property
    def available_parallelism(self) -> float:
        """Nodes per critical-path level."""
        depth = self.critical_path_length
        return self.placed_operations / depth if depth else 0.0

    def profile(self) -> ParallelismProfile:
        """Parallelism profile from node levels."""
        prof = ParallelismProfile()
        for _, level in self.graph.nodes(data="level"):
            prof.add(level)
        return prof

    def levels(self) -> List[int]:
        """Node levels in trace order."""
        return [self.graph.nodes[n]["level"] for n in sorted(self.graph.nodes)]

    def to_result(self) -> AnalysisResult:
        """Summarize as an :class:`AnalysisResult` (comparable with the
        streaming analyzer's output fields that the DDG defines)."""
        return AnalysisResult(
            records_processed=self.records_processed,
            placed_operations=self.placed_operations,
            critical_path_length=self.critical_path_length,
            profile=self.profile(),
            syscalls=sum(
                1 for _, kind in self.graph.nodes(data="kind") if kind == "syscall"
            ),
            firewalls=-1,
            branches=-1,
            mispredictions=0,
            peak_live_well=-1,
            lifetimes=None,
            config=self.config,
        )

    # -- validation and inspection ----------------------------------------

    def _edge_constraint(self, u: int, v: int, kind: str) -> int:
        level_u = self.graph.nodes[u]["level"]
        if kind in ("raw", "firewall"):
            return level_u + self.graph.nodes[v]["top"]
        return level_u + 1  # war, fence

    def verify_levels(self) -> None:
        """Recompute every node's level purely from edges; raise
        ``AssertionError`` on any mismatch with the stored level."""
        for v in self.graph.nodes:
            top = self.graph.nodes[v]["top"]
            computed = top - 1
            for u, _, kind in self.graph.in_edges(v, data="kind"):
                constraint = self._edge_constraint(u, v, kind)
                if constraint > computed:
                    computed = constraint
            stored = self.graph.nodes[v]["level"]
            if computed != stored:
                raise AssertionError(
                    f"node {v}: stored level {stored} != recomputed {computed}"
                )

    def critical_path_nodes(self) -> List[int]:
        """One longest dependence chain, as trace indices, deepest last."""
        if not self.graph:
            return []
        node = max(self.graph.nodes, key=lambda n: (self.graph.nodes[n]["level"], -n))
        path = [node]
        while True:
            best = None
            level = self.graph.nodes[node]["level"]
            for u, _, kind in self.graph.in_edges(node, data="kind"):
                if self._edge_constraint(u, node, kind) == level:
                    best = u
                    break
            if best is None:
                break
            path.append(best)
            node = best
        path.reverse()
        return path


def build_ddg(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
    max_records: int = DEFAULT_MAX_RECORDS,
) -> DynamicDependencyGraph:
    """Build the explicit DDG of ``trace`` under ``config``.

    Raises:
        ValueError: if the config requests resource constraints or branch
            prediction (unsupported here), or the trace exceeds
            ``max_records``.
    """
    if config is None:
        config = AnalysisConfig()
    if config.resources is not None and not config.resources.unconstrained:
        raise ValueError("explicit DDG construction does not support resource models")
    if config.branch_predictor is not None:
        raise ValueError("explicit DDG construction does not support branch predictors")
    if config.memory_disambiguation != "perfect":
        raise ValueError(
            "explicit DDG construction supports perfect disambiguation only"
        )
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)

    latency = config.latency.steps
    conservative = config.syscall_policy == CONSERVATIVE
    stack_floor = segments.stack_floor

    def renamed(location: int) -> bool:
        if is_register_location(location):
            return config.rename_registers
        if memory_address(location) >= stack_floor:
            return config.rename_stack
        return config.rename_data

    graph = nx.DiGraph()
    entries = {}
    floor = 0
    floor_source: Optional[int] = None
    deepest = -1
    deepest_node: Optional[int] = None
    window = config.window_size
    ring: List[Optional[int]] = [None] * window if window else []
    ring_pos = 0
    records = 0

    for index, record in enumerate(trace):
        records += 1
        if records > max_records:
            raise ValueError(
                f"trace exceeds max_records={max_records}; "
                "use the streaming analyzer for long traces"
            )
        if ring:
            displaced = ring[ring_pos]
            if displaced is not None:
                displaced_level = graph.nodes[displaced]["level"]
                if displaced_level + 1 > floor:
                    floor = displaced_level + 1
                    floor_source = displaced
        opclass = OpClass(record[0])

        if opclass not in PLACED_CLASSES:
            if ring:
                ring[ring_pos] = None
                ring_pos = (ring_pos + 1) % window
            continue

        if opclass is OpClass.SYSCALL:
            if not conservative:
                if ring:
                    ring[ring_pos] = None
                    ring_pos = (ring_pos + 1) % window
                continue
            top = latency[OpClass.SYSCALL]
            level = max(deepest + 1, floor - 1 + top)
            graph.add_node(index, level=level, top=top, kind="syscall", opclass=int(opclass))
            if deepest_node is not None:
                graph.add_edge(deepest_node, index, kind="fence")
            if floor_source is not None:
                graph.add_edge(floor_source, index, kind="firewall")
            if level > deepest:
                deepest = level
                deepest_node = index
            floor = level + 1
            floor_source = index
            for dest in record[2]:
                entries[dest] = _Entry(level, index, False)
            if ring:
                ring[ring_pos] = index
                ring_pos = (ring_pos + 1) % window
            continue

        top = latency[opclass]
        srcs, dests = record[1], record[2]
        level = floor - 1 + top
        raw_sources = []
        for src in srcs:
            entry = entries.get(src)
            if entry is None:
                entry = _Entry(floor - 1, None, True)
                entries[src] = entry
            if entry.producer is not None:
                raw_sources.append(entry.producer)
            candidate = entry.level + top
            if candidate > level:
                level = candidate
        war_sources = []
        for dest in dests:
            if renamed(dest):
                continue
            old = entries.get(dest)
            if old is None:
                continue
            for consumer in old.consumers:
                war_sources.append(consumer)
                candidate = graph.nodes[consumer]["level"] + 1
                if candidate > level:
                    level = candidate

        graph.add_node(index, level=level, top=top, kind="op", opclass=int(opclass))
        for producer in set(raw_sources):
            graph.add_edge(producer, index, kind="raw")
        for consumer in set(war_sources):
            if not graph.has_edge(consumer, index):
                graph.add_edge(consumer, index, kind="war")
        if floor_source is not None:
            if graph.has_edge(floor_source, index):
                # A firewall constraint (+top) dominates a war constraint
                # (+1) from the same source; upgrade so verify_levels sees
                # the binding constraint. A raw edge carries +top already.
                if graph.edges[floor_source, index]["kind"] == "war":
                    graph.edges[floor_source, index]["kind"] = "firewall"
            else:
                graph.add_edge(floor_source, index, kind="firewall")

        if level > deepest:
            deepest = level
            deepest_node = index
        for src in srcs:
            entries[src].consumers.append(index)
        for dest in dests:
            entries[dest] = _Entry(level, index, False)
        if ring:
            ring[ring_pos] = index
            ring_pos = (ring_pos + 1) % window
    return DynamicDependencyGraph(graph, config, records)
