"""Config-specialized analysis kernels over columnar traces.

:func:`analyze_columnar` is the columnar counterpart of
:func:`repro.core.analyzer.analyze`: same semantics, same
:class:`~repro.core.results.AnalysisResult`, but the per-record loop scans
the flat columns of a :class:`~repro.trace.columnar.ColumnarTrace` and is
*specialized by configuration* instead of testing every switch per record:

- **dataflow-limit kernel** — full renaming, no window, no resource
  limits, no branch predictor, perfect disambiguation, no lifetime
  collection. This is the configuration every Table 2/3 experiment runs,
  and the specialization is deep: with all storage dependencies renamed
  away and no lifetime accounting, a live-well entry is just the level at
  which its value became available, so the well is a plain ``dict[int,
  int]`` — no per-record list allocation, no WAR bookkeeping, no
  deepest-use updates. The inner loop is branch-free with respect to the
  configuration (every config test is hoisted out of the loop).
- **windowed kernel** — the dataflow-limit kernel plus the contiguous
  instruction-window ring (Figure 8 sweeps).
- **generic kernel** — everything else (partial renaming, resource
  limits, branch predictors, conservative disambiguation, lifetime
  collection): the full legacy semantics ported to columnar scanning.
  This keeps :func:`analyze_columnar` total over the configuration
  space, but generic configs revisit every operand 2-3 times per record
  and tuple records serve that access pattern better (the operands are
  already boxed), so :func:`repro.core.analyzer.analyze` routes generic
  configs through a memoized ``to_buffer()`` instead.

Shared kernel idioms: one lockstep ``zip`` over the class column and the
cached per-record operand arities with running iterators over the value
columns (one C-speed ``next`` per operand, no offset arithmetic), unrolled
one- and two-operand cases, per-placement level appends folded into a
single C-speed ``Counter`` pass for the profile, cached trace-census reads
for the class/branch tallies, inlined lifetime histogram accumulation with
one end-of-trace flush, and peak live-well size read off the final well
(the well never shrinks, so its final size *is* its peak — no per-record
probe).

Every kernel is cross-validated field-for-field against
:mod:`repro.core.reference` and the legacy analyzer over the full
configuration grid (``tests/core/test_kernels.py``).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.core.branch import make_predictor
from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.lifetimes import LifetimeStats
from repro.core.livewell import NEVER_USED
from repro.core.profile import ParallelismProfile
from repro.core.resources import ResourceState
from repro.core.results import AnalysisResult
from repro.isa.locations import MEM_BASE
from repro.obs import metrics as _obs
from repro.obs.spans import span as _span
from repro.isa.opclasses import OpClass
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

KERNEL_DATAFLOW = "dataflow"
KERNEL_WINDOWED = "windowed"
KERNEL_GENERIC = "generic"


def select_kernel(config: AnalysisConfig) -> str:
    """Which kernel :func:`analyze_columnar` will run for ``config``.

    The specialized kernels require every feature they omit to be off:
    full renaming, no resource limits, no branch predictor, perfect
    memory disambiguation, and no lifetime collection. Syscall policy and
    profile collection are handled by both specialized kernels.
    """
    plain = (
        config.rename_registers
        and config.rename_stack
        and config.rename_data
        and (config.resources is None or config.resources.unconstrained)
        and config.branch_predictor is None
        and config.memory_disambiguation != CONSERVATIVE_DISAMBIGUATION
        and not config.collect_lifetimes
    )
    if not plain:
        return KERNEL_GENERIC
    return KERNEL_DATAFLOW if config.window_size is None else KERNEL_WINDOWED


def analyze_columnar(
    trace,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
    backend: str = "python",
) -> AnalysisResult:
    """Run one Paragraph analysis over a :class:`ColumnarTrace`.

    Drop-in equivalent of :func:`repro.core.analyzer.analyze` (which
    routes here when handed a columnar trace); results are identical
    field-for-field across the whole configuration space.

    ``backend="numpy"`` routes eligible configurations through the
    vectorized kernels (:mod:`repro.core.vkernels`) and falls back to
    the python kernels — bit-identically — when NumPy is unavailable or
    the configuration is ineligible. The backend is an execution
    strategy, never a semantic knob.
    """
    if config is None:
        config = AnalysisConfig()
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)
    if backend != "python":
        from repro.core import vkernels

        if backend not in vkernels.BACKENDS:
            raise ValueError(f"unknown analysis backend {backend!r}")
        if vkernels.available() and vkernels.eligible(config):
            return vkernels.analyze_vectorized(trace, config, segments)
    kernel = select_kernel(config)
    # The span is per analysis, not per record: with metrics off this is a
    # single predicate on the null registry, keeping the kernels inside
    # their <1% overhead budget; with metrics on it prices each kernel
    # family separately (``span.kernel.scan.<kernel>.wall``).
    if not _obs.enabled():
        return _dispatch(kernel, trace, config, segments)
    with _span(f"kernel.scan.{kernel}"):
        return _dispatch(kernel, trace, config, segments)


def _dispatch(kernel, trace, config, segments) -> AnalysisResult:
    if kernel == KERNEL_DATAFLOW:
        return _kernel_dataflow(trace, config)
    if kernel == KERNEL_WINDOWED:
        return _kernel_windowed(trace, config)
    return _kernel_generic(trace, config, segments)


def _result(config, records, placed, deepest, counts, syscalls, firewalls,
            branches, mispredictions, peak, lifetimes) -> AnalysisResult:
    """``counts`` is a level -> count mapping (or None when profiling is
    off); the kernels accumulate it however is cheapest for their loop."""
    return AnalysisResult(
        records_processed=records,
        placed_operations=placed,
        critical_path_length=deepest + 1,
        profile=ParallelismProfile(counts) if config.collect_profile else None,
        syscalls=syscalls,
        firewalls=firewalls,
        branches=branches,
        mispredictions=mispredictions,
        peak_live_well=peak,
        lifetimes=lifetimes,
        config=config,
    )


def _kernel_dataflow(trace, config: AnalysisConfig) -> AnalysisResult:
    """Dataflow-limit fast path: the well maps location -> level (plain
    ints), sources only read it, destinations only overwrite it.

    The loop zips the class column against the cached per-record operand
    arities (:meth:`ColumnarTrace.operand_counts`) and consumes the value
    columns through two running iterators — one C-speed ``next`` per
    operand, no offset arithmetic and no boxed-index subscripts. One
    source and one destination (the overwhelmingly common shapes) are
    unrolled straight-line. Each placement appends its level to a flat
    list, so ``placed`` is just its length and the profile histogram is
    one C-speed :class:`Counter` pass at the end.
    """
    latency = config.latency.as_list()
    conservative = config.syscall_policy == CONSERVATIVE
    syscall_top = latency[_SYSCALL]
    syscalls, branches = trace.census()
    src_counts, dest_counts = trace.operand_counts()

    ops = trace.opclass
    src_it = iter(trace.src_values)
    dest_it = iter(trace.dest_values)

    well = {}
    well_set = well.setdefault
    levels = []
    append = levels.append
    floor_m1 = -1  # floor - 1, the only form the fast path needs
    deepest = -1  # only maintained up through the last syscall...
    mark = 0  # ...levels[mark:] hold the placements made since then

    for klass, ns, nd in zip(ops, src_counts, dest_counts):
        if klass < _SYSCALL:
            # Ordinary value-creating operation. A first-touch source
            # enters the well at floor - 1 via setdefault, which can never
            # raise the base, so no missing-key branch is needed.
            base = floor_m1
            if ns == 1:
                level = well_set(next(src_it), floor_m1)
                if level > base:
                    base = level
            elif ns == 2:
                level = well_set(next(src_it), floor_m1)
                if level > base:
                    base = level
                level = well_set(next(src_it), floor_m1)
                if level > base:
                    base = level
            elif ns:
                for _ in range(ns):
                    level = well_set(next(src_it), floor_m1)
                    if level > base:
                        base = level
            level = base + latency[klass]
            append(level)
            if nd == 1:
                well[next(dest_it)] = level
            elif nd:
                for _ in range(nd):
                    well[next(dest_it)] = level
        else:
            # Control record or syscall: sources are never levels here,
            # but the iterators must stay aligned with the class column.
            if ns == 1:
                next(src_it)
            elif ns:
                for _ in range(ns):
                    next(src_it)
            if klass == _SYSCALL and conservative:
                if len(levels) > mark:
                    since = max(levels[mark:])
                    if since > deepest:
                        deepest = since
                level = deepest + 1
                low = floor_m1 + syscall_top
                if low > level:
                    level = low
                append(level)
                deepest = level
                floor_m1 = level
                mark = len(levels)
                for _ in range(nd):
                    well[next(dest_it)] = level
            elif nd:
                for _ in range(nd):
                    next(dest_it)

    if len(levels) > mark:
        since = max(levels[mark:])
        if since > deepest:
            deepest = since
    counts = dict(Counter(levels)) if config.collect_profile else None
    return _result(
        config, len(ops), len(levels), deepest, counts, syscalls,
        syscalls if conservative else 0, branches, 0, len(well), None,
    )


def _kernel_windowed(trace, config: AnalysisConfig) -> AnalysisResult:
    """The dataflow-limit kernel plus the contiguous instruction window:
    a ring of completion levels whose displaced entry raises the floor."""
    latency = config.latency.as_list()
    conservative = config.syscall_policy == CONSERVATIVE
    syscall_top = latency[_SYSCALL]
    syscalls, branches = trace.census()
    src_counts, dest_counts = trace.operand_counts()

    ops = trace.opclass
    src_it = iter(trace.src_values)
    dest_it = iter(trace.dest_values)

    window = config.window_size
    ring = [None] * window
    ring_pos = 0

    well = {}
    well_set = well.setdefault
    levels = []
    append = levels.append
    floor = 0
    deepest = -1  # only maintained up through the last syscall...
    mark = 0  # ...levels[mark:] hold the placements made since then

    for klass, ns, nd in zip(ops, src_counts, dest_counts):
        old = ring[ring_pos]
        if old is not None and old >= floor:
            floor = old + 1
        if klass < _SYSCALL:
            base = floor - 1
            first_touch = base
            if ns == 1:
                level = well_set(next(src_it), first_touch)
                if level > base:
                    base = level
            elif ns == 2:
                level = well_set(next(src_it), first_touch)
                if level > base:
                    base = level
                level = well_set(next(src_it), first_touch)
                if level > base:
                    base = level
            elif ns:
                for _ in range(ns):
                    level = well_set(next(src_it), first_touch)
                    if level > base:
                        base = level
            level = base + latency[klass]
            append(level)
            if nd == 1:
                well[next(dest_it)] = level
            elif nd:
                for _ in range(nd):
                    well[next(dest_it)] = level
            ring[ring_pos] = level
        else:
            if ns == 1:
                next(src_it)
            elif ns:
                for _ in range(ns):
                    next(src_it)
            if klass == _SYSCALL and conservative:
                if len(levels) > mark:
                    since = max(levels[mark:])
                    if since > deepest:
                        deepest = since
                level = deepest + 1
                low = floor - 1 + syscall_top
                if low > level:
                    level = low
                append(level)
                deepest = level
                floor = level + 1
                mark = len(levels)
                for _ in range(nd):
                    well[next(dest_it)] = level
                ring[ring_pos] = level
            else:
                if nd:
                    for _ in range(nd):
                        next(dest_it)
                ring[ring_pos] = None
        ring_pos += 1
        if ring_pos == window:
            ring_pos = 0

    if len(levels) > mark:
        since = max(levels[mark:])
        if since > deepest:
            deepest = since
    counts = dict(Counter(levels)) if config.collect_profile else None
    return _result(
        config, len(ops), len(levels), deepest, counts, syscalls,
        syscalls if conservative else 0, branches, 0, len(well), None,
    )


def _kernel_generic(trace, config: AnalysisConfig, segments: SegmentMap) -> AnalysisResult:
    """Full-semantics fallback: every analyzer feature, columnar scanning.

    Live-well entries are ``[level, deepest_use, uses, preexisting]`` lists
    exactly as in the legacy analyzer; lifetime histograms are accumulated
    inline (no per-eviction method call) and flushed once at the end.
    """
    latency = config.latency.as_list()
    rename_regs = config.rename_registers
    rename_stack = config.rename_stack
    rename_data = config.rename_data
    all_renamed = rename_regs and rename_stack and rename_data
    stack_bound = MEM_BASE + segments.stack_floor
    conservative = config.syscall_policy == CONSERVATIVE
    syscall_top = latency[_SYSCALL]
    branch_top = latency[_BRANCH]
    collect_profile = config.collect_profile
    collect_lifetimes = config.collect_lifetimes
    life_hist = {}
    share_hist = {}
    life_get = life_hist.get
    share_get = share_hist.get
    resources = None
    if config.resources is not None and not config.resources.unconstrained:
        resources = ResourceState(config.resources)
    predictor = make_predictor(config.branch_predictor) if config.branch_predictor else None
    conservative_mem = config.memory_disambiguation == CONSERVATIVE_DISAMBIGUATION
    mem_store_level = NEVER_USED
    mem_deepest_access = NEVER_USED
    conditional = FLAG_CONDITIONAL
    taken = FLAG_TAKEN

    ops = trace.opclass
    src_val = trace.src_values
    dest_val = trace.dest_values
    src_hi = iter(trace.src_offsets)
    dest_hi = iter(trace.dest_offsets)
    next(src_hi)
    next(dest_hi)

    window = config.window_size
    ring = [None] * window if window else None
    ring_pos = 0

    well = {}
    well_get = well.get
    counts = []
    counts_len = 0

    never = NEVER_USED
    floor = 0
    deepest = -1
    placed = 0
    syscalls = 0
    firewalls = 0
    branches = 0
    mispredictions = 0
    s_lo = 0
    d_lo = 0

    for klass, flags, aux, s_hi, d_hi in zip(
        ops, trace.flags, trace.aux, src_hi, dest_hi
    ):
        if ring is not None:
            old = ring[ring_pos]
            if old is not None and old >= floor:
                floor = old + 1
        if klass >= _BRANCH:  # BRANCH / JUMP / NOP: not placed in the DDG
            if klass == _BRANCH and flags & conditional:
                branches += 1
                if predictor is not None:
                    actual = bool(flags & taken)
                    predicted = predictor.predict(aux)
                    predictor.update(aux, actual)
                    if predicted != actual:
                        mispredictions += 1
                        base = floor - 1
                        for src in src_val[s_lo:s_hi]:
                            entry = well_get(src)
                            if entry is not None and entry[0] > base:
                                base = entry[0]
                        resolve = base + branch_top
                        if resolve > floor:
                            floor = resolve
                            firewalls += 1
            if ring is not None:
                ring[ring_pos] = None
                ring_pos += 1
                if ring_pos == window:
                    ring_pos = 0
            s_lo = s_hi
            d_lo = d_hi
            continue

        if klass == _SYSCALL:
            syscalls += 1
            if not conservative:
                if ring is not None:
                    ring[ring_pos] = None
                    ring_pos += 1
                    if ring_pos == window:
                        ring_pos = 0
                s_lo = s_hi
                d_lo = d_hi
                continue
            level = deepest + 1
            low = floor - 1 + syscall_top
            if low > level:
                level = low
            firewalls += 1
            placed += 1
            if collect_profile:
                if level >= counts_len:
                    counts.extend([0] * (level + 1 - counts_len))
                    counts_len = level + 1
                counts[level] += 1
            if level > deepest:
                deepest = level
            floor = level + 1
            for dest in dest_val[d_lo:d_hi]:
                old_entry = well_get(dest)
                if collect_lifetimes and old_entry is not None and not old_entry[3]:
                    uses = old_entry[2]
                    life = old_entry[1] - old_entry[0] if uses else 0
                    life_hist[life] = life_get(life, 0) + 1
                    share_hist[uses] = share_get(uses, 0) + 1
                well[dest] = [level, never, 0, False]
            if ring is not None:
                ring[ring_pos] = level
                ring_pos += 1
                if ring_pos == window:
                    ring_pos = 0
            s_lo = s_hi
            d_lo = d_hi
            continue

        # Ordinary value-creating operation.
        top = latency[klass]
        base = floor - 1
        first_touch = base
        for src in src_val[s_lo:s_hi]:
            entry = well_get(src)
            if entry is None:
                well[src] = [first_touch, never, 0, True]
            elif entry[0] > base:
                base = entry[0]
        level = base + top

        if not all_renamed:
            for dest in dest_val[d_lo:d_hi]:
                if dest < MEM_BASE:
                    renamed = rename_regs
                elif dest >= stack_bound:
                    renamed = rename_stack
                else:
                    renamed = rename_data
                if not renamed:
                    entry = well_get(dest)
                    if entry is not None:
                        war = entry[1] + 1
                        if war > level:
                            level = war

        if conservative_mem:
            if klass == _LOAD:
                if mem_store_level + top > level:
                    level = mem_store_level + top
            elif klass == _STORE:
                if mem_deepest_access + 1 > level:
                    level = mem_deepest_access + 1

        if resources is not None:
            level = resources.place(klass, level)

        placed += 1
        if collect_profile:
            if level >= counts_len:
                counts.extend([0] * (level + 1 - counts_len))
                counts_len = level + 1
            counts[level] += 1
        if level > deepest:
            deepest = level
        if conservative_mem and (klass == _LOAD or klass == _STORE):
            if level > mem_deepest_access:
                mem_deepest_access = level
            if klass == _STORE and level > mem_store_level:
                mem_store_level = level

        for src in src_val[s_lo:s_hi]:
            entry = well[src]
            if level > entry[1]:
                entry[1] = level
            entry[2] += 1

        for dest in dest_val[d_lo:d_hi]:
            old_entry = well_get(dest)
            if collect_lifetimes and old_entry is not None and not old_entry[3]:
                uses = old_entry[2]
                life = old_entry[1] - old_entry[0] if uses else 0
                life_hist[life] = life_get(life, 0) + 1
                share_hist[uses] = share_get(uses, 0) + 1
            well[dest] = [level, never, 0, False]

        if ring is not None:
            ring[ring_pos] = level
            ring_pos += 1
            if ring_pos == window:
                ring_pos = 0
        s_lo = s_hi
        d_lo = d_hi

    lifetimes = None
    if collect_lifetimes:
        for entry in well.values():
            if not entry[3]:
                uses = entry[2]
                life = entry[1] - entry[0] if uses else 0
                life_hist[life] = life_get(life, 0) + 1
                share_hist[uses] = share_get(uses, 0) + 1
        lifetimes = LifetimeStats(
            lifetime_histogram=life_hist,
            sharing_histogram=share_hist,
            values_created=sum(share_hist.values()),
            total_uses=sum(uses * count for uses, count in share_hist.items()),
        )

    profile_counts = None
    if collect_profile:
        profile_counts = {
            level: count for level, count in enumerate(counts) if count
        }
    return _result(
        config, len(ops), placed, deepest, profile_counts, syscalls,
        firewalls, branches, mispredictions, len(well), lifetimes,
    )
