"""Vectorized (NumPy) placement kernels over columnar traces.

The python kernels (:mod:`repro.core.kernels`) walk records one at a
time; at ~9 grids/s on the generic configuration that scan is the
repo's hottest loop. This module evaluates the *same* placement rule —
``level = max(floor-1, sources..., WAR, memory) + top`` — over whole
level-frontier batches instead:

1. **Index** (:func:`_build_index`): zero-copy ``numpy.frombuffer``
   views over the existing ``array('q')``/shared-memory columns are
   sorted once by (location, access ordinal) to recover, with a handful
   of prefix scans, every RAW edge (last write before each read), every
   WAR edge (each read to the next write of its location), and the
   token structure (which write each read binds to) that the live-well
   dict encodes implicitly.
2. **Batched Kahn** (:func:`_execute`): records between conservative
   syscalls (additionally capped at the window size, so every displaced
   ring slot is already resolved) form blocks; each block seeds its
   floor term in one vector op (:func:`_seed_frontier_batch`) and then
   resolves in topological *frontiers* — one vector ``maximum.at`` per
   frontier, with a scalar cascade for narrow frontiers (long dependence
   chains) where vector dispatch overhead would dominate. Conservative
   syscalls are single scalar steps between blocks.
3. **Token stats**: uses, deepest-use, lifetimes, and the exported
   live well all fall out of per-token ``bincount``/``maximum.at``
   reductions over the same index.

Results are bit-identical to the python kernels for every *eligible*
configuration — all renaming combinations, windows, both syscall
policies, conservative memory disambiguation, lifetimes, profiles, and
mid-stream :func:`advance_batch` continuation. Ineligible (and handed
back to the python loops): branch predictors and constrained resource
models, whose greedy per-record state has no batched formulation.
NumPy itself is optional — with it absent :func:`available` is False
and every caller falls back to the python kernels.

Tiny windows are a *performance* caveat, not a correctness one: a
window of ``w`` caps blocks at ``w`` records, so ``w=1`` degenerates to
per-record python dispatch. The backend stays exact there; it is simply
not faster.
"""

from __future__ import annotations

from typing import Optional

try:  # NumPy is an optional extra; everything degrades without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.kernels import KERNEL_GENERIC
from repro.core.lifetimes import LifetimeStats
from repro.core.livewell import NEVER_USED
from repro.core.profile import ParallelismProfile
from repro.core.results import AnalysisResult
from repro.isa.locations import MEM_BASE
from repro.isa.opclasses import OpClass
from repro.obs import metrics as _obs
from repro.obs.spans import span as _span
from repro.trace.record import FLAG_CONDITIONAL
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

#: Backend knob values accepted across analyze()/CLI/jobs.
BACKEND_PYTHON = "python"
BACKEND_NUMPY = "numpy"
BACKENDS = (BACKEND_PYTHON, BACKEND_NUMPY)

#: Unresolved-level sentinel (same magnitude as NEVER_USED; any placement
#: seeded from it stays impossibly negative and is visibly wrong).
_NEG = -(1 << 60)
_BIG = 1 << 62

#: Frontiers at or below this width resolve through the scalar cascade;
#: wider ones through one vector round per frontier. Long dependence
#: chains (frontier width ~1) are where per-round numpy dispatch
#: overhead would otherwise dominate the whole analysis.
NARROW_FRONTIER = 96


def available() -> bool:
    """True when NumPy is importable (the backend can run at all)."""
    return _np is not None


def eligible(config: AnalysisConfig) -> bool:
    """True when ``config`` has an exact vectorized formulation.

    Branch predictors and constrained resource models keep greedy
    per-record state (pattern tables, absolute-level occupancy) that a
    batched evaluation cannot reproduce; everything else — renaming
    combinations, windows, syscall policies, conservative memory
    disambiguation, lifetimes, profiles — is exact.
    """
    return config.branch_predictor is None and (
        config.resources is None or config.resources.unconstrained
    )


def _col(column):
    """Zero-copy int64 view of one columnar array (array('q') or a
    shared-memory/mmap memoryview — any contiguous buffer of q)."""
    if len(column):
        return _np.frombuffer(memoryview(column), dtype=_np.int64)
    return _np.empty(0, dtype=_np.int64)


def _seed_frontier_batch(C, recs, base) -> None:
    """Fold a block's floor term into the level bounds of its records.

    Module-level on purpose: :func:`_execute` late-binds it, so the
    verification harness can monkeypatch a deliberate batch-boundary
    off-by-one (the ``vkernel-batch-skew`` mutation) without reloads.
    """
    _np.maximum.at(C, recs, base)


# -- the access index --------------------------------------------------------


def _empty_index(n, ops, ordinary, syscall, conservative, flags):
    z = _np.empty(0, dtype=_np.int64)
    zb = _np.empty(0, dtype=bool)
    placed_mask = ordinary | syscall if conservative else ordinary
    return {
        "n": n,
        "ops": ops,
        "ordinary": ordinary,
        "syscall": syscall,
        "syscall_recs": _np.nonzero(syscall)[0],
        "placed_mask": placed_mask,
        "branches": int(
            ((ops == _BRANCH) & ((flags & FLAG_CONDITIONAL) != 0)).sum()
        ),
        "n_syscalls": int(syscall.sum()),
        "raw_src": z, "raw_dst": z,
        "war_src": z, "war_dst": z, "war_loc": z,
        "read_rec": z, "read_tok": z,
        "base_rec": z, "base_grp": z,
        "nwrites": 0, "groups": 0,
        "tok_rec": z, "tok_last": zb,
        "g_loc": z, "g_loc_list": [],
        "g_last_tok": z, "g_first_w_rec": z,
        "g_first_rec": z, "g_first_is_read": zb,
        "memrec": z, "is_store": zb,
    }


def _build_index(trace, conservative: bool, start: int, end: int) -> dict:
    """One sort of the batch's access stream -> every dependence edge and
    the token structure the live well encodes. Record ids are batch-local
    (record ``start + r`` is ``r``); access ordinals are ``2r`` for reads
    and ``2r + 1`` for writes, so a record's reads bind strictly before
    its own writes and duplicate destinations keep slot order (the sort
    is stable), matching the python kernels' read-then-overwrite order.
    """
    ops = _col(trace.opclass)[start:end]
    flags = _col(trace.flags)[start:end]
    soff = _col(trace.src_offsets)
    doff = _col(trace.dest_offsets)
    n = end - start
    ordinary = ops < _SYSCALL
    syscall = ops == _SYSCALL

    s_lo, s_hi = int(soff[start]), int(soff[end])
    d_lo, d_hi = int(doff[start]), int(doff[end])
    rec_s = _np.repeat(
        _np.arange(n, dtype=_np.int64), _np.diff(soff[start : end + 1])
    )
    rec_d = _np.repeat(
        _np.arange(n, dtype=_np.int64), _np.diff(doff[start : end + 1])
    )

    rmask = ordinary[rec_s]
    read_rec = rec_s[rmask]
    read_loc = _col(trace.src_values)[s_lo:s_hi][rmask]

    wsel = ordinary[rec_d]
    if conservative:
        wsel = wsel | syscall[rec_d]
    w_rec = rec_d[wsel]
    w_loc = _col(trace.dest_values)[d_lo:d_hi][wsel]

    nreads = len(read_rec)
    nwrites = len(w_rec)
    M = nreads + nwrites
    if not M:
        return _empty_index(n, ops, ordinary, syscall, conservative, flags)

    loc = _np.concatenate([read_loc, w_loc])
    ordn = _np.concatenate([2 * read_rec, 2 * w_rec + 1])
    rec = _np.concatenate([read_rec, w_rec])
    isw = _np.zeros(M, dtype=bool)
    isw[nreads:] = True

    order = _np.lexsort((ordn, loc))
    loc_s = loc[order]
    rec_srt = rec[order]
    isw_s = isw[order]
    pos = _np.arange(M, dtype=_np.int64)

    new_grp = _np.empty(M, dtype=bool)
    new_grp[0] = True
    new_grp[1:] = loc_s[1:] != loc_s[:-1]
    grp_id = _np.cumsum(new_grp) - 1
    grp_first = pos[new_grp]
    G = len(grp_first)
    grp_last = _np.empty(G, dtype=_np.int64)
    grp_last[:-1] = grp_first[1:] - 1
    grp_last[-1] = M - 1

    # Per row: write ordinal so far, last write at <= row, next write >= row.
    widx = _np.cumsum(isw_s) - 1
    wpos = _np.where(isw_s, pos, -1)
    last_w = _np.maximum.accumulate(wpos)
    npos = _np.where(isw_s, pos, _BIG)
    next_w = _np.minimum.accumulate(npos[::-1])[::-1]

    read_rows = ~isw_s
    r_last_w = last_w[read_rows]
    r_next_w = next_w[read_rows]
    r_grp = grp_id[read_rows]
    r_rec = rec_srt[read_rows]
    r_loc = loc_s[read_rows]

    # RAW: each read binds to the last write of its location, when that
    # write is in-batch; otherwise to the group's base token (an incoming
    # or first-touch well entry).
    bound = r_last_w >= grp_first[r_grp]
    safe_last = _np.maximum(r_last_w, 0)
    read_tok = _np.where(bound, widx[safe_last], nwrites + r_grp)
    raw_src = rec_srt[safe_last][bound]
    raw_dst = r_rec[bound]
    base_rec = r_rec[~bound]
    base_grp = r_grp[~bound]

    # WAR: each read constrains the *next* write of its location (+1).
    # Self-edges drop (a record reads before it overwrites); syscall
    # destinations drop (syscall placement never consults the well).
    war_ok = r_next_w <= grp_last[r_grp]
    war_dst = rec_srt[_np.minimum(r_next_w, M - 1)]
    keep = war_ok & (war_dst != r_rec) & ~syscall[_np.maximum(war_dst, 0)]

    # Token structure: token t is the t'th write in (location, ordinal)
    # order; base tokens (one per location group) follow at nwrites + g.
    w_pos = pos[isw_s]
    w_grp = grp_id[isw_s]
    tok_rec = rec_srt[isw_s]
    g_last_wpos = _np.maximum.reduceat(wpos, grp_first)
    tok_last = w_pos == g_last_wpos[w_grp]
    g_last_tok = _np.where(
        g_last_wpos >= 0, widx[_np.maximum(g_last_wpos, 0)], -1
    )
    g_first_wpos = _np.minimum.reduceat(npos, grp_first)
    g_first_w_rec = _np.where(
        g_first_wpos < _BIG, rec_srt[_np.minimum(g_first_wpos, M - 1)], -1
    )
    g_loc = loc_s[grp_first]
    g_first_rec = rec_srt[grp_first]
    g_first_is_read = ~isw_s[grp_first]

    memmask = (ops == _LOAD) | (ops == _STORE)
    memrec = _np.nonzero(memmask)[0]

    placed_mask = ordinary | syscall if conservative else ordinary
    return {
        "n": n,
        "ops": ops,
        "ordinary": ordinary,
        "syscall": syscall,
        "syscall_recs": _np.nonzero(syscall)[0],
        "placed_mask": placed_mask,
        "branches": int(
            ((ops == _BRANCH) & ((flags & FLAG_CONDITIONAL) != 0)).sum()
        ),
        "n_syscalls": int(syscall.sum()),
        "raw_src": raw_src, "raw_dst": raw_dst,
        "war_src": r_rec[keep], "war_dst": war_dst[keep], "war_loc": r_loc[keep],
        "read_rec": r_rec,
        "read_tok": read_tok,
        "base_rec": base_rec, "base_grp": base_grp,
        "nwrites": nwrites, "groups": G,
        "tok_rec": tok_rec, "tok_last": tok_last,
        "g_loc": g_loc, "g_loc_list": g_loc.tolist(),
        "g_last_tok": g_last_tok, "g_first_w_rec": g_first_w_rec,
        "g_first_rec": g_first_rec, "g_first_is_read": g_first_is_read,
        "memrec": memrec, "is_store": ops[memrec] == _STORE,
    }


def _get_index(trace, conservative: bool, start: int, end: int) -> dict:
    """Batch index, cached on the trace (the sort does not depend on the
    analysis config beyond the syscall policy, so config sweeps and
    repeated backend runs over one trace pay it once)."""
    key = (bool(conservative), start, end)
    cache = getattr(trace, "_vk_index", None)
    if cache is not None and key in cache:
        return cache[key]
    index = _build_index(trace, conservative, start, end)
    if cache is not None:
        cache[key] = index
    return index


# -- the batched engine ------------------------------------------------------


def _hist_update(hist: dict, values) -> None:
    unique, counts = _np.unique(values, return_counts=True)
    get = hist.get
    for key, count in zip(unique.tolist(), counts.tolist()):
        hist[key] = get(key, 0) + count


def _profile_counts(plv) -> dict:
    """Level -> count histogram of the placed levels."""
    if not len(plv):
        return {}
    if int(plv.min()) >= 0:
        counts = _np.bincount(plv)
        return {
            level: count
            for level, count in enumerate(counts.tolist())
            if count
        }
    values, counts = _np.unique(plv, return_counts=True)
    return dict(zip(values.tolist(), counts.tolist()))


def _execute(trace, config: AnalysisConfig, segments: SegmentMap,
             start: int, end: int, fr) -> Optional[dict]:
    """Run records ``[start, end)`` vectorized.

    With ``fr`` (a :class:`repro.core.stream.Frontier`) the incoming
    state seeds the batch and the outgoing state is written back —
    exactly :func:`repro.core.stream.advance`. With ``fr=None`` this is
    a fresh whole-trace analysis and returns the raw result fields
    (well export and per-record floors are skipped entirely).
    """
    conservative = config.syscall_policy == CONSERVATIVE
    conservative_mem = config.memory_disambiguation == CONSERVATIVE_DISAMBIGUATION
    collect_lifetimes = config.collect_lifetimes
    export = fr is not None
    generic_well = export and fr.kernel == KERNEL_GENERIC

    index = _get_index(trace, conservative, start, end)
    n = index["n"]
    ops = index["ops"]
    ordinary = index["ordinary"]
    lat = _np.asarray(config.latency.as_list(), dtype=_np.int64)
    top = lat[_np.minimum(ops, len(lat) - 1)] if n else lat[:0]
    sys_top = int(lat[_SYSCALL])
    window = config.window_size
    rename_regs = config.rename_registers
    rename_stack = config.rename_stack
    rename_data = config.rename_data
    all_renamed = rename_regs and rename_stack and rename_data
    stack_bound = MEM_BASE + segments.stack_floor
    G = index["groups"]
    nwrites = index["nwrites"]

    # Incoming state (fresh defaults when fr is None).
    if export:
        in_floor_m1 = fr.floor - 1
        in_deepest = fr.deepest
        in_mem_store = fr.mem_store_level
        in_mem_acc = fr.mem_deepest_access
        well = fr.well
    else:
        in_floor_m1 = -1
        in_deepest = -1
        in_mem_store = in_mem_acc = NEVER_USED
        well = None

    # Levels, with the window's displacement slots prepended: record r
    # lives at lvlx[W + r], so the slot its placement displaces (record
    # r - window) is lvlx[r] — one array serves as ring, working levels,
    # and exported ring, with no copying.
    W = window or 0
    lvlx = _np.full(W + n, _NEG, dtype=_np.int64)
    if W and export and fr.ring is not None:
        ordered = fr.ring[fr.ring_pos :] + fr.ring[: fr.ring_pos]
        lvlx[:W] = [_NEG if v is None else v for v in ordered]
    lvl = lvlx[W:]
    C = _np.full(n, _NEG, dtype=_np.int64)

    # Incoming well entries, one slot per in-batch location group.
    g_in = None
    if export and well and G:
        get = well.get
        entries = [get(loc) for loc in index["g_loc_list"]]
        g_in = _np.array([e is not None for e in entries], dtype=bool)
        if not g_in.any():
            g_in = None
    if g_in is not None:
        if generic_well:
            g_in_level = _np.fromiter(
                (e[0] if e is not None else _NEG for e in entries),
                dtype=_np.int64, count=G,
            )
            g_in_deep = _np.fromiter(
                (e[1] if e is not None else NEVER_USED for e in entries),
                dtype=_np.int64, count=G,
            )
            g_in_uses = _np.fromiter(
                (e[2] if e is not None else 0 for e in entries),
                dtype=_np.int64, count=G,
            )
            g_in_pre = _np.fromiter(
                (bool(e[3]) if e is not None else False for e in entries),
                dtype=bool, count=G,
            )
        else:
            g_in_level = _np.fromiter(
                (e if e is not None else _NEG for e in entries),
                dtype=_np.int64, count=G,
            )

    # -- dependence edges ----------------------------------------------------
    raw_dst = index["raw_dst"]
    e_src = [index["raw_src"]]
    e_dst = [raw_dst]
    e_w = [top[raw_dst]]
    if not all_renamed:
        war_loc = index["war_loc"]
        part_reg = war_loc < MEM_BASE
        part_stack = war_loc >= stack_bound
        keep = _np.zeros(len(war_loc), dtype=bool)
        if not rename_regs:
            keep |= part_reg
        if not rename_stack:
            keep |= part_stack
        if not rename_data:
            keep |= ~(part_reg | part_stack)
        e_src.append(index["war_src"][keep])
        e_dst.append(index["war_dst"][keep])
        e_w.append(_np.ones(int(keep.sum()), dtype=_np.int64))

    memrec = index["memrec"]
    is_store = index["is_store"]
    if conservative_mem and len(memrec):
        k = len(memrec)
        ar = _np.arange(k, dtype=_np.int64)
        last_st = _np.maximum.accumulate(_np.where(is_store, ar, -1))
        loads = _np.nonzero(~is_store)[0]
        lsel = last_st[loads]
        ok = lsel >= 0
        e_src.append(memrec[lsel[ok]])
        e_dst.append(memrec[loads[ok]])
        e_w.append(top[memrec[loads[ok]]])
        next_st = _np.minimum.accumulate(
            _np.where(is_store, ar, _BIG)[::-1]
        )[::-1]
        nxt = _np.empty(k, dtype=_np.int64)
        nxt[:-1] = next_st[1:]
        nxt[-1] = _BIG
        ok2 = nxt < _BIG
        e_src.append(memrec[ok2])
        e_dst.append(memrec[nxt[ok2]])
        e_w.append(_np.ones(int(ok2.sum()), dtype=_np.int64))
        # Incoming memory levels constrain the batch's prefix: loads
        # before the first in-batch store see the carried store level;
        # the first store sees the carried deepest access (later stores
        # are dominated via the in-batch chain).
        if in_mem_store != NEVER_USED:
            pre_loads = memrec[loads[lsel < 0]]
            if len(pre_loads):
                _np.maximum.at(C, pre_loads, in_mem_store + top[pre_loads])
        if in_mem_acc != NEVER_USED:
            stores = _np.nonzero(is_store)[0]
            if len(stores):
                first_store = int(memrec[stores[0]])
                bound = in_mem_acc + 1
                if bound > C[first_store]:
                    C[first_store] = bound

    e_src = _np.concatenate(e_src)
    e_dst = _np.concatenate(e_dst)
    e_w = _np.concatenate(e_w)

    # Incoming-well seeds: base reads start from the carried level; the
    # first in-batch writer of a non-renamed location starts past the
    # carried deepest use (python's WAR term against the incoming entry).
    if g_in is not None:
        base_rec = index["base_rec"]
        if len(base_rec):
            sel = g_in[index["base_grp"]]
            if sel.any():
                recs = base_rec[sel]
                _np.maximum.at(
                    C, recs, g_in_level[index["base_grp"][sel]] + top[recs]
                )
        if generic_well and not all_renamed:
            fw = index["g_first_w_rec"]
            gl = index["g_loc"]
            preg = gl < MEM_BASE
            pstk = gl >= stack_bound
            nonren = _np.zeros(G, dtype=bool)
            if not rename_regs:
                nonren |= preg
            if not rename_stack:
                nonren |= pstk
            if not rename_data:
                nonren |= ~(preg | pstk)
            cand = (
                g_in
                & (fw >= 0)
                & (g_in_deep != NEVER_USED)
                & nonren
                & ~index["syscall"][_np.maximum(fw, 0)]
            )
            if cand.any():
                _np.maximum.at(C, fw[cand], g_in_deep[cand] + 1)

    # -- block plan ----------------------------------------------------------
    # Blocks are the records between conservative syscalls, additionally
    # capped at the window size so every displaced slot a block reads was
    # placed by an earlier block (or carried in).
    sys_list = index["syscall_recs"].tolist() if conservative else []
    blocks = []
    prev = 0
    for s in sys_list + [n]:
        lo = prev
        while lo < s:
            hi = min(lo + W, s) if W else s
            blocks.append((lo, hi))
            lo = hi
        prev = s + 1

    bs = _np.asarray([b[0] for b in blocks], dtype=_np.int64)
    nblocks = len(blocks)
    if len(e_src) and nblocks:
        eb_src = _np.searchsorted(bs, e_src, side="right") - 1
        eb_dst = _np.searchsorted(bs, e_dst, side="right") - 1
        intra = eb_src == eb_dst
    else:
        intra = _np.zeros(len(e_src), dtype=bool)

    i_src = e_src[intra]
    i_dst = e_dst[intra]
    i_w = e_w[intra]
    order = _np.argsort(i_src, kind="stable")
    i_src = i_src[order]
    i_dst = i_dst[order]
    i_w = i_w[order]
    indptr = _np.searchsorted(i_src, _np.arange(n + 1))
    indeg = _np.bincount(i_dst, minlength=n)

    cross = ~intra
    c_src = e_src[cross]
    c_dst = e_dst[cross]
    c_w = e_w[cross]
    if len(c_src):
        c_blk = eb_dst[cross]
        order = _np.argsort(c_blk, kind="stable")
        c_src = c_src[order]
        c_dst = c_dst[order]
        c_w = c_w[order]
        c_bounds = _np.searchsorted(c_blk[order], _np.arange(nblocks + 1))
    else:
        c_bounds = _np.zeros(nblocks + 1, dtype=_np.int64)

    floorv = _np.empty(n, dtype=_np.int64) if export else None
    arange_n = _np.arange(n, dtype=_np.int64)
    mv_C = memoryview(C)
    mv_lvl = memoryview(lvl)
    mv_indeg = memoryview(indeg)
    mv_dst = memoryview(i_dst)
    mv_w = memoryview(i_w)
    mv_ptr = memoryview(indptr)
    seed = _seed_frontier_batch  # late-bound for the mutation harness

    floor_m1 = in_floor_m1
    deepest = in_deepest
    si = 0
    nsys = len(sys_list)
    for b in range(nblocks):
        lo, hi = blocks[b]
        while si < nsys and sys_list[si] < lo:
            s = sys_list[si]
            si += 1
            if W:
                displaced = int(lvlx[s])
                if displaced > floor_m1:
                    floor_m1 = displaced
            level = deepest + 1
            low = floor_m1 + sys_top
            if low > level:
                level = low
            lvl[s] = level
            if floorv is not None:
                floorv[s] = floor_m1
            deepest = level
            floor_m1 = level
        if W:
            fl = _np.maximum(_np.maximum.accumulate(lvlx[lo:hi]), floor_m1)
            if floorv is not None:
                floorv[lo:hi] = fl
            next_floor_m1 = int(fl[-1])
        else:
            fl = None
            if floorv is not None:
                floorv[lo:hi] = floor_m1
        recs = arange_n[lo:hi][ordinary[lo:hi]]
        if len(recs):
            if fl is not None:
                seed(C, recs, fl[recs - lo] + top[recs])
            else:
                seed(C, recs, floor_m1 + top[recs])
            a, b2 = int(c_bounds[b]), int(c_bounds[b + 1])
            if b2 > a:
                _np.maximum.at(C, c_dst[a:b2], lvl[c_src[a:b2]] + c_w[a:b2])
            frontier = recs[indeg[recs] == 0]
            narrow = None
            while True:
                if narrow is None and len(frontier) <= NARROW_FRONTIER:
                    narrow = frontier.tolist()
                if narrow is not None:
                    # Scalar cascade over memoryviews until it widens.
                    while narrow and len(narrow) <= NARROW_FRONTIER:
                        nxt = []
                        for r in narrow:
                            m = mv_C[r]
                            mv_lvl[r] = m
                            for j in range(mv_ptr[r], mv_ptr[r + 1]):
                                d = mv_dst[j]
                                v = m + mv_w[j]
                                if v > mv_C[d]:
                                    mv_C[d] = v
                                deg = mv_indeg[d] - 1
                                mv_indeg[d] = deg
                                if not deg:
                                    nxt.append(d)
                        narrow = nxt
                    if not narrow:
                        break
                    frontier = _np.asarray(narrow, dtype=_np.int64)
                    narrow = None
                lvl[frontier] = C[frontier]
                starts = indptr[frontier]
                cnt = indptr[frontier + 1] - starts
                tot = int(cnt.sum())
                if not tot:
                    break
                offs = _np.repeat(
                    starts - _np.concatenate(([0], _np.cumsum(cnt[:-1]))), cnt
                )
                flat = offs + _np.arange(tot)
                dsts = i_dst[flat]
                _np.maximum.at(C, dsts, C[i_src[flat]] + i_w[flat])
                unique, counts = _np.unique(dsts, return_counts=True)
                indeg[unique] -= counts
                frontier = unique[indeg[unique] == 0]
                if not len(frontier):
                    break
            block_max = int(lvl[recs].max())
            if block_max > deepest:
                deepest = block_max
        if W:
            floor_m1 = next_floor_m1
    while si < nsys:
        s = sys_list[si]
        si += 1
        if W:
            displaced = int(lvlx[s])
            if displaced > floor_m1:
                floor_m1 = displaced
        level = deepest + 1
        low = floor_m1 + sys_top
        if low > level:
            level = low
        lvl[s] = level
        if floorv is not None:
            floorv[s] = floor_m1
        deepest = level
        floor_m1 = level

    # -- stats ---------------------------------------------------------------
    placed_mask = index["placed_mask"]
    placed = int(placed_mask.sum())
    plv = lvl[placed_mask]
    profile = _profile_counts(plv) if config.collect_profile else None
    firewalls = nsys if conservative else 0

    # Token reductions: per-write uses/deepest-use, plus merged base
    # tokens (incoming or first-touch entries and their pre-first-write
    # reads) — everything lifetimes and the exported well need.
    tok_uses = tok_deep = None
    if collect_lifetimes or generic_well:
        total = nwrites + G
        read_tok = index["read_tok"]
        tok_uses = _np.bincount(read_tok, minlength=total) if total else None
        tok_deep = _np.full(total, NEVER_USED, dtype=_np.int64)
        if len(read_tok):
            _np.maximum.at(tok_deep, read_tok, lvl[index["read_rec"]])
        if g_in is not None and generic_well:
            tok_uses[nwrites:] += _np.where(g_in, g_in_uses, 0)
            tok_deep[nwrites:] = _np.maximum(
                tok_deep[nwrites:], _np.where(g_in, g_in_deep, NEVER_USED)
            )

    lifetimes = None
    if collect_lifetimes:
        tok_rec = index["tok_rec"]
        tok_def = lvl[tok_rec] if nwrites else _np.empty(0, dtype=_np.int64)
        w_uses = tok_uses[:nwrites] if tok_uses is not None else tok_def
        w_deep = tok_deep[:nwrites] if tok_deep is not None else tok_def
        if export:
            # Only tokens actually evicted in this batch: writes with a
            # later write to the same location, plus incoming
            # non-preexisting entries overwritten by the batch's first
            # write. Entries still live stay in the well; finalize()
            # flushes them.
            evicted = ~index["tok_last"]
            defs = [tok_def[evicted]]
            deeps = [w_deep[evicted]]
            uses = [w_uses[evicted]]
            if g_in is not None:
                ev_in = g_in & ~g_in_pre & (index["g_first_w_rec"] >= 0)
                if ev_in.any():
                    defs.append(g_in_level[ev_in])
                    deeps.append(tok_deep[nwrites:][ev_in])
                    uses.append(tok_uses[nwrites:][ev_in])
            defs = _np.concatenate(defs)
            deeps = _np.concatenate(deeps)
            uses = _np.concatenate(uses)
            if len(defs):
                life = _np.where(uses > 0, deeps - defs, 0)
                _hist_update(fr.life_hist, life)
                _hist_update(fr.share_hist, uses)
        else:
            # Whole trace: every write token flushes (base tokens are
            # preexisting first touches — never counted, matching the
            # python kernels' entry[3] guard).
            life_hist: dict = {}
            share_hist: dict = {}
            if nwrites:
                life = _np.where(w_uses > 0, w_deep - tok_def, 0)
                _hist_update(life_hist, life)
                _hist_update(share_hist, w_uses)
            lifetimes = LifetimeStats(
                lifetime_histogram=life_hist,
                sharing_histogram=share_hist,
                values_created=sum(share_hist.values()),
                total_uses=sum(u * c for u, c in share_hist.items()),
            )

    if not export:
        return {
            "records": n,
            "placed": placed,
            "deepest": deepest,
            "profile": profile,
            "syscalls": index["n_syscalls"],
            "firewalls": firewalls,
            "branches": index["branches"],
            "peak": G,
            "lifetimes": lifetimes,
        }

    # -- frontier export -----------------------------------------------------
    if G:
        g_last_tok = index["g_last_tok"]
        has_w = g_last_tok >= 0
        safe_tok = _np.maximum(g_last_tok, 0)
        tok_rec = index["tok_rec"]
        lvl_w = (
            lvl[tok_rec[safe_tok]] if nwrites else _np.zeros(G, dtype=_np.int64)
        )
        ft_level = floorv[index["g_first_rec"]]
        if g_in is not None:
            out_level = _np.where(
                has_w, lvl_w, _np.where(g_in, g_in_level, ft_level)
            )
        else:
            out_level = _np.where(has_w, lvl_w, ft_level)
        if generic_well:
            out_deep = _np.where(has_w, tok_deep[safe_tok], tok_deep[nwrites:])
            out_uses = _np.where(has_w, tok_uses[safe_tok], tok_uses[nwrites:])
            if g_in is not None:
                out_pre = _np.where(has_w, False, _np.where(g_in, g_in_pre, True))
            else:
                out_pre = ~has_w
            for loc, level, deep, use, pre in zip(
                index["g_loc_list"],
                out_level.tolist(),
                out_deep.tolist(),
                out_uses.tolist(),
                out_pre.tolist(),
            ):
                well[loc] = [level, deep, use, pre]
        else:
            for loc, level in zip(index["g_loc_list"], out_level.tolist()):
                well[loc] = level

    if W:
        fr.ring = [
            None if v == _NEG else v for v in lvlx[n : n + W].tolist()
        ]
        fr.ring_pos = 0
    fr.floor = floor_m1 + 1
    fr.deepest = deepest
    fr.records += n
    fr.placed += placed
    fr.syscalls += index["n_syscalls"]
    fr.firewalls += firewalls
    fr.branches += index["branches"]
    if profile is not None and fr.profile is not None:
        merged = fr.profile
        get = merged.get
        for level, count in profile.items():
            merged[level] = get(level, 0) + count
    if conservative_mem and len(memrec):
        mem_levels = lvl[memrec]
        deepest_access = int(mem_levels.max())
        if deepest_access > fr.mem_deepest_access:
            fr.mem_deepest_access = deepest_access
        if is_store.any():
            store_level = int(mem_levels[is_store].max())
            if store_level > fr.mem_store_level:
                fr.mem_store_level = store_level
    return None


# -- public entry points -----------------------------------------------------


def analyze_vectorized(
    trace,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
) -> AnalysisResult:
    """One whole-trace analysis through the vectorized backend.

    Bit-identical to :func:`repro.core.kernels.analyze_columnar` for
    every :func:`eligible` configuration. Raises ``RuntimeError`` when
    NumPy is unavailable and ``ValueError`` for ineligible configs —
    callers that want graceful fallback route through
    ``analyze(..., backend="numpy")`` instead.
    """
    if _np is None:
        raise RuntimeError("the numpy backend requires NumPy")
    if config is None:
        config = AnalysisConfig()
    if not eligible(config):
        raise ValueError(
            "config is not eligible for the vectorized backend "
            "(branch predictors and constrained resources are sequential)"
        )
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)
    if not _obs.enabled():
        return _analyze(trace, config, segments)
    with _span("kernel.scan.vkernel"):
        return _analyze(trace, config, segments)


def _analyze(trace, config, segments) -> AnalysisResult:
    out = _execute(trace, config, segments, 0, len(trace.opclass), None)
    return AnalysisResult(
        records_processed=out["records"],
        placed_operations=out["placed"],
        critical_path_length=out["deepest"] + 1,
        profile=(
            ParallelismProfile(out["profile"]) if config.collect_profile else None
        ),
        syscalls=out["syscalls"],
        firewalls=out["firewalls"],
        branches=out["branches"],
        mispredictions=0,
        peak_live_well=out["peak"],
        lifetimes=out["lifetimes"],
        config=config,
    )


def advance_batch(frontier, trace, start: int, end: int) -> bool:
    """Vectorized :func:`repro.core.stream.advance` over ``[start, end)``.

    Returns False — leaving the frontier untouched — when the batch
    cannot run vectorized (NumPy absent, ineligible config, or columns
    without a plain buffer); the caller then falls back to the python
    per-record loops. On True the frontier state is exactly what the
    python advance would have produced.
    """
    if _np is None:
        return False
    if not eligible(frontier.config):
        return False
    try:
        memoryview(trace.opclass)
    except TypeError:
        return False
    _execute(trace, frontier.config, frontier.segments, start, end, frontier)
    return True


__all__ = [
    "BACKENDS",
    "BACKEND_NUMPY",
    "BACKEND_PYTHON",
    "advance_batch",
    "analyze_vectorized",
    "available",
    "eligible",
]
