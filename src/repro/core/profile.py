"""Parallelism profile: operations per topologically sorted DDG level.

The profile is kept exact (a dict from level to operation count); rendering
to a fixed number of points bins level ranges and reports the average
operations per level within each range, exactly as the paper describes for
large ``Ldest`` ranges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass
class ProfileBin:
    """One rendered profile point covering ``[start, end)`` levels."""

    start: int
    end: int
    operations: int

    @property
    def average(self) -> float:
        """Average operations per level within the bin."""
        return self.operations / (self.end - self.start)


class ParallelismProfile:
    """Exact operations-per-level histogram with binned rendering."""

    def __init__(self, counts: Dict[int, int] = None):
        self.counts: Dict[int, int] = counts if counts is not None else {}

    def add(self, level: int, count: int = 1) -> None:
        """Record ``count`` operations completing at ``level``."""
        self.counts[level] = self.counts.get(level, 0) + count

    # -- scalar summaries -------------------------------------------------

    @property
    def total_operations(self) -> int:
        """Total placed operations (profile mass)."""
        return sum(self.counts.values())

    @property
    def depth(self) -> int:
        """Critical path length: number of levels from 0 through the deepest
        level used (inclusive). Zero for an empty profile."""
        if not self.counts:
            return 0
        return max(self.counts) + 1

    @property
    def max_width(self) -> int:
        """Most operations in any single level (the paper's "maximum number
        of resources required")."""
        if not self.counts:
            return 0
        return max(self.counts.values())

    @property
    def average_parallelism(self) -> float:
        """Mean operations per level over the critical path."""
        depth = self.depth
        return self.total_operations / depth if depth else 0.0

    def burstiness(self) -> float:
        """Coefficient of variation of per-level operation counts (empty
        levels included). The paper observes parallelism is "bursty": high
        values here quantify that."""
        depth = self.depth
        if depth == 0:
            return 0.0
        mean = self.total_operations / depth
        if mean == 0:
            return 0.0
        sum_sq = sum(count * count for count in self.counts.values())
        variance = sum_sq / depth - mean * mean
        return math.sqrt(max(variance, 0.0)) / mean

    # -- rendering ---------------------------------------------------------

    def binned(self, max_points: int = 100) -> List[ProfileBin]:
        """Bin the profile to at most ``max_points`` ranges."""
        depth = self.depth
        if depth == 0:
            return []
        width = max(1, math.ceil(depth / max_points))
        bins: Dict[int, int] = {}
        for level, count in self.counts.items():
            bins[level // width] = bins.get(level // width, 0) + count
        out = []
        for index in range(math.ceil(depth / width)):
            start = index * width
            end = min(start + width, depth)
            out.append(ProfileBin(start, end, bins.get(index, 0)))
        return out

    def series(self, max_points: int = 100) -> Tuple[List[int], List[float]]:
        """(level, avg-operations) series for plotting."""
        bins = self.binned(max_points)
        return [b.start for b in bins], [b.average for b in bins]

    def ascii_plot(self, width: int = 72, height: int = 16) -> str:
        """Render the profile as an ASCII chart (Figure 7 stand-in)."""
        bins = self.binned(width)
        if not bins:
            return "(empty profile)"
        peak = max(b.average for b in bins)
        if peak <= 0:
            return "(flat profile)"
        rows = []
        for row in range(height, 0, -1):
            threshold = peak * (row - 0.5) / height
            line = "".join("#" if b.average >= threshold else " " for b in bins)
            rows.append(f"{peak * row / height:>12.1f} |{line}")
        rows.append(" " * 13 + "+" + "-" * len(bins))
        rows.append(
            f"{'':13}0{'':{max(0, len(bins) - len(str(self.depth)) - 1)}}{self.depth}"
        )
        rows.append(f"{'':13}level in DDG (ops/level, peak={peak:.1f})")
        return "\n".join(rows)

    def merged_into(self, other: "ParallelismProfile") -> None:
        """Accumulate this profile's counts into ``other`` (harness use)."""
        for level, count in self.counts.items():
            other.add(level, count)
