"""Operation latencies in DDG levels (the paper's Table 1).

``top`` — the number of levels an operation spans before the value it
creates is available to subsequent operations — is a function of the
operation class. The defaults reproduce Table 1 for the MIPS processor:

=======================  =====
Operation class          Steps
=======================  =====
Integer ALU              1
Integer multiply         6
Integer division         12
FP add/sub               6
FP multiply              6
FP division              12
Load/store               1
System calls             1
=======================  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.opclasses import OpClass

_DEFAULT_STEPS = {
    OpClass.IALU: 1,
    OpClass.IMUL: 6,
    OpClass.IDIV: 12,
    OpClass.FADD: 6,
    OpClass.FMUL: 6,
    OpClass.FDIV: 12,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.SYSCALL: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.NOP: 1,
}


@dataclass(frozen=True)
class LatencyTable:
    """Immutable map from operation class to latency in DDG levels."""

    steps: Dict[OpClass, int] = field(default_factory=lambda: dict(_DEFAULT_STEPS))

    def __post_init__(self):
        for opclass in OpClass:
            value = self.steps.get(opclass)
            if value is None:
                raise ValueError(f"latency table missing class {opclass.name}")
            if value < 1:
                raise ValueError(f"latency for {opclass.name} must be >= 1, got {value}")

    @classmethod
    def default(cls) -> "LatencyTable":
        """The paper's Table 1 values."""
        return cls()

    @classmethod
    def unit(cls) -> "LatencyTable":
        """All operations take one level (Kumar's and several prior studies'
        assumption; also used by the paper's worked figures)."""
        return cls({opclass: 1 for opclass in OpClass})

    def with_overrides(self, **by_name: int) -> "LatencyTable":
        """A copy with classes overridden by name, e.g. ``IMUL=3``."""
        steps = dict(self.steps)
        for name, value in by_name.items():
            steps[OpClass[name]] = value
        return LatencyTable(steps)

    def as_list(self) -> List[int]:
        """Latencies as a list indexed by int class value (hot-loop form)."""
        return [self.steps[OpClass(i)] for i in range(len(OpClass))]

    def canonical(self) -> Dict[str, int]:
        """JSON-safe canonical form: class name -> steps, keyed by name so
        the encoding is stable even if OpClass int values are reordered."""
        return {opclass.name: self.steps[opclass] for opclass in OpClass}

    @classmethod
    def from_canonical(cls, data: Dict[str, int]) -> "LatencyTable":
        """Inverse of :meth:`canonical`."""
        return cls({OpClass[name]: int(steps) for name, steps in data.items()})
