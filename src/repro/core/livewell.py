"""The live well: Paragraph's central hash table (paper section 3.2).

The live well maps each *live* storage location to facts about the value it
currently holds:

- ``level``: the DDG level at which the value became available,
- ``deepest_use``: the deepest level of any computation that consumed it
  (the paper's ``Ddest``), or ``NEVER_USED`` if unconsumed,
- ``uses``: consumer count (degree of sharing),
- ``preexisting``: True for values that existed when the program began
  (pre-initialized registers / DATA segment words).

This class is the readable reference form used by the reference analyzer,
the explicit DDG builder, and tests; the production streaming analyzer in
:mod:`repro.core.analyzer` inlines the same structure as plain lists inside
a dict for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

#: Sentinel for ``deepest_use`` of values never consumed; any WAR constraint
#: computed from it is vacuous.
NEVER_USED = -(1 << 60)


@dataclass
class LiveValue:
    """One live-well entry."""

    level: int
    deepest_use: int = NEVER_USED
    uses: int = 0
    preexisting: bool = False


class LiveWell:
    """Location -> :class:`LiveValue`, with the paper's special cases."""

    def __init__(self):
        self._values: Dict[int, LiveValue] = {}
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, location: int) -> bool:
        return location in self._values

    def lookup(self, location: int, preexisting_level: int) -> LiveValue:
        """Fetch the value at ``location``; on first touch, materialize a
        pre-existing value at ``preexisting_level`` (the level immediately
        preceding the topologically highest level, paper Figure 5)."""
        value = self._values.get(location)
        if value is None:
            value = LiveValue(level=preexisting_level, preexisting=True)
            self._values[location] = value
            if len(self._values) > self.peak_size:
                self.peak_size = len(self._values)
        return value

    def peek(self, location: int) -> Optional[LiveValue]:
        """Fetch without materializing a pre-existing value."""
        return self._values.get(location)

    def create(self, location: int, level: int) -> Optional[LiveValue]:
        """Bind a newly computed value to ``location``, returning the evicted
        previous value (if any) for lifetime accounting."""
        previous = self._values.get(location)
        self._values[location] = LiveValue(level=level)
        if len(self._values) > self.peak_size:
            self.peak_size = len(self._values)
        return previous

    def use(self, location: int, consumer_level: int) -> None:
        """Record that the value at ``location`` was consumed by a
        computation placed at ``consumer_level``."""
        value = self._values[location]
        if consumer_level > value.deepest_use:
            value.deepest_use = consumer_level
        value.uses += 1

    def remove(self, location: int) -> Optional[LiveValue]:
        """Delete a dead value (two-pass reclamation)."""
        return self._values.pop(location, None)

    def items(self) -> Iterator[Tuple[int, LiveValue]]:
        """Iterate over live (location, value) pairs."""
        return iter(self._values.items())
