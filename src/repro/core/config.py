"""Analysis configuration: Paragraph's switches (paper section 3.2).

Every published experiment is a point in this configuration space:

- Table 3 / Figure 7: all renaming on, no window, policy conservative (and
  optimistic for the comparison columns);
- Table 4: four renaming settings, conservative syscalls, no window;
- Figure 8: all renaming on, conservative syscalls, window swept.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel

CONSERVATIVE = "conservative"
OPTIMISTIC = "optimistic"

_SYSCALL_POLICIES = (CONSERVATIVE, OPTIMISTIC)

#: Memory disambiguation models: ``"perfect"`` (the paper's setting — exact
#: dynamic addresses order memory operations) or ``"conservative"`` (no
#: alias information: every load depends on the last store, every store
#: waits for all earlier memory accesses — the pessimistic end of the
#: disambiguation-strategy axis the paper's section 3.1 cites from the
#: prior limit studies).
PERFECT_DISAMBIGUATION = "perfect"
CONSERVATIVE_DISAMBIGUATION = "conservative"

_DISAMBIGUATION_MODELS = (PERFECT_DISAMBIGUATION, CONSERVATIVE_DISAMBIGUATION)


@dataclass(frozen=True)
class AnalysisConfig:
    """One Paragraph run configuration.

    Attributes:
        syscall_policy: ``"conservative"`` places a firewall at each system
            call (it is assumed to touch every live value); ``"optimistic"``
            ignores system calls entirely.
        rename_registers: drop storage dependencies on registers.
        rename_stack: drop storage dependencies on stack-segment words.
        rename_data: drop storage dependencies on non-stack (data/heap) words.
        window_size: contiguous-trace instruction window (``None`` = the
            whole trace, i.e. no control constraint).
        latency: operation latency table (defaults to the paper's Table 1).
        resources: optional functional-unit limits (``None`` = unlimited).
        branch_predictor: optional predictor name (``None`` = perfect
            control flow, the paper's setting). When set, each mispredicted
            conditional branch inserts a firewall at its resolution level.
        memory_disambiguation: ``"perfect"`` (paper setting) or
            ``"conservative"`` (no alias analysis: loads serialize behind
            every store, stores behind every memory access).
        collect_lifetimes: also gather value lifetime / degree-of-sharing
            distributions (slower).
        collect_profile: gather the full parallelism profile (on by default;
            switch off for average-only baseline comparisons).
    """

    syscall_policy: str = CONSERVATIVE
    rename_registers: bool = True
    rename_stack: bool = True
    rename_data: bool = True
    window_size: Optional[int] = None
    latency: LatencyTable = field(default_factory=LatencyTable.default)
    resources: Optional[ResourceModel] = None
    branch_predictor: Optional[str] = None
    memory_disambiguation: str = PERFECT_DISAMBIGUATION
    collect_lifetimes: bool = False
    collect_profile: bool = True

    def __post_init__(self):
        if self.syscall_policy not in _SYSCALL_POLICIES:
            raise ValueError(
                f"syscall_policy must be one of {_SYSCALL_POLICIES}, "
                f"got {self.syscall_policy!r}"
            )
        if self.window_size is not None and self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")
        if self.memory_disambiguation not in _DISAMBIGUATION_MODELS:
            raise ValueError(
                f"memory_disambiguation must be one of {_DISAMBIGUATION_MODELS}, "
                f"got {self.memory_disambiguation!r}"
            )

    # -- named experiment presets ----------------------------------------

    @classmethod
    def dataflow_limit(cls, syscall_policy: str = CONSERVATIVE) -> "AnalysisConfig":
        """Only true data dependencies (Table 3): full renaming, no window,
        no resource limits."""
        return cls(syscall_policy=syscall_policy)

    @classmethod
    def no_renaming(cls) -> "AnalysisConfig":
        """All storage dependencies kept (Table 4 column 1)."""
        return cls(rename_registers=False, rename_stack=False, rename_data=False)

    @classmethod
    def registers_renamed(cls) -> "AnalysisConfig":
        """Only registers renamed (Table 4 column 2)."""
        return cls(rename_registers=True, rename_stack=False, rename_data=False)

    @classmethod
    def registers_and_stack_renamed(cls) -> "AnalysisConfig":
        """Registers and stack renamed (Table 4 column 3)."""
        return cls(rename_registers=True, rename_stack=True, rename_data=False)

    @classmethod
    def windowed(cls, window_size: int) -> "AnalysisConfig":
        """Figure 8 point: all renaming, conservative syscalls, finite window."""
        return cls(window_size=window_size)

    def derive(self, **changes) -> "AnalysisConfig":
        """A modified copy (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **changes)

    # -- stable identity ---------------------------------------------------

    def canonical(self) -> dict:
        """JSON-safe canonical form covering every switch that can change an
        analysis result. Cache keys and cross-process job specs are built
        from this, so two configs with equal canonical forms are
        interchangeable and the encoding must stay deterministic."""
        return {
            "syscall_policy": self.syscall_policy,
            "rename_registers": self.rename_registers,
            "rename_stack": self.rename_stack,
            "rename_data": self.rename_data,
            "window_size": self.window_size,
            "latency": self.latency.canonical(),
            "resources": None if self.resources is None else self.resources.canonical(),
            "branch_predictor": self.branch_predictor,
            "memory_disambiguation": self.memory_disambiguation,
            "collect_lifetimes": self.collect_lifetimes,
            "collect_profile": self.collect_profile,
        }

    @classmethod
    def from_canonical(cls, data: dict) -> "AnalysisConfig":
        """Inverse of :meth:`canonical` (result-cache and worker-side
        reconstruction)."""
        from repro.core.latency import LatencyTable
        from repro.core.resources import ResourceModel

        resources = data.get("resources")
        return cls(
            syscall_policy=data["syscall_policy"],
            rename_registers=data["rename_registers"],
            rename_stack=data["rename_stack"],
            rename_data=data["rename_data"],
            window_size=data["window_size"],
            latency=LatencyTable.from_canonical(data["latency"]),
            resources=None if resources is None else ResourceModel.from_canonical(resources),
            branch_predictor=data["branch_predictor"],
            memory_disambiguation=data["memory_disambiguation"],
            collect_lifetimes=data["collect_lifetimes"],
            collect_profile=data["collect_profile"],
        )

    def digest(self) -> str:
        """Stable hex digest of the configuration, identical across
        processes and interpreter runs (cache-key component)."""
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def describe(self) -> str:
        """Short human-readable tag, e.g. for table headers."""
        renames = []
        if self.rename_registers:
            renames.append("regs")
        if self.rename_stack:
            renames.append("stack")
        if self.rename_data:
            renames.append("data")
        window = "inf" if self.window_size is None else str(self.window_size)
        return (
            f"syscalls={self.syscall_policy} rename={'+'.join(renames) or 'none'} "
            f"window={window}"
        )
