"""Paragraph: dynamic dependency graph extraction and analysis.

This package is the paper's primary contribution. Entry points:

- :func:`analyze` — fast streaming forward pass (method 2); dispatches to
  the columnar kernels when handed a
  :class:`~repro.trace.columnar.ColumnarTrace`.
- :func:`analyze_columnar` — config-specialized kernels over flat columns.
- :func:`twopass_analyze` — reverse-then-forward pass (method 1).
- :func:`reference_analyze` — readable reference implementation.
- :func:`build_ddg` — explicit networkx DDG for small traces.
- :class:`AnalysisConfig` — the switch set (renaming, syscalls, window...).
"""

from repro.core.analyzer import analyze
from repro.core.kernels import analyze_columnar, select_kernel
from repro.core.branch import PREDICTOR_NAMES, make_predictor
from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    OPTIMISTIC,
    PERFECT_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.cpath import CriticalPathSummary, summarize_critical_path
from repro.core.ddg import DynamicDependencyGraph, build_ddg
from repro.core.latency import LatencyTable
from repro.core.lifetimes import LifetimeStats
from repro.core.machines import MACHINE_MODELS, MachineModel, machine_model
from repro.core.livewell import NEVER_USED, LiveValue, LiveWell
from repro.core.profile import ParallelismProfile, ProfileBin
from repro.core.reference import ReferenceAnalyzer, reference_analyze
from repro.core.resources import ResourceModel, ResourceState
from repro.core.results import AnalysisResult, measurement_error
from repro.core.twopass import compute_kill_lists, twopass_analyze

__all__ = [
    "analyze",
    "analyze_columnar",
    "select_kernel",
    "PREDICTOR_NAMES",
    "make_predictor",
    "CONSERVATIVE",
    "CONSERVATIVE_DISAMBIGUATION",
    "OPTIMISTIC",
    "PERFECT_DISAMBIGUATION",
    "AnalysisConfig",
    "CriticalPathSummary",
    "summarize_critical_path",
    "DynamicDependencyGraph",
    "build_ddg",
    "LatencyTable",
    "LifetimeStats",
    "MACHINE_MODELS",
    "MachineModel",
    "machine_model",
    "NEVER_USED",
    "LiveValue",
    "LiveWell",
    "ParallelismProfile",
    "ProfileBin",
    "ReferenceAnalyzer",
    "reference_analyze",
    "ResourceModel",
    "ResourceState",
    "AnalysisResult",
    "measurement_error",
    "compute_kill_lists",
    "twopass_analyze",
]
