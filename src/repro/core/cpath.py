"""Critical-path composition analysis.

Beyond the critical path *length*, it is often more actionable to know what
the critical path is *made of*: which operation classes, which dependence
kinds, and which static instructions sit on the longest chain. This module
summarizes one longest chain of an explicit DDG — the tool we used while
tuning the workload suite, promoted to a public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.ddg import DynamicDependencyGraph
from repro.isa.opclasses import OpClass


@dataclass
class CriticalPathSummary:
    """What one longest dependence chain consists of."""

    length_nodes: int
    length_levels: int
    #: operation-class name -> nodes of that class on the path
    by_class: Dict[str, int] = field(default_factory=dict)
    #: dependence kind (raw/war/fence/firewall/source) -> edges on the path
    by_edge_kind: Dict[str, int] = field(default_factory=dict)
    #: (source statement id, opclass name) -> occurrences, most frequent
    #: first (statement ids come from the MiniC compiler's .stmt markers;
    #: -1 for hand-written assembly)
    hot_statements: List[Tuple[int, str, int]] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            f"critical path: {self.length_nodes} operations over "
            f"{self.length_levels} levels",
            "by operation class: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.by_class.items())),
            "by dependence kind: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.by_edge_kind.items())),
        ]
        if self.hot_statements:
            lines.append("hottest source statements (stmt id, class, occurrences):")
            for stmt, name, count in self.hot_statements:
                lines.append(f"  stmt={stmt:<7d} {name:<8s} x{count}")
        return "\n".join(lines)


def summarize_critical_path(
    ddg: DynamicDependencyGraph, trace, top: int = 8
) -> CriticalPathSummary:
    """Summarize one longest chain of ``ddg`` against its source ``trace``.

    Args:
        ddg: an explicit DDG built from ``trace``.
        trace: the trace the DDG was built from (indexable by record index).
        top: how many hot static operations to report.
    """
    path = ddg.critical_path_nodes()
    summary = CriticalPathSummary(
        length_nodes=len(path),
        length_levels=ddg.critical_path_length,
    )
    static_counts: Dict[Tuple[int, str], int] = {}
    previous = None
    for node in path:
        record = trace[node]
        name = OpClass(record[0]).name
        summary.by_class[name] = summary.by_class.get(name, 0) + 1
        stmt = record[4]
        key = (stmt, name)
        static_counts[key] = static_counts.get(key, 0) + 1
        if previous is None:
            summary.by_edge_kind["source"] = 1
        else:
            kind = ddg.graph.edges[previous, node]["kind"]
            summary.by_edge_kind[kind] = summary.by_edge_kind.get(kind, 0) + 1
        previous = node
    summary.hot_statements = [
        (stmt, name, count)
        for (stmt, name), count in sorted(
            static_counts.items(), key=lambda item: -item[1]
        )[:top]
    ]
    return summary
