"""Analysis result container."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import AnalysisConfig
from repro.core.lifetimes import LifetimeStats
from repro.core.profile import ParallelismProfile


@dataclass
class AnalysisResult:
    """Everything one Paragraph pass produces.

    Attributes:
        records_processed: dynamic trace records consumed (all classes).
        placed_operations: operations placed in the DDG (value-creating
            instructions, plus conservative system calls).
        critical_path_length: DDG height — the minimum number of abstract
            machine steps to execute the program.
        profile: the parallelism profile (``None`` if not collected).
        syscalls: system-call records seen.
        firewalls: firewalls inserted (syscalls + mispredictions).
        branches: conditional branch records seen.
        mispredictions: mispredicted conditional branches (0 under perfect
            control flow).
        peak_live_well: maximum simultaneous live-well entries (the paper's
            32-MByte working-set anecdote, measured in values).
        lifetimes: value lifetime/sharing stats (``None`` if not collected).
        config: the configuration that produced this result.
    """

    records_processed: int
    placed_operations: int
    critical_path_length: int
    profile: Optional[ParallelismProfile]
    syscalls: int
    firewalls: int
    branches: int
    mispredictions: int
    peak_live_well: int
    lifetimes: Optional[LifetimeStats]
    config: AnalysisConfig

    @property
    def available_parallelism(self) -> float:
        """Placed operations per critical-path level — the paper's headline
        metric (speedup of an ideal machine executing the DDG)."""
        if self.critical_path_length == 0:
            return 0.0
        return self.placed_operations / self.critical_path_length

    def summary(self) -> str:
        """One-line textual summary."""
        return (
            f"records={self.records_processed} placed={self.placed_operations} "
            f"critical_path={self.critical_path_length} "
            f"parallelism={self.available_parallelism:.2f} "
            f"[{self.config.describe()}]"
        )


def measurement_error(conservative: AnalysisResult, optimistic: AnalysisResult) -> float:
    """The paper's Table 3 "maximum measurement error": how much available
    parallelism the conservative system-call assumption hides, as a fraction
    of the optimistic value."""
    if optimistic.available_parallelism == 0:
        return 0.0
    return 1.0 - conservative.available_parallelism / optimistic.available_parallelism
