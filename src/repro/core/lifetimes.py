"""Value lifetime and degree-of-sharing distributions (paper section 2.3).

A value's *lifetime* is the number of DDG levels from its creation to its
last use (0 for values never consumed); its *degree of sharing* is how many
placed operations consumed it. The paper motivates both: lifetimes bound the
temporary storage an abstract machine needs, sharing characterizes token
fan-out in a dataflow realization.

Pre-existing values (initial register/memory state) are excluded — they are
inputs, not computed tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LifetimeStats:
    """Histograms over computed values."""

    #: lifetime (levels) -> number of values
    lifetime_histogram: Dict[int, int] = field(default_factory=dict)
    #: degree of sharing (use count) -> number of values
    sharing_histogram: Dict[int, int] = field(default_factory=dict)
    values_created: int = 0
    total_uses: int = 0

    def record(self, lifetime: int, uses: int) -> None:
        """Account one dead (or end-of-trace) value."""
        self.lifetime_histogram[lifetime] = self.lifetime_histogram.get(lifetime, 0) + 1
        self.sharing_histogram[uses] = self.sharing_histogram.get(uses, 0) + 1
        self.values_created += 1
        self.total_uses += uses

    @property
    def mean_lifetime(self) -> float:
        """Average value lifetime in DDG levels."""
        if not self.values_created:
            return 0.0
        weighted = sum(life * count for life, count in self.lifetime_histogram.items())
        return weighted / self.values_created

    @property
    def mean_sharing(self) -> float:
        """Average consumers per computed value."""
        if not self.values_created:
            return 0.0
        return self.total_uses / self.values_created

    @property
    def dead_value_fraction(self) -> float:
        """Fraction of computed values never consumed."""
        if not self.values_created:
            return 0.0
        return self.sharing_histogram.get(0, 0) / self.values_created

    def quantile_lifetime(self, q: float) -> int:
        """Lifetime below which fraction ``q`` of values fall."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.values_created
        seen = 0
        for lifetime in sorted(self.lifetime_histogram):
            seen += self.lifetime_histogram[lifetime]
            if seen >= target:
                return lifetime
        return max(self.lifetime_histogram, default=0)
