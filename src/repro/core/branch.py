"""Branch-prediction firewall models.

The paper's published experiments assume perfect control flow, but note that
"the firewall can also be used to represent the effect of a mispredicted
conditional branch". These predictors implement that extension: each
mispredicted conditional branch inserts a firewall at the branch's
resolution level (its source values' availability plus one level), delaying
every later operation past it — the Figure 3 behaviour.

Available models (by name, for :attr:`AnalysisConfig.branch_predictor`):

- ``"taken"`` / ``"not-taken"``: static predictions.
- ``"bimodal"``: classic 2-bit saturating counters indexed by pc
  (2^12 entries).
- ``"gshare"``: 2-bit counters indexed by pc XOR global history.
"""

from __future__ import annotations

from typing import Callable, Dict


class BranchPredictor:
    """Interface: ``predict`` then ``update`` per conditional branch."""

    def predict(self, pc: int) -> bool:
        """Predicted taken/not-taken for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train on the actual outcome."""
        raise NotImplementedError


class StaticPredictor(BranchPredictor):
    """Always predicts the same direction."""

    def __init__(self, taken: bool):
        self._taken = taken

    def predict(self, pc: int) -> bool:
        return self._taken

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """2-bit saturating counters indexed by pc."""

    def __init__(self, bits: int = 12):
        self._mask = (1 << bits) - 1
        self._counters = [2] * (1 << bits)  # weakly taken

    def predict(self, pc: int) -> bool:
        return self._counters[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = pc & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1


class GSharePredictor(BranchPredictor):
    """2-bit counters indexed by pc XOR a global history register."""

    def __init__(self, bits: int = 12):
        self._bits = bits
        self._mask = (1 << bits) - 1
        self._counters = [2] * (1 << bits)
        self._history = 0

    def predict(self, pc: int) -> bool:
        return self._counters[(pc ^ self._history) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = (pc ^ self._history) & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask


_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    "taken": lambda: StaticPredictor(True),
    "not-taken": lambda: StaticPredictor(False),
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
}


def make_predictor(name: str) -> BranchPredictor:
    """Instantiate a predictor by configuration name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown branch predictor {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None


PREDICTOR_NAMES = tuple(sorted(_FACTORIES))
