"""Readable reference implementation of the Paragraph pass.

This mirrors the paper's prose as directly as possible using the
:class:`~repro.core.livewell.LiveWell` data structure, with no hot-loop
tricks. Tests cross-validate the optimized streaming analyzer
(:mod:`repro.core.analyzer`) against this on randomized traces and against
the explicit DDG builder (:mod:`repro.core.ddg`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.branch import make_predictor
from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.lifetimes import LifetimeStats
from repro.core.livewell import LiveWell
from repro.core.profile import ParallelismProfile
from repro.core.resources import ResourceState
from repro.core.results import AnalysisResult
from repro.isa.locations import is_register_location, memory_address
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap


class _Firewalls:
    """Tracks ``highestLevel`` (here: ``floor``) and firewall insertion."""

    def __init__(self):
        self.floor = 0
        self.count = 0

    def raise_to(self, level: int) -> None:
        if level > self.floor:
            self.floor = level
            self.count += 1


class ReferenceAnalyzer:
    """Step-by-step Paragraph pass; one instance per trace analysis."""

    def __init__(self, config: AnalysisConfig, segments: SegmentMap):
        self.config = config
        self.segments = segments
        self.well = LiveWell()
        self.firewalls = _Firewalls()
        self.profile = ParallelismProfile() if config.collect_profile else None
        self.lifetimes = LifetimeStats() if config.collect_lifetimes else None
        self.resources = (
            ResourceState(config.resources)
            if config.resources is not None and not config.resources.unconstrained
            else None
        )
        self.predictor = (
            make_predictor(config.branch_predictor) if config.branch_predictor else None
        )
        self.window = list(
            [None] * config.window_size if config.window_size else []
        )
        self.window_pos = 0
        self.conservative_mem = (
            config.memory_disambiguation == CONSERVATIVE_DISAMBIGUATION
        )
        self.mem_store_level: Optional[int] = None
        self.mem_deepest_access: Optional[int] = None
        self.deepest = -1
        self.placed = 0
        self.records = 0
        self.syscalls = 0
        self.branches = 0
        self.mispredictions = 0

    # -- helpers ----------------------------------------------------------

    def _renamed(self, location: int) -> bool:
        """Is the storage class of ``location`` renamed under this config?"""
        if is_register_location(location):
            return self.config.rename_registers
        if memory_address(location) >= self.segments.stack_floor:
            return self.config.rename_stack
        return self.config.rename_data

    def _source_level(self, location: int) -> int:
        """Level at which the value in ``location`` is available; first
        touches materialize a pre-existing value one level above the floor."""
        value = self.well.lookup(location, preexisting_level=self.firewalls.floor - 1)
        return value.level

    def _account_eviction(self, location: int) -> None:
        """Lifetime bookkeeping for the value about to be overwritten."""
        if self.lifetimes is None:
            return
        old = self.well.peek(location)
        if old is not None and not old.preexisting:
            lifetime = old.deepest_use - old.level if old.uses else 0
            self.lifetimes.record(lifetime, old.uses)

    def _place(self, level: int) -> None:
        self.placed += 1
        if self.profile is not None:
            self.profile.add(level)
        if level > self.deepest:
            self.deepest = level

    def _advance_window(self, level: Optional[int]) -> None:
        if not self.window:
            return
        self.window[self.window_pos] = level
        self.window_pos = (self.window_pos + 1) % len(self.window)

    def _displace_window(self) -> None:
        if not self.window:
            return
        displaced = self.window[self.window_pos]
        if displaced is not None and displaced + 1 > self.firewalls.floor:
            # Window-displacement firewalls raise the floor but are not
            # counted in the result's firewall tally (only syscalls and
            # mispredictions are; a window inserts one per record).
            self.firewalls.floor = displaced + 1

    # -- per-record processing ---------------------------------------------

    def step(self, record) -> None:
        """Process one trace record."""
        self.records += 1
        self._displace_window()
        opclass = OpClass(record[0])
        if opclass not in PLACED_CLASSES:
            self._step_control(opclass, record)
            self._advance_window(None)
            return
        if opclass is OpClass.SYSCALL:
            self._step_syscall(record)
            return
        self._step_operation(opclass, record)

    def _step_control(self, opclass: OpClass, record) -> None:
        if opclass is not OpClass.BRANCH or not record[3] & FLAG_CONDITIONAL:
            return
        self.branches += 1
        if self.predictor is None:
            return
        pc, actual = record[4], bool(record[3] & FLAG_TAKEN)
        predicted = self.predictor.predict(pc)
        self.predictor.update(pc, actual)
        if predicted != actual:
            self.mispredictions += 1
            # peek, don't materialize: branch reads do not extend lifetimes
            # or enter values into the live well (paper excludes branches
            # from the DDG).
            levels = [self.firewalls.floor - 1]
            for src in record[1]:
                value = self.well.peek(src)
                if value is not None:
                    levels.append(value.level)
            resolve = max(levels) + self.config.latency.steps[OpClass.BRANCH]
            self.firewalls.raise_to(resolve)

    def _step_syscall(self, record) -> None:
        self.syscalls += 1
        if self.config.syscall_policy != CONSERVATIVE:
            self._advance_window(None)
            return
        top = self.config.latency.steps[OpClass.SYSCALL]
        level = max(self.deepest + 1, self.firewalls.floor - 1 + top)
        self.firewalls.count += 1
        self._place(level)
        self.firewalls.floor = level + 1
        for dest in record[2]:
            self._account_eviction(dest)
            self.well.create(dest, level)
        self._advance_window(level)

    def _step_operation(self, opclass: OpClass, record) -> None:
        top = self.config.latency.steps[opclass]
        srcs, dests = record[1], record[2]
        available = max(
            [self._source_level(src) for src in srcs],
            default=self.firewalls.floor - 1,
        )
        level = max(available, self.firewalls.floor - 1) + top
        for dest in dests:
            if not self._renamed(dest):
                old = self.well.peek(dest)
                if old is not None:
                    level = max(level, old.deepest_use + 1)
        if self.conservative_mem:
            if opclass is OpClass.LOAD and self.mem_store_level is not None:
                level = max(level, self.mem_store_level + top)
            elif opclass is OpClass.STORE and self.mem_deepest_access is not None:
                level = max(level, self.mem_deepest_access + 1)
        if self.resources is not None:
            level = self.resources.place(int(opclass), level)
        self._place(level)
        if self.conservative_mem and opclass in (OpClass.LOAD, OpClass.STORE):
            if self.mem_deepest_access is None or level > self.mem_deepest_access:
                self.mem_deepest_access = level
            if opclass is OpClass.STORE and (
                self.mem_store_level is None or level > self.mem_store_level
            ):
                self.mem_store_level = level
        for src in srcs:
            self.well.use(src, level)
        for dest in dests:
            self._account_eviction(dest)
            self.well.create(dest, level)
        self._advance_window(level)

    # -- results ------------------------------------------------------------

    def finish(self) -> AnalysisResult:
        """Flush end-of-trace lifetimes and build the result."""
        if self.lifetimes is not None:
            for _, value in self.well.items():
                if not value.preexisting:
                    lifetime = value.deepest_use - value.level if value.uses else 0
                    self.lifetimes.record(lifetime, value.uses)
        return AnalysisResult(
            records_processed=self.records,
            placed_operations=self.placed,
            critical_path_length=self.deepest + 1,
            profile=self.profile,
            syscalls=self.syscalls,
            firewalls=self.firewalls.count,
            branches=self.branches,
            mispredictions=self.mispredictions,
            peak_live_well=self.well.peak_size,
            lifetimes=self.lifetimes,
            config=self.config,
        )


def reference_analyze(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
) -> AnalysisResult:
    """Analyze ``trace`` with the reference implementation."""
    if config is None:
        config = AnalysisConfig()
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)
    analyzer = ReferenceAnalyzer(config, segments)
    for record in trace:
        analyzer.step(record)
    return analyzer.finish()
