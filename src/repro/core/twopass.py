"""Two-pass trace processing (paper section 3.2, method 1).

The paper describes two ways to keep the live well from growing without
bound. Method 2 (the default analyzer) reuses an entry when its storage
location is overwritten. Method 1 processes the trace *in reverse* first,
annotating each value's last use, so the forward pass can evict values the
moment they die — at the cost of having to store the whole trace.

Eviction at last use is only sound for location classes whose storage
dependencies are renamed away: a non-renamed location must keep its entry
until overwrite because the next writer needs the dead value's deepest-use
level for its WAR constraint. This implementation therefore evicts eagerly
exactly for renamed classes (and falls back to overwrite-reuse for the
rest), which preserves bit-identical analysis results; tests assert this.

The payoff is :attr:`AnalysisResult.peak_live_well`: with full renaming the
working set drops from "every location ever touched" to the live-value
working set (the paper needed 32 MB for method 2 on SPEC).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.core.reference import ReferenceAnalyzer
from repro.core.results import AnalysisResult
from repro.isa.opclasses import OpClass, PLACED_CLASSES
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap


def compute_kill_lists(
    records: Sequence, branch_reads: bool = False, optimistic_syscalls: bool = False
) -> List[Tuple[int, ...]]:
    """Reverse pass: for each record index, the source locations whose
    current value is read for the last time by that record.

    ``branch_reads`` marks conditional-branch source registers as reads;
    needed when a branch predictor is configured (misprediction firewalls
    peek at branch source levels). ``optimistic_syscalls`` skips syscall
    records entirely, mirroring the forward pass under the optimistic
    policy: their destinations never rebind a location, so treating them
    as kills would evict values that are still read afterwards.
    """
    read_later = {}
    kills: List[Tuple[int, ...]] = [()] * len(records)
    syscall = int(OpClass.SYSCALL)
    branch = int(OpClass.BRANCH)
    for index in range(len(records) - 1, -1, -1):
        record = records[index]
        opclass = record[0]
        if opclass not in PLACED_CLASSES:
            if branch_reads and opclass == branch:
                for src in record[1]:
                    read_later[src] = True
            continue
        if opclass == syscall and optimistic_syscalls:
            continue  # the forward pass ignores the whole record
        for dest in record[2]:
            read_later[dest] = False
        if opclass == syscall:
            continue  # syscall argument registers are not DDG reads
        dying = []
        for src in record[1]:
            if not read_later.get(src, False):
                dying.append(src)
            read_later[src] = True
        if dying:
            kills[index] = tuple(dying)
    return kills


def twopass_analyze(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
) -> AnalysisResult:
    """Analyze with reverse-pass dead-value annotation (method 1).

    Produces results identical to :func:`repro.core.analyzer.analyze`
    except for :attr:`AnalysisResult.peak_live_well`, which reflects the
    smaller working set.
    """
    if config is None:
        config = AnalysisConfig()
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)
    records = trace.records if hasattr(trace, "records") else list(trace)
    kills = compute_kill_lists(
        records,
        branch_reads=config.branch_predictor is not None,
        optimistic_syscalls=config.syscall_policy == OPTIMISTIC,
    )

    analyzer = ReferenceAnalyzer(config, segments)
    for index, record in enumerate(records):
        analyzer.step(record)
        dying = kills[index]
        if not dying:
            continue
        dests = record[2]
        for location in dying:
            if location in dests:
                continue  # the location was rebound this record
            if not analyzer._renamed(location):
                continue  # WAR bookkeeping still needs the dead value
            value = analyzer.well.remove(location)
            if (
                value is not None
                and analyzer.lifetimes is not None
                and not value.preexisting
            ):
                lifetime = value.deepest_use - value.level if value.uses else 0
                analyzer.lifetimes.record(lifetime, value.uses)
    return analyzer.finish()
