"""The streaming Paragraph analyzer (paper section 3.2, method 2).

One forward pass over the serial trace builds the parallelism profile and
critical path without materializing the DDG. Per value-creating record the
placement rule is::

    avail  = max(level(src) for src in sources, default floor-1)
    Ldest  = max(avail, floor - 1) + top(class)
    Ldest  = max(Ldest, Ddest + 1)        # only for non-renamed destinations
    Ldest  = first free level >= Ldest    # only under resource constraints

where ``floor`` is the first level available after the most recent firewall
(``highestLevel`` in the paper) and ``Ddest`` is the deepest consumer of the
value previously bound to the destination location.

Note on the placement formula: the paper's text writes
``MAX(Lsrc1, Lsrc2, highestLevel, Ddest+1) + top``, but its own worked
examples (Figures 1, 2 and 5) require the WAR term *not* to be scaled by
``top`` and pre-existing/firewall terms to land a unit-latency dependent at
``highestLevel`` itself; the rule above matches every figure exactly. See
DESIGN.md section 4.

This module is written for throughput (it is the per-record hot loop of
every experiment); :mod:`repro.core.reference` holds the readable
reference implementation that tests cross-validate against.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.branch import make_predictor
from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.lifetimes import LifetimeStats
from repro.core.livewell import NEVER_USED
from repro.core.profile import ParallelismProfile
from repro.core.resources import ResourceState
from repro.core.results import AnalysisResult
from repro.isa.locations import MEM_BASE
from repro.isa.opclasses import OpClass
from repro.trace.columnar import ColumnarTrace
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)


def analyze(
    trace: Iterable,
    config: Optional[AnalysisConfig] = None,
    segments: Optional[SegmentMap] = None,
    backend: str = "python",
) -> AnalysisResult:
    """Run one Paragraph analysis over ``trace``.

    Args:
        trace: an iterable of trace records; a
            :class:`~repro.trace.buffer.TraceBuffer` supplies its own
            segment map.
        config: the analysis configuration (defaults to the dataflow limit:
            conservative syscalls, full renaming, unlimited window).
        segments: segment map override for plain iterables.
        backend: ``"python"`` (default) or ``"numpy"``. The numpy backend
            evaluates the same placement rule over level-frontier batches
            (:mod:`repro.core.vkernels`) and is bit-identical; it applies
            when NumPy is importable, the configuration is eligible
            (no branch predictor, no constrained resources), and the
            trace is columnar (or a buffer, converted once) — anything
            else falls back to the python loops silently. Results never
            depend on the backend.

    Returns:
        An :class:`~repro.core.results.AnalysisResult`.
    """
    if config is None:
        config = AnalysisConfig()
    if backend != "python":
        from repro.core import vkernels

        if backend not in vkernels.BACKENDS:
            raise ValueError(f"unknown analysis backend {backend!r}")
        if vkernels.available() and vkernels.eligible(config):
            vtrace = trace
            if not isinstance(vtrace, ColumnarTrace):
                from repro.trace.buffer import TraceBuffer

                if isinstance(vtrace, TraceBuffer):
                    vtrace = ColumnarTrace.from_buffer(vtrace)
            if isinstance(vtrace, ColumnarTrace):
                return vkernels.analyze_vectorized(vtrace, config, segments)
    if isinstance(trace, ColumnarTrace):
        from repro.core.kernels import KERNEL_GENERIC, analyze_columnar, select_kernel

        if select_kernel(config) != KERNEL_GENERIC:
            return analyze_columnar(trace, config, segments)
        # Generic configs revisit every operand 2-3 times per record, which
        # tuple records serve better than flat columns (the tuples hold the
        # operands already boxed). The materialization is memoized, so a
        # grid of generic jobs against one shared trace pays it once.
        trace = trace.to_buffer()
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)

    latency = config.latency.as_list()
    rename_regs = config.rename_registers
    rename_stack = config.rename_stack
    rename_data = config.rename_data
    all_renamed = rename_regs and rename_stack and rename_data
    stack_bound = MEM_BASE + segments.stack_floor
    conservative = config.syscall_policy == CONSERVATIVE
    syscall_top = latency[_SYSCALL]
    collect_profile = config.collect_profile
    collect_lifetimes = config.collect_lifetimes
    lifetimes = LifetimeStats() if collect_lifetimes else None
    resources = None
    if config.resources is not None and not config.resources.unconstrained:
        resources = ResourceState(config.resources)
    predictor = make_predictor(config.branch_predictor) if config.branch_predictor else None
    conservative_mem = config.memory_disambiguation == CONSERVATIVE_DISAMBIGUATION
    mem_store_level = NEVER_USED  # completion level of the last store
    mem_deepest_access = NEVER_USED  # deepest load or store completion

    window = config.window_size
    ring = [None] * window if window else None
    ring_pos = 0

    well = {}
    well_get = well.get
    profile_counts = {}
    profile_get = profile_counts.get

    never = NEVER_USED
    floor = 0
    deepest = -1
    placed = 0
    records_processed = 0
    syscalls = 0
    firewalls = 0
    branches = 0
    mispredictions = 0

    for record in trace:
        records_processed += 1
        if ring is not None:
            old = ring[ring_pos]
            if old is not None and old >= floor:
                floor = old + 1
        klass = record[0]
        if klass >= _BRANCH:  # BRANCH / JUMP / NOP: not placed in the DDG
            flags = record[3]
            if klass == _BRANCH and flags & FLAG_CONDITIONAL:
                branches += 1
                if predictor is not None:
                    pc = record[4]
                    actual = bool(flags & FLAG_TAKEN)
                    predicted = predictor.predict(pc)
                    predictor.update(pc, actual)
                    if predicted != actual:
                        mispredictions += 1
                        base = floor - 1
                        for src in record[1]:
                            entry = well_get(src)
                            if entry is not None and entry[0] > base:
                                base = entry[0]
                        resolve = base + latency[_BRANCH]
                        if resolve > floor:
                            floor = resolve
                            firewalls += 1
            if ring is not None:
                ring[ring_pos] = None
                ring_pos += 1
                if ring_pos == window:
                    ring_pos = 0
            continue

        if klass == _SYSCALL:
            syscalls += 1
            if not conservative:
                if ring is not None:
                    ring[ring_pos] = None
                    ring_pos += 1
                    if ring_pos == window:
                        ring_pos = 0
                continue
            # Conservative: firewall immediately after the deepest
            # computation; the call itself is placed there.
            level = deepest + 1
            low = floor - 1 + syscall_top
            if low > level:
                level = low
            firewalls += 1
            placed += 1
            if collect_profile:
                profile_counts[level] = profile_get(level, 0) + 1
            if level > deepest:
                deepest = level
            floor = level + 1
            for dest in record[2]:
                old_entry = well_get(dest)
                if old_entry is not None and lifetimes is not None and not old_entry[3]:
                    used = old_entry[2]
                    lifetimes.record(old_entry[1] - old_entry[0] if used else 0, used)
                well[dest] = [level, never, 0, False]
            if ring is not None:
                ring[ring_pos] = level
                ring_pos += 1
                if ring_pos == window:
                    ring_pos = 0
            continue

        # Ordinary value-creating operation.
        top = latency[klass]
        srcs = record[1]
        base = floor - 1
        for src in srcs:
            entry = well_get(src)
            if entry is None:
                # First touch: a pre-existing value, created the level
                # before the topologically highest available level.
                well[src] = [floor - 1, never, 0, True]
            elif entry[0] > base:
                base = entry[0]
        level = base + top

        dests = record[2]
        if not all_renamed:
            for dest in dests:
                if dest < MEM_BASE:
                    renamed = rename_regs
                elif dest >= stack_bound:
                    renamed = rename_stack
                else:
                    renamed = rename_data
                if not renamed:
                    entry = well_get(dest)
                    if entry is not None:
                        war = entry[1] + 1
                        if war > level:
                            level = war

        if conservative_mem:
            # No alias analysis: a load depends on the last store as if it
            # read the value it wrote; a store waits behind every earlier
            # memory access it might conflict with.
            if klass == _LOAD:
                if mem_store_level + top > level:
                    level = mem_store_level + top
            elif klass == _STORE:
                if mem_deepest_access + 1 > level:
                    level = mem_deepest_access + 1

        if resources is not None:
            level = resources.place(klass, level)

        placed += 1
        if collect_profile:
            profile_counts[level] = profile_get(level, 0) + 1
        if level > deepest:
            deepest = level
        if conservative_mem and (klass == _LOAD or klass == _STORE):
            if level > mem_deepest_access:
                mem_deepest_access = level
            if klass == _STORE and level > mem_store_level:
                mem_store_level = level

        for src in srcs:
            entry = well[src]
            if level > entry[1]:
                entry[1] = level
            entry[2] += 1

        for dest in dests:
            old_entry = well_get(dest)
            if old_entry is not None and lifetimes is not None and not old_entry[3]:
                used = old_entry[2]
                lifetimes.record(old_entry[1] - old_entry[0] if used else 0, used)
            well[dest] = [level, never, 0, False]

        if ring is not None:
            ring[ring_pos] = level
            ring_pos += 1
            if ring_pos == window:
                ring_pos = 0

    if lifetimes is not None:
        for entry in well.values():
            if not entry[3]:
                used = entry[2]
                lifetimes.record(entry[1] - entry[0] if used else 0, used)

    # The well only ever grows (a brand-new dest/src key is the sole size
    # change), so its final size is its peak — no per-record len() probe.
    peak = len(well)

    return AnalysisResult(
        records_processed=records_processed,
        placed_operations=placed,
        critical_path_length=deepest + 1,
        profile=ParallelismProfile(profile_counts) if collect_profile else None,
        syscalls=syscalls,
        firewalls=firewalls,
        branches=branches,
        mispredictions=mispredictions,
        peak_live_well=peak,
        lifetimes=lifetimes,
        config=config,
    )
