"""Named machine models (paper section 2.3).

    "By placing suitable constraints on the execution order, or the
    resources available, we can throttle the DDG to match a particular
    machine model."

Each model bundles Paragraph switches into the constraint set of a machine
class the paper's era was debating. They are deliberately coarse — the
point is the *ordering* of what each machine class can extract from the
same trace, not microarchitectural fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import AnalysisConfig
from repro.core.resources import ResourceModel


@dataclass(frozen=True)
class MachineModel:
    """A named constraint bundle."""

    name: str
    description: str
    config: AnalysisConfig


def _models():
    return [
        MachineModel(
            "scalar",
            "in-order scalar pipeline: one instruction in flight",
            AnalysisConfig(
                window_size=1,
                resources=ResourceModel(universal=1),
                rename_registers=False,
                rename_stack=False,
                rename_data=False,
            ),
        ),
        MachineModel(
            "superscalar-4",
            "4-wide out-of-order core: 32-entry window, register renaming, "
            "real branch prediction, no memory renaming",
            AnalysisConfig(
                window_size=32,
                resources=ResourceModel(universal=4),
                rename_registers=True,
                rename_stack=False,
                rename_data=False,
                branch_predictor="bimodal",
            ),
        ),
        MachineModel(
            "superscalar-16",
            "aggressive 16-wide core: 256-entry window, register renaming, "
            "gshare prediction, no memory renaming",
            AnalysisConfig(
                window_size=256,
                resources=ResourceModel(universal=16),
                rename_registers=True,
                rename_stack=False,
                rename_data=False,
                branch_predictor="gshare",
            ),
        ),
        MachineModel(
            "restricted-dataflow",
            "windowed dataflow machine: 4096-entry window, full renaming, "
            "perfect control",
            AnalysisConfig(window_size=4096),
        ),
        MachineModel(
            "ideal-dataflow",
            "the paper's abstract machine: full renaming, unlimited window "
            "and resources, perfect control (Table 3 configuration)",
            AnalysisConfig(),
        ),
    ]


#: name -> :class:`MachineModel`, weakest machine first.
MACHINE_MODELS: Dict[str, MachineModel] = {model.name: model for model in _models()}


def machine_model(name: str) -> MachineModel:
    """Look up a machine model by name."""
    try:
        return MACHINE_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine model {name!r}; choose from {', '.join(MACHINE_MODELS)}"
        ) from None
