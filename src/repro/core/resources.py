"""Functional-unit resource constraints (paper Figure 4).

The published experiments run without resource restrictions, but Paragraph
supports throttling the DDG to a machine with finitely many functional
units: no more than ``k`` operations (of a class, or in total) may occupy
any single DDG level.

Placement is greedy first-fit: after dependence and firewall constraints
give an earliest completion level, the op takes the first level at or below
it with a free slot. Slots are accounted at the completion level (exact for
unit-latency operations, a pipelined-FU approximation otherwise).

First-fit over a densely packed schedule is quadratic if implemented as a
linear scan (an op whose dependences land mid-history would re-walk the
filled region every time), so saturated levels are skipped with a
union-find "next possibly-free level" structure with path compression —
amortized near-constant per placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opclasses import OpClass


@dataclass(frozen=True)
class ResourceModel:
    """Static description of functional-unit limits.

    Attributes:
        universal: cap on total operations per level (``None`` = unlimited).
        per_class: optional per-class caps, e.g. ``{OpClass.FMUL: 2}``.
    """

    universal: Optional[int] = None
    per_class: Dict[OpClass, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.universal is not None and self.universal < 1:
            raise ValueError("universal FU count must be >= 1")
        for opclass, count in self.per_class.items():
            if count < 1:
                raise ValueError(f"FU count for {opclass.name} must be >= 1")

    @property
    def unconstrained(self) -> bool:
        """True when the model imposes no limits at all."""
        return self.universal is None and not self.per_class

    def canonical(self) -> dict:
        """JSON-safe canonical form (class names, sorted by the dict
        encoder), for config digests and the on-disk result cache."""
        return {
            "universal": self.universal,
            "per_class": {
                opclass.name: count for opclass, count in self.per_class.items()
            },
        }

    @classmethod
    def from_canonical(cls, data: dict) -> "ResourceModel":
        """Inverse of :meth:`canonical`."""
        return cls(
            universal=data.get("universal"),
            per_class={
                OpClass[name]: int(count)
                for name, count in data.get("per_class", {}).items()
            },
        )


class _SlotTable:
    """Per-level slot counts with union-find skip over full levels."""

    __slots__ = ("capacity", "_used", "_next")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._used: Dict[int, int] = {}
        #: full level -> the next level that *might* have room (union-find
        #: parent pointers, compressed on lookup).
        self._next: Dict[int, int] = {}

    def first_free(self, level: int) -> int:
        """The first level >= ``level`` not known to be full."""
        parents = self._next
        root = level
        path = []
        while root in parents:
            path.append(root)
            root = parents[root]
        for node in path:
            parents[node] = root
        return root

    def consume(self, level: int) -> None:
        """Take one slot at a (non-full) ``level``."""
        used = self._used.get(level, 0) + 1
        self._used[level] = used
        if used >= self.capacity:
            self._next[level] = level + 1


class ResourceState:
    """Mutable per-analysis slot accounting for a :class:`ResourceModel`."""

    def __init__(self, model: ResourceModel):
        self.model = model
        self._universal = (
            _SlotTable(model.universal) if model.universal is not None else None
        )
        self._by_class: Dict[int, _SlotTable] = {
            int(opclass): _SlotTable(count)
            for opclass, count in model.per_class.items()
        }

    def place(self, opclass: int, earliest: int) -> int:
        """Return the first level >= ``earliest`` with a free slot for this
        operation class (and in total), and consume that slot."""
        universal = self._universal
        class_table = self._by_class.get(opclass)
        level = earliest
        while True:
            candidate = level
            if universal is not None:
                candidate = universal.first_free(candidate)
            if class_table is not None:
                candidate = class_table.first_free(candidate)
            if candidate == level:
                break
            level = candidate
        if universal is not None:
            universal.consume(level)
        if class_table is not None:
            class_table.consume(level)
        return level
