"""Resumable Paragraph analysis: frontiers, segment summaries, stitching.

The analysis kernels in :mod:`repro.core.kernels` run a whole trace in one
loop whose state lives in locals. This module factors that state into an
explicit :class:`Frontier` that can be carried across chunk boundaries, so
a trace too large for memory streams through a bounded window:

    frontier = new_frontier(config, segments)
    for chunk in chunks:            # each chunk decoded, used, discarded
        advance(frontier, chunk)
    result = finalize(frontier)     # identical to whole-trace analysis

``advance`` is an exact continuation — the per-record semantics are the
kernels' own, field for field — so chunked streaming reproduces the
monolithic result for *every* configuration: all rename settings, window
sizes, branch predictors, resource limits, syscall policies, memory
disambiguation, lifetimes, profiles.

Sharded (parallel) analysis additionally needs segments analyzable *out of
order*, which is where the paper's conservative syscall firewall earns its
name twice over. After a conservative syscall placed at level ``L`` the
floor rises to ``L + 1``, and from that point the pre-firewall past is
closed off:

- every live-well entry created before the firewall has level ``<= L``,
  so it contributes exactly ``floor - 1`` to any later placement — the
  same contribution a first-touch (unknown) location gets;
- every window-ring entry before the firewall is ``<= L < floor``, so it
  can never raise the floor again;
- deepest-use (WAR) and conservative-memory levels from before the
  firewall are ``<= L``, dominated by the ``floor - 1 + latency`` term of
  any post-firewall placement.

A segment's records *after its first conservative syscall* can therefore
be analyzed from a fresh frontier (floor 0, empty well and ring), and the
resulting :class:`SegmentSummary` later :func:`splice`\\ d onto the true
frontier by adding a single level offset — the true floor at the cut — to
every level it exported. The stitch replays only each segment's short
*prefix* (records up to and including its first syscall) in-process; the
suffixes, which are the bulk of the trace, run in parallel workers.

Splicing is *exact* but not universal: :func:`splice_eligible` gates it to
configurations whose state actually closes at a firewall. Optimistic
syscalls never firewall; branch predictors carry pattern state across any
cut; constrained resources schedule against absolute level occupancy; and
lifetime accounting must distinguish values live across the cut from
preexisting ones. Ineligible configurations stream sequentially through
``advance`` instead — still bounded-memory, still identical results —
so sharded analysis is total over the configuration space and never
silently approximates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional

from repro.core.branch import make_predictor
from repro.core.config import (
    CONSERVATIVE,
    CONSERVATIVE_DISAMBIGUATION,
    AnalysisConfig,
)
from repro.core.kernels import (
    KERNEL_GENERIC,
    KERNEL_WINDOWED,
    select_kernel,
)
from repro.core.lifetimes import LifetimeStats
from repro.core.livewell import NEVER_USED
from repro.core.profile import ParallelismProfile
from repro.core.resources import ResourceState
from repro.core.results import AnalysisResult
from repro.isa.locations import MEM_BASE
from repro.isa.opclasses import OpClass
from repro.trace.record import FLAG_CONDITIONAL, FLAG_TAKEN
from repro.trace.segments import DEFAULT_SEGMENTS, SegmentMap

_SYSCALL = int(OpClass.SYSCALL)
_BRANCH = int(OpClass.BRANCH)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

#: Default records per streaming chunk / shard segment (mirrors
#: :data:`repro.trace.chunked.DEFAULT_SHARD_RECORDS`).
DEFAULT_CHUNK_RECORDS = 1 << 20


def splice_eligible(config: AnalysisConfig) -> bool:
    """True when segment summaries for ``config`` can be spliced exactly.

    Requires conservative syscalls (the firewall is the cut), and excludes
    the features whose state crosses any cut: branch predictors (pattern
    tables), constrained resources (absolute-level occupancy), and
    lifetime collection (pass-1 cannot tell a value live across the cut
    from a preexisting one). Partial renaming, windows, conservative
    memory disambiguation, and profiles all close at a firewall and stay
    eligible.
    """
    return (
        config.syscall_policy == CONSERVATIVE
        and config.branch_predictor is None
        and (config.resources is None or config.resources.unconstrained)
        and not config.collect_lifetimes
    )


def align_shard_size(config: AnalysisConfig, shard_size: int) -> int:
    """Round ``shard_size`` up to a multiple of the configured window so
    shard cuts land on window-aligned record counts. Not required for
    correctness (the frontier carries the ring across any cut) but keeps
    segment boundaries meaningful against Figure 8's window sweeps."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    window = config.window_size
    if window:
        shard_size = ((shard_size + window - 1) // window) * window
    return shard_size


class Frontier:
    """The complete mutable state of one in-progress analysis.

    Everything the kernels keep in loop locals lives here between
    ``advance`` calls: the live well, the level floor, the deepest
    placement, the instruction-window ring, counters, the parallelism
    profile, conservative-memory levels, and the (sequential-only)
    predictor and resource objects.
    """

    __slots__ = (
        "config",
        "segments",
        "backend",
        "kernel",
        "latency",
        "conservative",
        "conservative_mem",
        "well",
        "floor",
        "deepest",
        "ring",
        "ring_pos",
        "profile",
        "records",
        "placed",
        "syscalls",
        "firewalls",
        "branches",
        "mispredictions",
        "mem_store_level",
        "mem_deepest_access",
        "predictor",
        "resources",
        "life_hist",
        "share_hist",
    )

    def __init__(
        self, config: AnalysisConfig, segments: SegmentMap, backend: str = "python"
    ):
        if backend != "python":
            from repro.core import vkernels

            if backend not in vkernels.BACKENDS:
                raise ValueError(f"unknown analysis backend {backend!r}")
        self.config = config
        self.segments = segments
        self.backend = backend
        self.kernel = select_kernel(config)
        self.latency = config.latency.as_list()
        self.conservative = config.syscall_policy == CONSERVATIVE
        self.conservative_mem = (
            config.memory_disambiguation == CONSERVATIVE_DISAMBIGUATION
        )
        self.well: dict = {}
        self.floor = 0
        self.deepest = -1
        window = config.window_size
        self.ring: Optional[List[Optional[int]]] = [None] * window if window else None
        self.ring_pos = 0
        self.profile: Optional[Dict[int, int]] = {} if config.collect_profile else None
        self.records = 0
        self.placed = 0
        self.syscalls = 0
        self.firewalls = 0
        self.branches = 0
        self.mispredictions = 0
        self.mem_store_level = NEVER_USED
        self.mem_deepest_access = NEVER_USED
        self.predictor = (
            make_predictor(config.branch_predictor) if config.branch_predictor else None
        )
        self.resources = None
        if config.resources is not None and not config.resources.unconstrained:
            self.resources = ResourceState(config.resources)
        self.life_hist: Dict[int, int] = {}
        self.share_hist: Dict[int, int] = {}


def new_frontier(
    config: Optional[AnalysisConfig] = None,
    segments: SegmentMap = DEFAULT_SEGMENTS,
    backend: str = "python",
) -> Frontier:
    """A fresh frontier: the state of an analysis that has seen nothing.

    ``backend="numpy"`` asks ``advance`` to route each batch through the
    vectorized frontier engine (:func:`repro.core.vkernels.advance_batch`)
    when NumPy is importable and the configuration is eligible; anything
    else falls back to the python continuation loops for that batch.
    The backend never changes results — only how they are computed.
    """
    return Frontier(
        config if config is not None else AnalysisConfig(), segments, backend
    )


def advance(frontier: Frontier, trace, start: int = 0, end: Optional[int] = None) -> Frontier:
    """Run records ``[start, end)`` of a columnar ``trace`` through
    ``frontier``, mutating it in place (and returning it for chaining).
    Exact continuation of the kernels' per-record semantics."""
    n = len(trace.opclass)
    if end is None:
        end = n
    if not 0 <= start <= end <= n:
        raise ValueError(f"bad record range [{start}, {end}) for {n}-record trace")
    if start == end:
        return frontier
    if frontier.backend != "python":
        from repro.core import vkernels

        if vkernels.advance_batch(frontier, trace, start, end):
            return frontier
    if frontier.kernel == KERNEL_GENERIC:
        _advance_generic(frontier, trace, start, end)
    elif frontier.kernel == KERNEL_WINDOWED:
        _advance_windowed(frontier, trace, start, end)
    else:
        _advance_dataflow(frontier, trace, start, end)
    return frontier


def finalize(frontier: Frontier) -> AnalysisResult:
    """The :class:`AnalysisResult` of everything ``frontier`` has seen —
    identical to running the kernels over the concatenated records. The
    frontier itself is left untouched (lifetime flushing works on copies),
    so a caller may finalize, keep advancing, and finalize again."""
    config = frontier.config
    lifetimes = None
    if config.collect_lifetimes:
        life_hist = dict(frontier.life_hist)
        share_hist = dict(frontier.share_hist)
        life_get = life_hist.get
        share_get = share_hist.get
        for entry in frontier.well.values():
            if not entry[3]:
                uses = entry[2]
                life = entry[1] - entry[0] if uses else 0
                life_hist[life] = life_get(life, 0) + 1
                share_hist[uses] = share_get(uses, 0) + 1
        lifetimes = LifetimeStats(
            lifetime_histogram=life_hist,
            sharing_histogram=share_hist,
            values_created=sum(share_hist.values()),
            total_uses=sum(uses * count for uses, count in share_hist.items()),
        )
    profile = None
    if config.collect_profile:
        profile = ParallelismProfile(dict(frontier.profile))
    return AnalysisResult(
        records_processed=frontier.records,
        placed_operations=frontier.placed,
        critical_path_length=frontier.deepest + 1,
        profile=profile,
        syscalls=frontier.syscalls,
        firewalls=frontier.firewalls,
        branches=frontier.branches,
        mispredictions=frontier.mispredictions,
        peak_live_well=len(frontier.well),
        lifetimes=lifetimes,
        config=config,
    )


# -- per-kernel resumable loops -----------------------------------------------


def _advance_dataflow(fr: Frontier, trace, start: int, end: int) -> None:
    """Dataflow-limit continuation (see :func:`_kernel_dataflow`): the well
    maps location -> level; per-chunk placements collect in a flat list and
    fold into the frontier's profile and deepest at the chunk's edge, so
    transient memory is O(chunk), never O(trace)."""
    latency = fr.latency
    conservative = fr.conservative
    syscall_top = latency[_SYSCALL]
    src_counts, dest_counts = trace.operand_counts()

    src_it = islice(iter(trace.src_values), trace.src_offsets[start], None)
    dest_it = islice(iter(trace.dest_values), trace.dest_offsets[start], None)
    conditional = FLAG_CONDITIONAL

    well = fr.well
    well_set = well.setdefault
    levels: List[int] = []
    append = levels.append
    floor_m1 = fr.floor - 1
    deepest = fr.deepest
    mark = 0
    syscalls = 0
    firewalls = 0
    branches = 0

    for klass, flag, ns, nd in zip(
        islice(iter(trace.opclass), start, end),
        islice(iter(trace.flags), start, end),
        islice(iter(src_counts), start, end),
        islice(iter(dest_counts), start, end),
    ):
        if klass < _SYSCALL:
            base = floor_m1
            if ns == 1:
                level = well_set(next(src_it), floor_m1)
                if level > base:
                    base = level
            elif ns == 2:
                level = well_set(next(src_it), floor_m1)
                if level > base:
                    base = level
                level = well_set(next(src_it), floor_m1)
                if level > base:
                    base = level
            elif ns:
                for _ in range(ns):
                    level = well_set(next(src_it), floor_m1)
                    if level > base:
                        base = level
            level = base + latency[klass]
            append(level)
            if nd == 1:
                well[next(dest_it)] = level
            elif nd:
                for _ in range(nd):
                    well[next(dest_it)] = level
        else:
            if ns == 1:
                next(src_it)
            elif ns:
                for _ in range(ns):
                    next(src_it)
            if klass == _SYSCALL:
                syscalls += 1
                if conservative:
                    if len(levels) > mark:
                        since = max(levels[mark:])
                        if since > deepest:
                            deepest = since
                    level = deepest + 1
                    low = floor_m1 + syscall_top
                    if low > level:
                        level = low
                    append(level)
                    firewalls += 1
                    deepest = level
                    floor_m1 = level
                    mark = len(levels)
                    for _ in range(nd):
                        well[next(dest_it)] = level
                    continue
            elif klass == _BRANCH and flag & conditional:
                branches += 1
            if nd:
                for _ in range(nd):
                    next(dest_it)

    if len(levels) > mark:
        since = max(levels[mark:])
        if since > deepest:
            deepest = since
    fr.floor = floor_m1 + 1
    fr.deepest = deepest
    fr.records += end - start
    fr.placed += len(levels)
    fr.syscalls += syscalls
    fr.firewalls += firewalls
    fr.branches += branches
    if fr.profile is not None and levels:
        profile = fr.profile
        profile_get = profile.get
        for level, count in Counter(levels).items():
            profile[level] = profile_get(level, 0) + count


def _advance_windowed(fr: Frontier, trace, start: int, end: int) -> None:
    """The dataflow continuation plus the instruction-window ring (see
    :func:`_kernel_windowed`); the ring and its cursor persist on the
    frontier across chunk cuts."""
    latency = fr.latency
    conservative = fr.conservative
    syscall_top = latency[_SYSCALL]
    src_counts, dest_counts = trace.operand_counts()

    src_it = islice(iter(trace.src_values), trace.src_offsets[start], None)
    dest_it = islice(iter(trace.dest_values), trace.dest_offsets[start], None)
    conditional = FLAG_CONDITIONAL

    window = fr.config.window_size
    ring = fr.ring
    ring_pos = fr.ring_pos

    well = fr.well
    well_set = well.setdefault
    levels: List[int] = []
    append = levels.append
    floor = fr.floor
    deepest = fr.deepest
    mark = 0
    syscalls = 0
    firewalls = 0
    branches = 0

    for klass, flag, ns, nd in zip(
        islice(iter(trace.opclass), start, end),
        islice(iter(trace.flags), start, end),
        islice(iter(src_counts), start, end),
        islice(iter(dest_counts), start, end),
    ):
        old = ring[ring_pos]
        if old is not None and old >= floor:
            floor = old + 1
        if klass < _SYSCALL:
            base = floor - 1
            first_touch = base
            if ns == 1:
                level = well_set(next(src_it), first_touch)
                if level > base:
                    base = level
            elif ns == 2:
                level = well_set(next(src_it), first_touch)
                if level > base:
                    base = level
                level = well_set(next(src_it), first_touch)
                if level > base:
                    base = level
            elif ns:
                for _ in range(ns):
                    level = well_set(next(src_it), first_touch)
                    if level > base:
                        base = level
            level = base + latency[klass]
            append(level)
            if nd == 1:
                well[next(dest_it)] = level
            elif nd:
                for _ in range(nd):
                    well[next(dest_it)] = level
            ring[ring_pos] = level
        else:
            if ns == 1:
                next(src_it)
            elif ns:
                for _ in range(ns):
                    next(src_it)
            if klass == _SYSCALL and conservative:
                syscalls += 1
                if len(levels) > mark:
                    since = max(levels[mark:])
                    if since > deepest:
                        deepest = since
                level = deepest + 1
                low = floor - 1 + syscall_top
                if low > level:
                    level = low
                append(level)
                firewalls += 1
                deepest = level
                floor = level + 1
                mark = len(levels)
                for _ in range(nd):
                    well[next(dest_it)] = level
                ring[ring_pos] = level
            else:
                if klass == _SYSCALL:
                    syscalls += 1
                elif klass == _BRANCH and flag & conditional:
                    branches += 1
                if nd:
                    for _ in range(nd):
                        next(dest_it)
                ring[ring_pos] = None
        ring_pos += 1
        if ring_pos == window:
            ring_pos = 0

    if len(levels) > mark:
        since = max(levels[mark:])
        if since > deepest:
            deepest = since
    fr.floor = floor
    fr.deepest = deepest
    fr.ring_pos = ring_pos
    fr.records += end - start
    fr.placed += len(levels)
    fr.syscalls += syscalls
    fr.firewalls += firewalls
    fr.branches += branches
    if fr.profile is not None and levels:
        profile = fr.profile
        profile_get = profile.get
        for level, count in Counter(levels).items():
            profile[level] = profile_get(level, 0) + count


def _advance_generic(fr: Frontier, trace, start: int, end: int) -> None:
    """Full-semantics continuation (see :func:`_kernel_generic`): list-
    valued well entries, WAR terms, predictor firewalls, resource
    placement, conservative memory, inline lifetime accumulation. The
    profile is a sparse dict (levels can reach critical-path length, and a
    streaming pass must not allocate a dense O(depth) list per chunk)."""
    config = fr.config
    segments = fr.segments
    latency = fr.latency
    rename_regs = config.rename_registers
    rename_stack = config.rename_stack
    rename_data = config.rename_data
    all_renamed = rename_regs and rename_stack and rename_data
    stack_bound = MEM_BASE + segments.stack_floor
    conservative = fr.conservative
    syscall_top = latency[_SYSCALL]
    branch_top = latency[_BRANCH]
    collect_lifetimes = config.collect_lifetimes
    life_hist = fr.life_hist
    share_hist = fr.share_hist
    life_get = life_hist.get
    share_get = share_hist.get
    resources = fr.resources
    predictor = fr.predictor
    conservative_mem = fr.conservative_mem
    mem_store_level = fr.mem_store_level
    mem_deepest_access = fr.mem_deepest_access
    conditional = FLAG_CONDITIONAL
    taken = FLAG_TAKEN

    src_val = trace.src_values
    dest_val = trace.dest_values
    src_hi = islice(iter(trace.src_offsets), start + 1, end + 1)
    dest_hi = islice(iter(trace.dest_offsets), start + 1, end + 1)

    window = config.window_size
    ring = fr.ring
    ring_pos = fr.ring_pos

    well = fr.well
    well_get = well.get
    profile = fr.profile
    profile_get = profile.get if profile is not None else None

    never = NEVER_USED
    floor = fr.floor
    deepest = fr.deepest
    placed = 0
    syscalls = 0
    firewalls = 0
    branches = 0
    mispredictions = 0
    s_lo = trace.src_offsets[start]
    d_lo = trace.dest_offsets[start]

    for klass, flags, aux, s_hi, d_hi in zip(
        islice(iter(trace.opclass), start, end),
        islice(iter(trace.flags), start, end),
        islice(iter(trace.aux), start, end),
        src_hi,
        dest_hi,
    ):
        if ring is not None:
            old = ring[ring_pos]
            if old is not None and old >= floor:
                floor = old + 1
        if klass >= _BRANCH:  # BRANCH / JUMP / NOP: not placed in the DDG
            if klass == _BRANCH and flags & conditional:
                branches += 1
                if predictor is not None:
                    actual = bool(flags & taken)
                    predicted = predictor.predict(aux)
                    predictor.update(aux, actual)
                    if predicted != actual:
                        mispredictions += 1
                        base = floor - 1
                        for src in src_val[s_lo:s_hi]:
                            entry = well_get(src)
                            if entry is not None and entry[0] > base:
                                base = entry[0]
                        resolve = base + branch_top
                        if resolve > floor:
                            floor = resolve
                            firewalls += 1
            if ring is not None:
                ring[ring_pos] = None
                ring_pos += 1
                if ring_pos == window:
                    ring_pos = 0
            s_lo = s_hi
            d_lo = d_hi
            continue

        if klass == _SYSCALL:
            syscalls += 1
            if not conservative:
                if ring is not None:
                    ring[ring_pos] = None
                    ring_pos += 1
                    if ring_pos == window:
                        ring_pos = 0
                s_lo = s_hi
                d_lo = d_hi
                continue
            level = deepest + 1
            low = floor - 1 + syscall_top
            if low > level:
                level = low
            firewalls += 1
            placed += 1
            if profile is not None:
                profile[level] = profile_get(level, 0) + 1
            if level > deepest:
                deepest = level
            floor = level + 1
            for dest in dest_val[d_lo:d_hi]:
                old_entry = well_get(dest)
                if collect_lifetimes and old_entry is not None and not old_entry[3]:
                    uses = old_entry[2]
                    life = old_entry[1] - old_entry[0] if uses else 0
                    life_hist[life] = life_get(life, 0) + 1
                    share_hist[uses] = share_get(uses, 0) + 1
                well[dest] = [level, never, 0, False]
            if ring is not None:
                ring[ring_pos] = level
                ring_pos += 1
                if ring_pos == window:
                    ring_pos = 0
            s_lo = s_hi
            d_lo = d_hi
            continue

        # Ordinary value-creating operation.
        top = latency[klass]
        base = floor - 1
        first_touch = base
        for src in src_val[s_lo:s_hi]:
            entry = well_get(src)
            if entry is None:
                well[src] = [first_touch, never, 0, True]
            elif entry[0] > base:
                base = entry[0]
        level = base + top

        if not all_renamed:
            for dest in dest_val[d_lo:d_hi]:
                if dest < MEM_BASE:
                    renamed = rename_regs
                elif dest >= stack_bound:
                    renamed = rename_stack
                else:
                    renamed = rename_data
                if not renamed:
                    entry = well_get(dest)
                    if entry is not None:
                        war = entry[1] + 1
                        if war > level:
                            level = war

        if conservative_mem:
            if klass == _LOAD:
                if mem_store_level + top > level:
                    level = mem_store_level + top
            elif klass == _STORE:
                if mem_deepest_access + 1 > level:
                    level = mem_deepest_access + 1

        if resources is not None:
            level = resources.place(klass, level)

        placed += 1
        if profile is not None:
            profile[level] = profile_get(level, 0) + 1
        if level > deepest:
            deepest = level
        if conservative_mem and (klass == _LOAD or klass == _STORE):
            if level > mem_deepest_access:
                mem_deepest_access = level
            if klass == _STORE and level > mem_store_level:
                mem_store_level = level

        for src in src_val[s_lo:s_hi]:
            entry = well[src]
            if level > entry[1]:
                entry[1] = level
            entry[2] += 1

        for dest in dest_val[d_lo:d_hi]:
            old_entry = well_get(dest)
            if collect_lifetimes and old_entry is not None and not old_entry[3]:
                uses = old_entry[2]
                life = old_entry[1] - old_entry[0] if uses else 0
                life_hist[life] = life_get(life, 0) + 1
                share_hist[uses] = share_get(uses, 0) + 1
            well[dest] = [level, never, 0, False]

        if ring is not None:
            ring[ring_pos] = level
            ring_pos += 1
            if ring_pos == window:
                ring_pos = 0
        s_lo = s_hi
        d_lo = d_hi

    fr.floor = floor
    fr.deepest = deepest
    fr.ring_pos = ring_pos
    fr.mem_store_level = mem_store_level
    fr.mem_deepest_access = mem_deepest_access
    fr.records += end - start
    fr.placed += placed
    fr.syscalls += syscalls
    fr.firewalls += firewalls
    fr.branches += branches
    fr.mispredictions += mispredictions


# -- segment summaries and splicing -------------------------------------------


@dataclass
class SegmentSummary:
    """The portable outcome of analyzing one segment's post-firewall suffix
    from a fresh frontier (local level 0 = the level just past the cut's
    firewall). All levels inside are *local*; :func:`splice` shifts them by
    the true floor at the cut.

    Attributes:
        count: records in the whole segment (prefix + suffix).
        prefix_count: records up to and including the first conservative
            syscall — the part the stitch pass replays in-process.
        generic: True when well entries are the generic kernel's
            ``[level, deepest_use, uses, preexisting]`` lists (vs plain
            level ints from the specialized kernels).
        floor: local floor after the suffix.
        deepest: local deepest placement (-1 when the suffix placed none).
        well: local live well (every location the suffix touched).
        ring: trailing window levels in recency order (oldest first),
            at most ``window_size`` entries; ``None`` without a window.
        mem_store_level / mem_deepest_access: local conservative-memory
            levels (``NEVER_USED`` when untouched).
        profile: local level -> placement count (``None`` when off).
    """

    count: int
    prefix_count: int
    generic: bool
    floor: int
    deepest: int
    placed: int
    syscalls: int
    firewalls: int
    branches: int
    well: dict
    ring: Optional[List[Optional[int]]]
    mem_store_level: int
    mem_deepest_access: int
    profile: Optional[Dict[int, int]]


def _export_ring(fr: Frontier, suffix_records: int) -> Optional[List[Optional[int]]]:
    """The frontier's ring in recency order (oldest first), trimmed to the
    entries the suffix actually wrote — never-written init slots would be
    indistinguishable from a control record's ``None``."""
    if fr.ring is None:
        return None
    ordered = fr.ring[fr.ring_pos :] + fr.ring[: fr.ring_pos]
    keep = min(suffix_records, len(ordered))
    return ordered[len(ordered) - keep :] if keep else []


def summarize_segment(
    trace,
    config: AnalysisConfig,
    segments: Optional[SegmentMap] = None,
    backend: str = "python",
) -> SegmentSummary:
    """Pass 1 of sharded analysis: run ``trace`` (one standalone segment)
    past its first conservative syscall from a fresh frontier and export
    the summary. Raises ``ValueError`` for configurations that cannot be
    spliced or segments with no syscall — callers gate on
    :func:`splice_eligible` and the manifest's ``first_syscall``."""
    if not splice_eligible(config):
        raise ValueError("configuration is not splice-eligible")
    if segments is None:
        segments = getattr(trace, "segments", DEFAULT_SEGMENTS)
    ops = trace.opclass
    count = len(ops)
    cut = -1
    for index in range(count):
        if ops[index] == _SYSCALL:
            cut = index
            break
    if cut < 0:
        raise ValueError("segment has no syscall to cut at")
    return _summarize_range(trace, config, segments, cut + 1, count, count, backend)


def _summarize_range(
    trace,
    config: AnalysisConfig,
    segments: SegmentMap,
    suffix_start: int,
    suffix_end: int,
    segment_count: int,
    backend: str = "python",
) -> SegmentSummary:
    """Fresh-frontier analysis of ``trace[suffix_start:suffix_end]``
    exported as a summary for a ``segment_count``-record segment whose
    first syscall is record ``suffix_start - 1`` of the range."""
    fr = new_frontier(config, segments, backend)
    advance(fr, trace, suffix_start, suffix_end)
    return SegmentSummary(
        count=segment_count,
        prefix_count=segment_count - (suffix_end - suffix_start),
        generic=fr.kernel == KERNEL_GENERIC,
        floor=fr.floor,
        deepest=fr.deepest,
        placed=fr.placed,
        syscalls=fr.syscalls,
        firewalls=fr.firewalls,
        branches=fr.branches,
        well=fr.well,
        ring=_export_ring(fr, suffix_end - suffix_start),
        mem_store_level=fr.mem_store_level,
        mem_deepest_access=fr.mem_deepest_access,
        profile=fr.profile,
    )


def splice(fr: Frontier, summary: SegmentSummary) -> Frontier:
    """Graft a segment suffix's summary onto ``fr``.

    ``fr`` must stand exactly at the cut: its last record was the
    segment's first conservative syscall, so ``fr.floor`` is the true
    level offset of every local level in the summary. The overlay is
    exact (see the module docstring's closure argument), and a location
    present on both sides takes the summary's entry — its pre-cut level
    is ``< floor`` and would contribute ``floor - 1`` anyway.
    """
    offset = fr.floor
    never = NEVER_USED
    well = fr.well
    if summary.generic:
        for loc, entry in summary.well.items():
            deepest_use = entry[1]
            well[loc] = [
                entry[0] + offset,
                deepest_use if deepest_use == never else deepest_use + offset,
                entry[2],
                entry[3],
            ]
    else:
        for loc, level in summary.well.items():
            well[loc] = level + offset
    if summary.deepest >= 0 and summary.deepest + offset > fr.deepest:
        fr.deepest = summary.deepest + offset
    fr.floor = summary.floor + offset
    if fr.ring is not None and summary.ring is not None:
        window = len(fr.ring)
        ordered = fr.ring[fr.ring_pos :] + fr.ring[: fr.ring_pos]
        shifted = [
            level + offset if level is not None else None for level in summary.ring
        ]
        fr.ring = (ordered + shifted)[-window:]
        fr.ring_pos = 0
    if summary.mem_store_level != never:
        level = summary.mem_store_level + offset
        if level > fr.mem_store_level:
            fr.mem_store_level = level
    if summary.mem_deepest_access != never:
        level = summary.mem_deepest_access + offset
        if level > fr.mem_deepest_access:
            fr.mem_deepest_access = level
    if fr.profile is not None and summary.profile:
        profile = fr.profile
        profile_get = profile.get
        for level, count in summary.profile.items():
            profile[level + offset] = profile_get(level + offset, 0) + count
    fr.records += summary.count - summary.prefix_count
    fr.placed += summary.placed
    fr.syscalls += summary.syscalls
    fr.firewalls += summary.firewalls
    fr.branches += summary.branches
    return fr


# -- whole-trace entry points -------------------------------------------------


def _as_columnar(trace):
    from repro.trace.columnar import ColumnarTrace

    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_buffer(trace)


def stream_analyze_trace(
    trace,
    config: Optional[AnalysisConfig] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    segments: Optional[SegmentMap] = None,
    backend: str = "python",
) -> AnalysisResult:
    """Analyze ``trace`` by advancing one frontier over fixed-size record
    chunks. Exact for every configuration; exists so the chunk-cut
    machinery is exercisable (and verifiable) without a file."""
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    columnar = _as_columnar(trace)
    if config is None:
        config = AnalysisConfig()
    if segments is None:
        segments = columnar.segments
    fr = new_frontier(config, segments, backend)
    count = len(columnar.opclass)
    for start in range(0, count, chunk_records):
        advance(fr, columnar, start, min(start + chunk_records, count))
    return finalize(fr)


def shard_analyze_trace(
    trace,
    config: Optional[AnalysisConfig] = None,
    shard_size: int = DEFAULT_CHUNK_RECORDS,
    segments: Optional[SegmentMap] = None,
    backend: str = "python",
) -> AnalysisResult:
    """Analyze ``trace`` through the full shard machinery in-process:
    window-aligned segments, fresh-frontier suffix summaries for
    splice-eligible configurations, prefix replay + :func:`splice`
    stitching. Segments without a syscall (and every segment of an
    ineligible configuration) advance the frontier directly, so the
    result is identical to whole-trace analysis for *every*
    configuration."""
    columnar = _as_columnar(trace)
    if config is None:
        config = AnalysisConfig()
    if segments is None:
        segments = columnar.segments
    shard_size = align_shard_size(config, shard_size)
    eligible = splice_eligible(config)
    fr = new_frontier(config, segments, backend)
    ops = columnar.opclass
    count = len(ops)
    start = 0
    while start < count:
        end = min(start + shard_size, count)
        cut = -1
        if eligible:
            for index in range(start, end):
                if ops[index] == _SYSCALL:
                    cut = index
                    break
        if cut >= 0:
            summary = _summarize_range(
                columnar, config, segments, cut + 1, end, end - start, backend
            )
            advance(fr, columnar, start, cut + 1)
            splice(fr, summary)
        else:
            advance(fr, columnar, start, end)
        start = end
    return finalize(fr)


def stream_analyze_file(
    path,
    config: Optional[AnalysisConfig] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    cap: Optional[int] = None,
    backend: str = "python",
) -> AnalysisResult:
    """Analyze a PGT2 trace file with bounded memory: chunks decode off an
    ``mmap`` one at a time (see :func:`repro.trace.chunked.iter_chunks`)
    and fold into a single frontier. ``cap`` stops after that many records
    (whole-file streams also verify the header digest en route)."""
    from repro.obs.spans import span as _span
    from repro.trace.chunked import iter_chunks
    from repro.trace.io import read_header

    if config is None:
        config = AnalysisConfig()
    with open(path, "rb") as stream:
        segments, _, _ = read_header(stream)
    fr = new_frontier(config, segments, backend)
    remaining = cap
    with _span("stream.analyze_file"):
        for chunk in iter_chunks(path, chunk_records):
            take = len(chunk.opclass)
            if remaining is not None:
                take = min(take, remaining)
            advance(fr, chunk, 0, take)
            if remaining is not None:
                remaining -= take
                if remaining == 0:
                    break
    return finalize(fr)
