"""Live well data structure, including the paper's Figure 5 walkthrough."""

from repro.core.livewell import NEVER_USED, LiveWell
from repro.core.reference import ReferenceAnalyzer
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.isa.locations import memory_location
from repro.trace.segments import DEFAULT_SEGMENTS

DATA = 0x1000


class TestLiveWell:
    def test_lookup_materializes_preexisting(self):
        well = LiveWell()
        value = well.lookup(5, preexisting_level=-1)
        assert value.preexisting
        assert value.level == -1
        assert len(well) == 1

    def test_lookup_returns_same_entry(self):
        well = LiveWell()
        first = well.lookup(5, -1)
        second = well.lookup(5, -1)
        assert first is second

    def test_peek_does_not_materialize(self):
        well = LiveWell()
        assert well.peek(9) is None
        assert len(well) == 0

    def test_create_evicts_previous(self):
        well = LiveWell()
        well.create(3, level=1)
        evicted = well.create(3, level=5)
        assert evicted.level == 1
        assert well.peek(3).level == 5

    def test_use_tracks_deepest_and_count(self):
        well = LiveWell()
        well.create(3, level=0)
        well.use(3, consumer_level=4)
        well.use(3, consumer_level=2)
        value = well.peek(3)
        assert value.deepest_use == 4
        assert value.uses == 2

    def test_new_value_never_used(self):
        well = LiveWell()
        well.create(3, level=0)
        assert well.peek(3).deepest_use == NEVER_USED

    def test_remove(self):
        well = LiveWell()
        well.create(3, level=0)
        removed = well.remove(3)
        assert removed.level == 0
        assert well.peek(3) is None
        assert well.remove(3) is None

    def test_peak_size_tracks_high_water(self):
        well = LiveWell()
        for loc in range(10):
            well.create(loc, 0)
        for loc in range(10):
            well.remove(loc)
        assert len(well) == 0
        assert well.peak_size == 10


class TestEdgeCases:
    """Corner cases the verification fuzzer leans on (see repro.verify)."""

    def build(self, trace, **config_kwargs):
        kwargs = {"latency": LatencyTable.unit(), **config_kwargs}
        analyzer = ReferenceAnalyzer(AnalysisConfig(**kwargs), DEFAULT_SEGMENTS)
        for record in trace:
            analyzer.step(record)
        return analyzer

    def test_same_register_read_then_write(self):
        """``r1 <- f(r1)``: the read sees the OLD value; the write creates a
        new one strictly below it. One instruction, both roles."""
        from repro.trace.synthetic import TraceBuilder

        builder = TraceBuilder()
        builder.ialu(1)      # v_old at level 0
        builder.ialu(1, 1)   # r1 <- r1: reads v_old, rebinds r1
        analyzer = self.build(builder.build())
        value = analyzer.well.peek(1)
        assert value.level == 1          # the new value, one below its source
        assert not value.preexisting
        assert value.uses == 0           # nothing has read the new value yet
        result = analyzer.finish()
        assert result.critical_path_length == 2
        assert result.profile.counts == {0: 1, 1: 1}

    def test_store_to_address_just_freed(self):
        """Overwrite of a dead memory value: the new store's WAR constraint
        still sees the dead value's deepest use when data is not renamed."""
        from repro.trace.synthetic import TraceBuilder

        builder = TraceBuilder()
        builder.ialu(1)            # level 0
        builder.store(1, DATA)     # level 1, value S1
        builder.load(2, DATA)      # level 2 reads S1 — its last use
        builder.ialu(3)            # level 0, independent
        builder.store(3, DATA)     # rebinds DATA; WAR: must be > S1's last use
        trace = builder.build()

        renamed = self.build(trace, rename_data=True).finish()
        in_place = self.build(trace, rename_data=False).finish()
        loc = memory_location(DATA)
        # renamed: the second store only waits for its source (level 1);
        # in place: it must also clear the load of the dead value (level 3)
        assert self.build(trace, rename_data=True).well.peek(loc).level == 1
        assert self.build(trace, rename_data=False).well.peek(loc).level == 3
        assert renamed.critical_path_length == 3
        assert in_place.critical_path_length == 4

    def test_unit_latency_op_at_firewall_boundary(self):
        """An op placed immediately after a conservative syscall lands
        exactly one level below the firewall, never on or above it."""
        from repro.trace.synthetic import TraceBuilder

        builder = TraceBuilder()
        builder.ialu(1)       # level 0
        builder.syscall()     # firewall: level 1, floor 2
        builder.ialu(2)       # no deps: placed at the floor exactly
        builder.ialu(3, 1)    # old value: also dragged to the floor
        analyzer = self.build(builder.build())
        assert analyzer.well.peek(2).level == 2
        assert analyzer.well.peek(3).level == 2
        result = analyzer.finish()
        assert result.firewalls == 1
        assert result.profile.counts == {0: 1, 1: 1, 2: 2}

    def test_latency_table_rejects_zero_latency(self):
        """There is no such thing as a zero-latency placed op: levels are
        strictly increasing through a dependence chain."""
        import pytest

        with pytest.raises(ValueError):
            LatencyTable.unit().with_overrides(IALU=0)


class TestFigure5:
    """After processing the Figure 1 trace, the live well holds the paper's
    Figure 5 state: A-D pre-existing at level -1, r0-r3 at 0, r4/r5 at 1,
    r6 at 2, S at 3; highest level 0, deepest level yet used 3."""

    def build(self, figure1_trace):
        analyzer = ReferenceAnalyzer(
            AnalysisConfig(latency=LatencyTable.unit()), DEFAULT_SEGMENTS
        )
        for record in figure1_trace:
            analyzer.step(record)
        return analyzer

    def test_preexisting_data_values(self, figure1_trace):
        analyzer = self.build(figure1_trace)
        for offset in range(4):  # A, B, C, D
            value = analyzer.well.peek(memory_location(DATA + offset))
            assert value.preexisting
            assert value.level == -1

    def test_register_levels(self, figure1_trace):
        analyzer = self.build(figure1_trace)
        levels = {loc: analyzer.well.peek(loc).level for loc in range(1, 8)}
        assert levels == {1: 0, 2: 0, 3: 0, 4: 0, 5: 1, 6: 1, 7: 2}

    def test_stored_result(self, figure1_trace):
        analyzer = self.build(figure1_trace)
        assert analyzer.well.peek(memory_location(DATA + 8)).level == 3

    def test_highest_and_deepest_levels(self, figure1_trace):
        analyzer = self.build(figure1_trace)
        assert analyzer.firewalls.floor == 0  # highestLevel
        assert analyzer.deepest == 3  # deepestLevelYetUsed

    def test_degree_of_sharing(self, figure1_trace):
        analyzer = self.build(figure1_trace)
        assert analyzer.well.peek(1).uses == 1  # r0 consumed once
        assert analyzer.well.peek(7).uses == 1  # r6 consumed by the store
        assert analyzer.well.peek(memory_location(DATA + 8)).uses == 0
