"""Value lifetime and degree-of-sharing collection."""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.lifetimes import LifetimeStats
from repro.trace.synthetic import TraceBuilder


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), collect_lifetimes=True, **kwargs)


class TestStats:
    def test_record_and_means(self):
        stats = LifetimeStats()
        stats.record(lifetime=2, uses=1)
        stats.record(lifetime=4, uses=3)
        assert stats.values_created == 2
        assert stats.mean_lifetime == 3.0
        assert stats.mean_sharing == 2.0

    def test_dead_fraction(self):
        stats = LifetimeStats()
        stats.record(0, 0)
        stats.record(5, 2)
        assert stats.dead_value_fraction == 0.5

    def test_quantiles(self):
        stats = LifetimeStats()
        for lifetime in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            stats.record(lifetime, 1)
        assert stats.quantile_lifetime(0.5) == 5
        assert stats.quantile_lifetime(1.0) == 10

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            LifetimeStats().quantile_lifetime(1.5)

    def test_empty_stats(self):
        stats = LifetimeStats()
        assert stats.mean_lifetime == 0.0
        assert stats.mean_sharing == 0.0
        assert stats.dead_value_fraction == 0.0


class TestCollection:
    def test_lifetime_measured_creation_to_last_use(self):
        builder = TraceBuilder()
        builder.ialu(1)             # v @ 0
        builder.ialu(2, 1)          # use @ 1
        builder.ialu(3, 2)          # @2
        builder.ialu(4, 3, 1)       # deepest use of v @ 3 -> lifetime 3
        result = analyze(builder.build(), unit())
        assert result.lifetimes.lifetime_histogram.get(3) == 1

    def test_unused_value_has_zero_lifetime(self):
        builder = TraceBuilder()
        builder.ialu(1)
        result = analyze(builder.build(), unit())
        assert result.lifetimes.lifetime_histogram == {0: 1}
        assert result.lifetimes.sharing_histogram == {0: 1}

    def test_sharing_counts_every_consumer(self):
        builder = TraceBuilder()
        builder.ialu(1)
        for dest in (2, 3, 4):
            builder.ialu(dest, 1)
        result = analyze(builder.build(), unit())
        assert result.lifetimes.sharing_histogram.get(3) == 1

    def test_preexisting_values_excluded(self):
        builder = TraceBuilder()
        builder.ialu(2, 9)  # 9 is pre-existing
        result = analyze(builder.build(), unit())
        # only the computed value (location 2) is accounted
        assert result.lifetimes.values_created == 1

    def test_eviction_and_end_flush_both_counted(self):
        builder = TraceBuilder()
        builder.ialu(1)      # evicted by the rewrite below
        builder.ialu(2, 1)
        builder.ialu(1)      # still live at end of trace
        result = analyze(builder.build(), unit())
        assert result.lifetimes.values_created == 3

    def test_disabled_by_default(self):
        result = analyze(TraceBuilder().ialu(1).build(), AnalysisConfig())
        assert result.lifetimes is None
