"""Machine-model presets."""

import pytest

from repro.core.analyzer import analyze
from repro.core.machines import MACHINE_MODELS, machine_model
from repro.trace.synthetic import random_trace


class TestRegistry:
    def test_expected_models(self):
        assert list(MACHINE_MODELS) == [
            "scalar",
            "superscalar-4",
            "superscalar-16",
            "restricted-dataflow",
            "ideal-dataflow",
        ]

    def test_lookup(self):
        assert machine_model("scalar").config.window_size == 1

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown machine model"):
            machine_model("quantum")

    def test_ideal_is_the_paper_configuration(self):
        config = machine_model("ideal-dataflow").config
        assert config.rename_registers and config.rename_stack and config.rename_data
        assert config.window_size is None
        assert config.resources is None
        assert config.branch_predictor is None


class TestOrdering:
    def test_hierarchy_on_random_trace(self):
        trace = random_trace(41, 1500)
        results = {
            name: analyze(trace, model.config).available_parallelism
            for name, model in MACHINE_MODELS.items()
        }
        assert results["scalar"] <= 1.0 + 1e-9
        assert results["scalar"] <= results["superscalar-4"] + 1e-9
        assert results["superscalar-16"] <= results["restricted-dataflow"] + 1e-9
        assert results["restricted-dataflow"] <= results["ideal-dataflow"] + 1e-9

    def test_superscalar_width_bound(self):
        trace = random_trace(42, 1500)
        ss4 = analyze(trace, machine_model("superscalar-4").config)
        assert ss4.profile.max_width <= 4
        assert ss4.available_parallelism <= 4.0
