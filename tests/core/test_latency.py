"""Latency table (paper Table 1)."""

import pytest

from repro.core.latency import LatencyTable
from repro.isa.opclasses import OpClass


class TestDefaults:
    def test_table1_values(self):
        table = LatencyTable.default()
        assert table.steps[OpClass.IALU] == 1
        assert table.steps[OpClass.IMUL] == 6
        assert table.steps[OpClass.IDIV] == 12
        assert table.steps[OpClass.FADD] == 6
        assert table.steps[OpClass.FMUL] == 6
        assert table.steps[OpClass.FDIV] == 12
        assert table.steps[OpClass.LOAD] == 1
        assert table.steps[OpClass.STORE] == 1
        assert table.steps[OpClass.SYSCALL] == 1

    def test_unit_table(self):
        table = LatencyTable.unit()
        assert all(value == 1 for value in table.steps.values())


class TestValidationAndDerivation:
    def test_missing_class_rejected(self):
        with pytest.raises(ValueError, match="missing class"):
            LatencyTable({OpClass.IALU: 1})

    def test_zero_latency_rejected(self):
        steps = {opclass: 1 for opclass in OpClass}
        steps[OpClass.LOAD] = 0
        with pytest.raises(ValueError, match="must be >= 1"):
            LatencyTable(steps)

    def test_with_overrides(self):
        table = LatencyTable.default().with_overrides(LOAD=3, IMUL=2)
        assert table.steps[OpClass.LOAD] == 3
        assert table.steps[OpClass.IMUL] == 2
        assert table.steps[OpClass.IDIV] == 12  # untouched

    def test_with_overrides_unknown_name(self):
        with pytest.raises(KeyError):
            LatencyTable.default().with_overrides(WIBBLE=2)

    def test_as_list_indexed_by_class_value(self):
        listed = LatencyTable.default().as_list()
        assert listed[int(OpClass.IDIV)] == 12
        assert len(listed) == len(OpClass)
