"""Frontier streaming and shard splicing reproduce whole-trace analysis.

The load-bearing property of :mod:`repro.core.stream` is *exactness*:
chunked streaming and sharded stitch must equal the monolithic analyzer
field-for-field on every configuration, including the splice-ineligible
ones (which must fall back, not approximate). Equality is checked on
:func:`~repro.engine.serialize.result_to_dict` encodings — the engine's
canonical byte-identity form — never on object ``==``.
"""

import random

import pytest

from repro.core.analyzer import analyze
from repro.core.config import OPTIMISTIC, AnalysisConfig
from repro.core.resources import ResourceModel
from repro.core.stream import (
    advance,
    align_shard_size,
    finalize,
    new_frontier,
    shard_analyze_trace,
    splice,
    splice_eligible,
    stream_analyze_trace,
    summarize_segment,
)
from repro.engine.serialize import result_to_dict
from repro.trace.columnar import ColumnarTrace
from repro.trace.synthetic import TraceBuilder, random_trace
from repro.verify.generate import generate_trace, sample_config

#: One configuration per kernel/feature axis the frontier must carry.
CONFIGS = [
    AnalysisConfig(),                                   # dataflow kernel
    AnalysisConfig(window_size=4),                      # windowed kernel
    AnalysisConfig(window_size=1),
    AnalysisConfig.no_renaming(),                       # generic: WAR terms
    AnalysisConfig(rename_stack=False, window_size=8),  # generic + ring
    AnalysisConfig(syscall_policy=OPTIMISTIC),
    AnalysisConfig(memory_disambiguation="conservative"),
    AnalysisConfig(branch_predictor="bimodal"),            # sequential-only state
    AnalysisConfig(collect_lifetimes=True),
    AnalysisConfig(resources=ResourceModel(universal=2)),
]


def expected(trace, config):
    return result_to_dict(analyze(trace, config))


class TestStreamEquivalence:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("chunk", [1, 3, 64])
    def test_chunked_equals_whole(self, config, chunk):
        trace = random_trace(11, 150, syscall_fraction=0.04)
        got = result_to_dict(stream_analyze_trace(trace, config, chunk_records=chunk))
        assert got == expected(trace, config)

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("shard", [5, 16, 64])
    def test_sharded_equals_whole(self, config, shard):
        trace = random_trace(12, 150, syscall_fraction=0.04)
        got = result_to_dict(shard_analyze_trace(trace, config, shard_size=shard))
        assert got == expected(trace, config)

    def test_adversarial_cases_at_every_cut(self):
        rng = random.Random(99)
        for _ in range(50):
            config = sample_config(rng)
            trace = generate_trace(rng)
            want = expected(trace, config)
            for chunk in (1, 2, len(trace)):
                got = stream_analyze_trace(trace, config, chunk_records=chunk)
                assert result_to_dict(got) == want, config.describe()
            got = shard_analyze_trace(trace, config, shard_size=3)
            assert result_to_dict(got) == want, config.describe()

    def test_empty_trace(self):
        empty = TraceBuilder().build()
        config = AnalysisConfig()
        assert result_to_dict(stream_analyze_trace(empty, config)) == expected(
            empty, config
        )
        assert result_to_dict(shard_analyze_trace(empty, config)) == expected(
            empty, config
        )

    def test_finalize_is_repeatable(self):
        trace = ColumnarTrace.from_buffer(
            random_trace(13, 80, syscall_fraction=0.05)
        )
        config = AnalysisConfig(collect_lifetimes=True, window_size=4)
        fr = new_frontier(config, trace.segments)
        advance(fr, trace, 0, 40)
        first = result_to_dict(finalize(fr))
        assert result_to_dict(finalize(fr)) == first  # finalize did not mutate
        advance(fr, trace, 40)
        assert result_to_dict(finalize(fr)) == expected(trace.to_buffer(), config)

    def test_advance_rejects_bad_range(self):
        trace = ColumnarTrace.from_buffer(random_trace(14, 10))
        fr = new_frontier(AnalysisConfig(), trace.segments)
        with pytest.raises(ValueError, match="bad record range"):
            advance(fr, trace, 5, 20)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_records"):
            stream_analyze_trace(random_trace(15, 10), chunk_records=0)


class TestSpliceEligibility:
    def test_eligible_configs(self):
        assert splice_eligible(AnalysisConfig())
        assert splice_eligible(AnalysisConfig.no_renaming())
        assert splice_eligible(AnalysisConfig(window_size=4))
        assert splice_eligible(AnalysisConfig(memory_disambiguation="conservative"))

    def test_ineligible_configs(self):
        assert not splice_eligible(AnalysisConfig(syscall_policy=OPTIMISTIC))
        assert not splice_eligible(AnalysisConfig(branch_predictor="bimodal"))
        assert not splice_eligible(AnalysisConfig(collect_lifetimes=True))
        assert not splice_eligible(
            AnalysisConfig(resources=ResourceModel(universal=2))
        )

    def test_align_rounds_up_to_window(self):
        assert align_shard_size(AnalysisConfig(window_size=16), 100) == 112
        assert align_shard_size(AnalysisConfig(), 100) == 100
        with pytest.raises(ValueError):
            align_shard_size(AnalysisConfig(), 0)


class TestSummaryAndSplice:
    def _segmented_trace(self):
        builder = TraceBuilder()
        builder.ialu(1, 2).ialu(2, 1).syscall().load(3, 0x1000)
        builder.ialu(4, 3).ialu(5, 4).ialu(6, 5)
        return ColumnarTrace.from_buffer(builder.build())

    def test_summary_levels_are_local(self):
        trace = self._segmented_trace()
        summary = summarize_segment(trace, AnalysisConfig())
        assert summary.count == 7
        assert summary.prefix_count == 3  # through the syscall
        # The suffix chain load->ialu->ialu->ialu from a fresh frontier:
        # levels 0(+load)..: deepest is local, independent of the prefix.
        assert summary.deepest >= 0
        assert summary.placed == 4

    def test_splice_equals_sequential_advance(self):
        trace = self._segmented_trace()
        config = AnalysisConfig()
        summary = summarize_segment(trace, config)
        stitched = new_frontier(config, trace.segments)
        advance(stitched, trace, 0, summary.prefix_count)
        splice(stitched, summary)
        sequential = new_frontier(config, trace.segments)
        advance(sequential, trace)
        assert result_to_dict(finalize(stitched)) == result_to_dict(
            finalize(sequential)
        )

    def test_rejects_ineligible_config(self):
        with pytest.raises(ValueError, match="not splice-eligible"):
            summarize_segment(
                self._segmented_trace(), AnalysisConfig(syscall_policy=OPTIMISTIC)
            )

    def test_rejects_segment_without_syscall(self):
        trace = ColumnarTrace.from_buffer(
            random_trace(16, 20, syscall_fraction=0.0)
        )
        with pytest.raises(ValueError, match="no syscall"):
            summarize_segment(trace, AnalysisConfig())
