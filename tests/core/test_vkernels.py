"""Vectorized placement backend: eligibility, fallback, and bit-equality.

``repro.core.vkernels`` is a fourth independent implementation of the
placement semantics (after the legacy analyzer, the columnar kernels, and
the readable reference), evaluating the rule over level-frontier batches
with NumPy. It is an execution strategy, never semantics: every test here
pins it field-for-field against the python kernels over the same traces
and configurations, including mid-stream frontier handoffs where the two
backends alternate batches of one analysis.
"""

import dataclasses

import pytest

from repro.core import vkernels
from repro.core.analyzer import analyze
from repro.core.config import CONSERVATIVE_DISAMBIGUATION, AnalysisConfig
from repro.core.kernels import analyze_columnar
from repro.core.resources import ResourceModel
from repro.core.stream import advance, finalize, new_frontier
from repro.trace.columnar import ColumnarTrace
from repro.trace.synthetic import TraceBuilder, random_trace

requires_numpy = pytest.mark.skipif(
    not vkernels.available(), reason="NumPy is not installed"
)


def assert_same_result(fast, slow):
    """Field-for-field equality (profiles compare by counts)."""
    assert fast.records_processed == slow.records_processed
    assert fast.placed_operations == slow.placed_operations
    assert fast.critical_path_length == slow.critical_path_length
    assert fast.syscalls == slow.syscalls
    assert fast.firewalls == slow.firewalls
    assert fast.branches == slow.branches
    assert fast.mispredictions == slow.mispredictions
    assert fast.peak_live_well == slow.peak_live_well
    if slow.profile is None:
        assert fast.profile is None
    else:
        assert fast.profile.counts == slow.profile.counts
    if slow.lifetimes is None:
        assert fast.lifetimes is None
    else:
        assert fast.lifetimes.lifetime_histogram == slow.lifetimes.lifetime_histogram
        assert fast.lifetimes.sharing_histogram == slow.lifetimes.sharing_histogram


def columnar_trace(seed, length=400, **kwargs):
    kwargs.setdefault("memory_words", 24)
    kwargs.setdefault("syscall_fraction", 0.03)
    return ColumnarTrace.from_buffer(
        random_trace(seed=seed, length=length, **kwargs)
    )


class TestEligibility:
    @pytest.mark.parametrize(
        "config",
        [
            AnalysisConfig(),
            AnalysisConfig.no_renaming(),
            AnalysisConfig(rename_stack=False),
            AnalysisConfig(window_size=1),
            AnalysisConfig(window_size=64),
            AnalysisConfig(syscall_policy="optimistic"),
            AnalysisConfig(collect_lifetimes=True),
            AnalysisConfig(memory_disambiguation=CONSERVATIVE_DISAMBIGUATION),
            AnalysisConfig(resources=ResourceModel()),  # unconstrained
        ],
    )
    def test_eligible_configs(self, config):
        assert vkernels.eligible(config)

    @pytest.mark.parametrize(
        "config",
        [
            AnalysisConfig(branch_predictor="bimodal"),
            AnalysisConfig(branch_predictor="not-taken"),
            AnalysisConfig(resources=ResourceModel(universal=2)),
        ],
    )
    def test_sequential_features_are_ineligible(self, config):
        assert not vkernels.eligible(config)


class TestBackendValidation:
    """An unknown backend string is a caller error everywhere, even when
    NumPy is absent (validation precedes availability)."""

    def test_analyze_rejects_unknown_backend(self, figure1_trace):
        with pytest.raises(ValueError, match="unknown analysis backend"):
            analyze(figure1_trace, AnalysisConfig(), backend="cuda")

    def test_analyze_columnar_rejects_unknown_backend(self, figure1_trace):
        columnar = ColumnarTrace.from_buffer(figure1_trace)
        with pytest.raises(ValueError, match="unknown analysis backend"):
            analyze_columnar(columnar, AnalysisConfig(), backend="cuda")

    def test_new_frontier_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown analysis backend"):
            new_frontier(AnalysisConfig(), backend="cuda")

    def test_python_backend_is_always_valid(self, figure1_trace):
        result = analyze(figure1_trace, AnalysisConfig(), backend="python")
        assert result.records_processed == len(figure1_trace)


class TestGracefulFallback:
    """backend="numpy" silently degrades to the python loops whenever the
    vectorized engine cannot run; results never change."""

    def test_without_numpy_available_is_false(self, monkeypatch):
        monkeypatch.setattr(vkernels, "_np", None)
        assert not vkernels.available()

    def test_without_numpy_analyze_falls_back(self, monkeypatch):
        trace = columnar_trace(5, length=120)
        expected = analyze_columnar(trace, AnalysisConfig())
        monkeypatch.setattr(vkernels, "_np", None)
        assert_same_result(
            analyze_columnar(trace, AnalysisConfig(), backend="numpy"), expected
        )
        assert_same_result(
            analyze(trace, AnalysisConfig(), backend="numpy"), expected
        )

    def test_without_numpy_advance_batch_declines(self, monkeypatch):
        trace = columnar_trace(5, length=60)
        monkeypatch.setattr(vkernels, "_np", None)
        fr = new_frontier(AnalysisConfig(), trace.segments, backend="numpy")
        assert not vkernels.advance_batch(fr, trace, 0, len(trace))
        assert fr.records == 0  # untouched

    def test_without_numpy_strict_entry_raises(self, monkeypatch):
        trace = columnar_trace(5, length=60)
        monkeypatch.setattr(vkernels, "_np", None)
        with pytest.raises(RuntimeError, match="requires NumPy"):
            vkernels.analyze_vectorized(trace, AnalysisConfig())

    @requires_numpy
    def test_ineligible_config_falls_back(self):
        trace = columnar_trace(6, length=200, branch_fraction=0.2)
        config = AnalysisConfig(branch_predictor="bimodal")
        expected = analyze_columnar(trace, config)
        assert_same_result(analyze_columnar(trace, config, backend="numpy"), expected)

    @requires_numpy
    def test_ineligible_config_strict_entry_raises(self):
        trace = columnar_trace(6, length=60)
        with pytest.raises(ValueError, match="not eligible"):
            vkernels.analyze_vectorized(
                trace, AnalysisConfig(branch_predictor="bimodal")
            )

    @requires_numpy
    def test_ineligible_advance_batch_declines(self):
        trace = columnar_trace(6, length=60)
        config = AnalysisConfig(resources=ResourceModel(universal=2))
        fr = new_frontier(config, trace.segments, backend="numpy")
        assert not vkernels.advance_batch(fr, trace, 0, len(trace))
        assert fr.records == 0


#: The cross-backend grid: renaming lattice x window x syscall policy x
#: disambiguation x lifetimes — every eligible kernel family and feature.
ELIGIBLE_GRID = [
    AnalysisConfig(syscall_policy=policy, window_size=window, **extra)
    for policy in ("conservative", "optimistic")
    for window in (None, 1, 7, 64)
    for extra in (
        {},
        {"rename_registers": False, "rename_stack": False, "rename_data": False},
        {"rename_stack": False},
        {"memory_disambiguation": CONSERVATIVE_DISAMBIGUATION},
        {"collect_lifetimes": True},
    )
]


@requires_numpy
class TestCrossBackendGrid:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_grid_identical_results(self, seed):
        trace = columnar_trace(seed)
        for config in ELIGIBLE_GRID:
            assert vkernels.eligible(config), config.describe()
            assert_same_result(
                vkernels.analyze_vectorized(trace, config),
                analyze_columnar(trace, config),
            )

    def test_profile_toggle(self):
        trace = columnar_trace(4, length=250)
        config = AnalysisConfig(collect_profile=False)
        assert_same_result(
            vkernels.analyze_vectorized(trace, config),
            analyze_columnar(trace, config),
        )

    def test_wide_frontier_rounds(self):
        """A trace wide enough to leave the scalar cascade and run the
        wide numpy frontier rounds (> NARROW_FRONTIER independent ops)."""
        builder = TraceBuilder()
        for i in range(4 * vkernels.NARROW_FRONTIER):
            builder.ialu(1 + (i % 60))
        trace = ColumnarTrace.from_buffer(builder.build())
        for config in (AnalysisConfig(), AnalysisConfig.no_renaming()):
            assert_same_result(
                vkernels.analyze_vectorized(trace, config),
                analyze_columnar(trace, config),
            )


@requires_numpy
class TestEdgeTraces:
    def test_empty_trace(self):
        trace = ColumnarTrace.from_buffer(TraceBuilder().build())
        result = vkernels.analyze_vectorized(trace, AnalysisConfig())
        assert result.records_processed == 0
        assert_same_result(result, analyze_columnar(trace, AnalysisConfig()))

    def test_syscall_only_trace(self):
        builder = TraceBuilder()
        builder.syscall()
        builder.syscall()
        trace = ColumnarTrace.from_buffer(builder.build())
        for config in (
            AnalysisConfig(),
            AnalysisConfig(window_size=1),
            AnalysisConfig(syscall_policy="optimistic"),
        ):
            assert_same_result(
                vkernels.analyze_vectorized(trace, config),
                analyze_columnar(trace, config),
            )

    def test_syscall_with_dests(self):
        from repro.isa.opclasses import OpClass

        builder = TraceBuilder()
        builder.ialu(5)
        builder.ialu(3, 5, 4)
        builder.op(OpClass.SYSCALL, (5,))
        builder.ialu(1, 5, 1)
        trace = ColumnarTrace.from_buffer(builder.build())
        for policy in ("conservative", "optimistic"):
            config = AnalysisConfig(syscall_policy=policy)
            assert_same_result(
                vkernels.analyze_vectorized(trace, config),
                analyze_columnar(trace, config),
            )

    def test_branchy_trace(self):
        """Branches/jumps are never placed but still counted; with no
        predictor they stay backend-eligible."""
        trace = columnar_trace(9, length=300, branch_fraction=0.3)
        for config in (AnalysisConfig(), AnalysisConfig(window_size=5)):
            assert_same_result(
                vkernels.analyze_vectorized(trace, config),
                analyze_columnar(trace, config),
            )


@requires_numpy
class TestAdvanceBatch:
    """The streaming port: advance_batch must leave the frontier in exactly
    the state the python loops would, so the two backends can alternate
    batches of one analysis without changing its result."""

    CONFIGS = [
        AnalysisConfig(),
        AnalysisConfig.no_renaming(),
        AnalysisConfig(window_size=16),
        AnalysisConfig(syscall_policy="optimistic", collect_lifetimes=True),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_numpy_batches_match_python(self, config):
        trace = columnar_trace(7)
        cuts = [0, 61, 250, len(trace)]
        expected = finalize(
            advance(new_frontier(config, trace.segments), trace)
        )
        fr = new_frontier(config, trace.segments, backend="numpy")
        for lo, hi in zip(cuts, cuts[1:]):
            advance(fr, trace, lo, hi)
        assert_same_result(finalize(fr), expected)

    @pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.describe())
    def test_backend_handoff_mid_stream(self, config):
        """numpy for the first half of the records, python loops for the
        second — the handoff state must be exact, not just the totals."""
        trace = columnar_trace(8)
        mid = len(trace) // 2
        expected = finalize(
            advance(new_frontier(config, trace.segments), trace)
        )
        fr = new_frontier(config, trace.segments, backend="numpy")
        advance(fr, trace, 0, mid)
        fr.backend = "python"
        advance(fr, trace, mid, len(trace))
        assert_same_result(finalize(fr), expected)

    def test_non_buffer_columns_decline(self):
        """Columns without a plain buffer (e.g. lists) bounce the batch
        back to the python loops instead of crashing."""
        trace = columnar_trace(7, length=40)
        hollow = dataclasses.make_dataclass("Hollow", ["opclass"])(
            opclass=list(trace.opclass)
        )
        fr = new_frontier(AnalysisConfig(), trace.segments, backend="numpy")
        assert not vkernels.advance_batch(fr, hollow, 0, 40)
        assert fr.records == 0


@requires_numpy
class TestIndexCache:
    def test_index_reused_across_runs(self):
        trace = columnar_trace(11, length=150)
        vkernels.analyze_vectorized(trace, AnalysisConfig())
        cached = dict(trace._vk_index)
        assert cached
        vkernels.analyze_vectorized(trace, AnalysisConfig(window_size=8))
        for key, value in cached.items():
            assert trace._vk_index[key] is value

    def test_policy_keys_distinct(self):
        trace = columnar_trace(11, length=150)
        vkernels.analyze_vectorized(trace, AnalysisConfig())
        vkernels.analyze_vectorized(
            trace, AnalysisConfig(syscall_policy="optimistic")
        )
        assert len(trace._vk_index) == 2


@requires_numpy
class TestSharedMemoryColumns:
    def test_shm_backed_trace_identical(self):
        """memoryview-cast columns out of a shared-memory block feed the
        same zero-copy frombuffer path as local arrays."""
        local = columnar_trace(13, length=300)
        shm = local.to_shared_memory()
        try:
            attached = ColumnarTrace.from_shared_memory(shm.name)
            try:
                for config in (
                    AnalysisConfig(),
                    AnalysisConfig.no_renaming(),
                    AnalysisConfig(window_size=32),
                ):
                    assert_same_result(
                        vkernels.analyze_vectorized(attached, config),
                        analyze_columnar(local, config),
                    )
            finally:
                attached.close()
        finally:
            shm.close()
            shm.unlink()
