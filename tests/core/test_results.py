"""Analysis result container and measurement-error calculation."""

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.results import AnalysisResult, measurement_error
from repro.trace.synthetic import TraceBuilder, serial_chain


def result_with(ap_placed, cp):
    return AnalysisResult(
        records_processed=ap_placed,
        placed_operations=ap_placed,
        critical_path_length=cp,
        profile=None,
        syscalls=0,
        firewalls=0,
        branches=0,
        mispredictions=0,
        peak_live_well=0,
        lifetimes=None,
        config=AnalysisConfig(),
    )


class TestAvailableParallelism:
    def test_ratio(self):
        assert result_with(100, 25).available_parallelism == 4.0

    def test_zero_critical_path(self):
        assert result_with(0, 0).available_parallelism == 0.0

    def test_summary_line(self):
        text = result_with(10, 5).summary()
        assert "placed=10" in text
        assert "critical_path=5" in text
        assert "parallelism=2.00" in text


class TestMeasurementError:
    def test_paper_formula(self):
        # cc1: 1 - 36.21/52.95 ~= 0.316 -> the paper rounds to 0.32
        conservative = result_with(3621, 100)
        optimistic = result_with(5295, 100)
        error = measurement_error(conservative, optimistic)
        assert abs(error - (1 - 3621 / 5295)) < 1e-12

    def test_identical_results_zero_error(self):
        result = result_with(50, 10)
        assert measurement_error(result, result) == 0.0

    def test_zero_optimistic_guard(self):
        assert measurement_error(result_with(1, 1), result_with(0, 0)) == 0.0

    def test_on_real_analysis(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.syscall()
        builder.ialu(3)
        builder.ialu(4, 3)
        trace = builder.build()
        unit = LatencyTable.unit()
        conservative = analyze(trace, AnalysisConfig(latency=unit))
        optimistic = analyze(
            trace, AnalysisConfig(latency=unit, syscall_policy="optimistic")
        )
        error = measurement_error(conservative, optimistic)
        assert 0.0 <= error < 1.0
        # the firewall lengthened the path, so some error exists
        assert error > 0.0


class TestConfigInteraction:
    def test_serial_chain_error_free(self):
        trace = serial_chain(30)
        conservative = analyze(trace, AnalysisConfig())
        optimistic = analyze(trace, AnalysisConfig(syscall_policy="optimistic"))
        assert measurement_error(conservative, optimistic) == 0.0
