"""Analysis configuration presets and validation."""

import pytest

from repro.core.config import CONSERVATIVE, OPTIMISTIC, AnalysisConfig


class TestPresets:
    def test_dataflow_limit(self):
        config = AnalysisConfig.dataflow_limit()
        assert config.rename_registers and config.rename_stack and config.rename_data
        assert config.window_size is None
        assert config.syscall_policy == CONSERVATIVE

    def test_dataflow_limit_optimistic(self):
        assert AnalysisConfig.dataflow_limit(OPTIMISTIC).syscall_policy == OPTIMISTIC

    def test_no_renaming(self):
        config = AnalysisConfig.no_renaming()
        assert not (config.rename_registers or config.rename_stack or config.rename_data)

    def test_registers_renamed(self):
        config = AnalysisConfig.registers_renamed()
        assert config.rename_registers
        assert not config.rename_stack and not config.rename_data

    def test_registers_and_stack(self):
        config = AnalysisConfig.registers_and_stack_renamed()
        assert config.rename_registers and config.rename_stack
        assert not config.rename_data

    def test_windowed(self):
        assert AnalysisConfig.windowed(128).window_size == 128


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError, match="syscall_policy"):
            AnalysisConfig(syscall_policy="never")

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window_size"):
            AnalysisConfig(window_size=-5)


class TestDerive:
    def test_derive_changes_one_field(self):
        base = AnalysisConfig()
        derived = base.derive(window_size=64)
        assert derived.window_size == 64
        assert derived.syscall_policy == base.syscall_policy
        assert base.window_size is None  # original untouched (frozen)

    def test_describe_mentions_switches(self):
        text = AnalysisConfig.registers_renamed().describe()
        assert "rename=regs" in text
        assert "window=inf" in text

    def test_describe_no_renaming(self):
        assert "rename=none" in AnalysisConfig.no_renaming().describe()
