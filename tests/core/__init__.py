"""Test package."""
