"""Columnar kernels: dispatch rules and cross-validation.

The columnar kernels are a third independent implementation of the
placement semantics; every test here pins them field-for-field against the
legacy streaming analyzer and the readable reference over the same traces
and configurations — including the routed entry point (``analyze`` handed a
``ColumnarTrace``), so the per-config representation choice can never
change results.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import analyze
from repro.core.config import CONSERVATIVE_DISAMBIGUATION, AnalysisConfig
from repro.core.kernels import (
    KERNEL_DATAFLOW,
    KERNEL_GENERIC,
    KERNEL_WINDOWED,
    analyze_columnar,
    select_kernel,
)
from repro.core.latency import LatencyTable
from repro.core.reference import reference_analyze
from repro.core.resources import ResourceModel
from repro.trace.columnar import ColumnarTrace
from repro.trace.synthetic import TraceBuilder, random_trace


def assert_same_result(fast, slow):
    """Field-for-field equality (profiles compare by counts)."""
    assert fast.records_processed == slow.records_processed
    assert fast.placed_operations == slow.placed_operations
    assert fast.critical_path_length == slow.critical_path_length
    assert fast.syscalls == slow.syscalls
    assert fast.firewalls == slow.firewalls
    assert fast.branches == slow.branches
    assert fast.mispredictions == slow.mispredictions
    assert fast.peak_live_well == slow.peak_live_well
    if slow.profile is None:
        assert fast.profile is None
    else:
        assert fast.profile.counts == slow.profile.counts
    if slow.lifetimes is None:
        assert fast.lifetimes is None
    else:
        assert fast.lifetimes.lifetime_histogram == slow.lifetimes.lifetime_histogram
        assert fast.lifetimes.sharing_histogram == slow.lifetimes.sharing_histogram


def cross_validate(buffer, config):
    """One trace, one config, four ways: legacy, columnar kernel, routed
    columnar, readable reference — all identical."""
    columnar = ColumnarTrace.from_buffer(buffer)
    legacy = analyze(buffer, config)
    kernel = analyze_columnar(columnar, config)
    routed = analyze(columnar, config)
    reference = reference_analyze(buffer, config)
    assert_same_result(kernel, legacy)
    assert_same_result(routed, legacy)
    assert_same_result(kernel, reference)
    return kernel


class TestSelectKernel:
    def test_dataflow_limit_config(self):
        assert select_kernel(AnalysisConfig()) == KERNEL_DATAFLOW

    def test_window_picks_windowed(self):
        assert select_kernel(AnalysisConfig(window_size=64)) == KERNEL_WINDOWED

    def test_profile_toggle_stays_specialized(self):
        assert select_kernel(AnalysisConfig(collect_profile=False)) == KERNEL_DATAFLOW

    @pytest.mark.parametrize(
        "config",
        [
            AnalysisConfig.no_renaming(),
            AnalysisConfig(rename_stack=False),
            AnalysisConfig(branch_predictor="bimodal"),
            AnalysisConfig(collect_lifetimes=True),
            AnalysisConfig(memory_disambiguation=CONSERVATIVE_DISAMBIGUATION),
            AnalysisConfig(resources=ResourceModel(universal=2)),
            AnalysisConfig(window_size=8, collect_lifetimes=True),
        ],
    )
    def test_any_unspecialized_feature_falls_back(self, config):
        assert select_kernel(config) == KERNEL_GENERIC

    def test_unconstrained_resources_stay_specialized(self):
        config = AnalysisConfig(resources=ResourceModel())
        assert select_kernel(config) == KERNEL_DATAFLOW


#: The deterministic config grid the issue prescribes: renaming lattice x
#: window x syscall policy x memory disambiguation (plus lifetimes and a
#: predictor, which exercise the generic kernel's remaining features).
CONFIG_GRID = [
    AnalysisConfig(syscall_policy=policy, window_size=window, **extra)
    for policy in ("conservative", "optimistic")
    for window in (None, 7, 64)
    for extra in (
        {},
        {"rename_registers": False, "rename_stack": False, "rename_data": False},
        {"rename_stack": False},
        {"memory_disambiguation": CONSERVATIVE_DISAMBIGUATION},
        {"collect_lifetimes": True},
        {"branch_predictor": "bimodal"},
    )
]


class TestKernelCrossValidation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_config_grid_identical_results(self, seed):
        buffer = random_trace(seed=seed, length=400, memory_words=24,
                              syscall_fraction=0.03)
        for config in CONFIG_GRID:
            cross_validate(buffer, config)

    def test_empty_trace(self):
        buffer = TraceBuilder().build()
        for config in (AnalysisConfig(), AnalysisConfig(window_size=4)):
            result = cross_validate(buffer, config)
            assert result.records_processed == 0

    def test_syscall_only_trace(self):
        builder = TraceBuilder()
        builder.syscall()
        builder.syscall()
        cross_validate(builder.build(), AnalysisConfig())
        cross_validate(builder.build(), AnalysisConfig(window_size=1))

    @settings(max_examples=60, deadline=None)
    @given(
        trace=st.builds(
            random_trace,
            seed=st.integers(0, 1_000_000),
            length=st.integers(0, 300),
            memory_words=st.integers(1, 24),
        ),
        config=st.builds(
            AnalysisConfig,
            syscall_policy=st.sampled_from(["conservative", "optimistic"]),
            rename_registers=st.booleans(),
            rename_stack=st.booleans(),
            rename_data=st.booleans(),
            window_size=st.one_of(st.none(), st.integers(1, 40)),
            latency=st.sampled_from([LatencyTable.default(), LatencyTable.unit()]),
            collect_lifetimes=st.booleans(),
            collect_profile=st.booleans(),
        ),
    )
    def test_property_columnar_matches_legacy(self, trace, config):
        columnar = ColumnarTrace.from_buffer(trace)
        assert_same_result(analyze_columnar(columnar, config), analyze(trace, config))


class TestWindowedMispredictionFirewall:
    """Regression: the window ring displacement and a misprediction-raised
    floor race each other — whichever constraint lands deeper must win,
    identically in the reference, the legacy analyzer, and the kernels."""

    @staticmethod
    def crafted_trace():
        """A dependence chain, then a mispredicted branch (taken, against a
        not-taken predictor) whose resolution raises the floor while a tiny
        window is simultaneously displacing deep completion levels."""
        builder = TraceBuilder()
        builder.ialu(1)  # level 0
        for _ in range(6):  # serial chain: r2 deepens one level per op
            builder.op(2, (2,), (2, 1))
        builder.branch(2, taken=True, pc=64)  # resolves off the deep chain
        for reg in (3, 4, 5):  # independent ops squeezed by floor vs ring
            builder.ialu(reg)
        builder.op(2, (6,), (2, 3))
        builder.branch(6, taken=True, pc=64)  # same pc: predictor warmed
        for reg in (7, 8):
            builder.ialu(reg)
        return builder.build()

    @pytest.mark.parametrize("window", [1, 2, 3, 8])
    @pytest.mark.parametrize("predictor", ["not-taken", "taken", "bimodal"])
    def test_crafted_trace_all_implementations_agree(self, window, predictor):
        config = AnalysisConfig(window_size=window, branch_predictor=predictor)
        result = cross_validate(self.crafted_trace(), config)
        if predictor == "not-taken":
            assert result.mispredictions == 2

    def test_misprediction_firewall_rises(self):
        """The not-taken predictor mispredicts both taken branches; with a
        tight window the firewalls must still raise the floor (the ring
        cannot mask the misprediction penalty)."""
        config = AnalysisConfig(window_size=2, branch_predictor="not-taken")
        constrained = cross_validate(self.crafted_trace(), config)
        free = cross_validate(self.crafted_trace(), AnalysisConfig())
        assert constrained.mispredictions == 2
        assert constrained.critical_path_length > free.critical_path_length

    @pytest.mark.parametrize("seed", [11, 23, 47])
    @pytest.mark.parametrize("window", [1, 3, 9])
    @pytest.mark.parametrize("predictor", ["not-taken", "bimodal", "gshare"])
    def test_random_branchy_traces_agree(self, seed, window, predictor):
        buffer = random_trace(seed=seed, length=300, memory_words=16,
                              branch_fraction=0.3)
        config = AnalysisConfig(window_size=window, branch_predictor=predictor)
        cross_validate(buffer, config)
