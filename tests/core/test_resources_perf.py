"""Resource-state scaling: the union-find skip must keep scarce-FU
placement near-linear (a naive first-fit scan is quadratic)."""

import time

from repro.core.resources import ResourceModel, ResourceState


class TestSkipStructure:
    def test_saturated_history_skipped(self):
        state = ResourceState(ResourceModel(universal=1))
        for expected in range(2000):
            assert state.place(0, 0) == expected
        # placing from level 0 again must land at the frontier immediately
        assert state.place(0, 0) == 2000

    def test_path_compression_flattens_chains(self):
        state = ResourceState(ResourceModel(universal=1))
        for _ in range(5000):
            state.place(0, 0)
        table = state._universal
        # a lookup from 0 compresses the whole chain to point at the root
        root = table.first_free(0)
        assert root == 5000
        assert table._next[0] == root

    def test_mid_history_requests_fast(self):
        # dependence-earliest in the middle of a packed region: the skip
        # structure must not re-walk it per request.
        state = ResourceState(ResourceModel(universal=2))
        start = time.perf_counter()
        for index in range(30_000):
            state.place(0, index // 4)  # earliest lags the frontier
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # the quadratic scan took minutes at this size

    def test_combined_constraints_converge(self):
        from repro.isa.opclasses import OpClass

        state = ResourceState(
            ResourceModel(universal=2, per_class={OpClass.IALU: 1})
        )
        # ialu takes its own cap; a second ialu at the same level must move
        assert state.place(int(OpClass.IALU), 0) == 0
        assert state.place(int(OpClass.IALU), 0) == 1
        # non-ialu fills the remaining universal slot at level 0
        assert state.place(int(OpClass.FMUL), 0) == 0
        # now level 0 is universally full for everyone
        assert state.place(int(OpClass.FADD), 0) == 1

    def test_interleaved_classes_independent_tables(self):
        from repro.isa.opclasses import OpClass

        state = ResourceState(
            ResourceModel(per_class={OpClass.FMUL: 1, OpClass.FDIV: 1})
        )
        for expected in range(50):
            assert state.place(int(OpClass.FMUL), 0) == expected
        # FDIV has its own table, unaffected by FMUL saturation
        assert state.place(int(OpClass.FDIV), 0) == 0
