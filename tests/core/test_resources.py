"""Functional-unit resource models."""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel, ResourceState
from repro.isa.opclasses import OpClass
from repro.trace.synthetic import independent_ops


class TestModel:
    def test_unconstrained_detection(self):
        assert ResourceModel().unconstrained
        assert not ResourceModel(universal=4).unconstrained
        assert not ResourceModel(per_class={OpClass.FMUL: 2}).unconstrained

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ResourceModel(universal=0)
        with pytest.raises(ValueError):
            ResourceModel(per_class={OpClass.IALU: 0})


class TestState:
    def test_universal_slots_fill_level(self):
        state = ResourceState(ResourceModel(universal=2))
        assert state.place(0, 0) == 0
        assert state.place(0, 0) == 0
        assert state.place(0, 0) == 1  # third op overflows to the next level

    def test_per_class_slots_independent(self):
        state = ResourceState(
            ResourceModel(per_class={OpClass.IALU: 1, OpClass.FMUL: 1})
        )
        assert state.place(int(OpClass.IALU), 0) == 0
        assert state.place(int(OpClass.FMUL), 0) == 0  # other class unaffected
        assert state.place(int(OpClass.IALU), 0) == 1

    def test_unlimited_class_unaffected(self):
        state = ResourceState(ResourceModel(per_class={OpClass.FMUL: 1}))
        for _ in range(10):
            assert state.place(int(OpClass.IALU), 0) == 0

    def test_earliest_respected(self):
        state = ResourceState(ResourceModel(universal=1))
        assert state.place(0, 5) == 5
        assert state.place(0, 5) == 6


class TestIntegration:
    def test_k_units_bound_parallelism(self):
        trace = independent_ops(60)
        for k in (1, 2, 5):
            config = AnalysisConfig(
                latency=LatencyTable.unit(), resources=ResourceModel(universal=k)
            )
            result = analyze(trace, config)
            assert result.profile.max_width <= k
            assert result.available_parallelism <= k
            assert result.critical_path_length == 60 // k

    def test_unconstrained_model_is_free(self):
        trace = independent_ops(60)
        config = AnalysisConfig(
            latency=LatencyTable.unit(), resources=ResourceModel()
        )
        assert analyze(trace, config).critical_path_length == 1
