"""Conservative memory-disambiguation model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.ddg import build_ddg
from repro.core.latency import LatencyTable
from repro.core.reference import reference_analyze
from repro.core.twopass import twopass_analyze
from repro.trace.synthetic import TraceBuilder, random_trace

DATA = 0x1000


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


def conservative(**kwargs):
    return unit(memory_disambiguation="conservative", **kwargs)


class TestSemantics:
    def test_validation(self):
        with pytest.raises(ValueError, match="memory_disambiguation"):
            AnalysisConfig(memory_disambiguation="oracle")

    def test_independent_loads_unaffected(self):
        builder = TraceBuilder()
        for i in range(5):
            builder.load(1 + i, DATA + i)
        result = analyze(builder.build(), conservative())
        assert result.critical_path_length == 1  # no stores -> no ordering

    def test_load_waits_for_unrelated_store(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.store(1, DATA)        # store at level 1
        builder.load(2, DATA + 50)    # different address...
        perfect = analyze(builder.build(), unit())
        pessimistic = analyze(builder.build(), conservative())
        assert perfect.critical_path_length == 2
        assert pessimistic.critical_path_length == 3  # ...still waits

    def test_store_waits_for_prior_loads(self):
        builder = TraceBuilder()
        builder.load(1, DATA)          # level 0
        builder.load(2, DATA + 1)      # level 0
        builder.store(9, DATA + 99)    # pre-existing value, unrelated address
        perfect = analyze(builder.build(), unit())
        pessimistic = analyze(builder.build(), conservative())
        assert perfect.critical_path_length == 1
        assert pessimistic.critical_path_length == 2

    def test_stores_serialize(self):
        builder = TraceBuilder()
        for i in range(6):
            builder.ialu(1)
            builder.store(1, DATA + i)  # six different addresses
        perfect = analyze(builder.build(), unit())
        pessimistic = analyze(builder.build(), conservative())
        assert perfect.critical_path_length == 2
        assert pessimistic.critical_path_length == 7

    def test_load_latency_applied_to_alias_edge(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.store(1, DATA)
        builder.load(2, DATA + 7)
        result = analyze(builder.build(), AnalysisConfig(
            latency=LatencyTable.default().with_overrides(LOAD=5),
            memory_disambiguation="conservative",
        ))
        # store completes at 1; the aliased load needs 5 more levels
        assert result.critical_path_length == 7

    def test_never_faster_than_perfect(self):
        trace = random_trace(17, 800)
        perfect = analyze(trace, AnalysisConfig())
        pessimistic = analyze(
            trace, AnalysisConfig(memory_disambiguation="conservative")
        )
        assert (
            pessimistic.critical_path_length >= perfect.critical_path_length
        )


class TestCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), length=st.integers(0, 250))
    def test_matches_reference(self, seed, length):
        trace = random_trace(seed, length)
        config = AnalysisConfig(memory_disambiguation="conservative")
        fast = analyze(trace, config)
        slow = reference_analyze(trace, config)
        assert fast.critical_path_length == slow.critical_path_length
        assert fast.profile.counts == slow.profile.counts

    def test_matches_twopass(self):
        trace = random_trace(23, 700)
        config = AnalysisConfig(memory_disambiguation="conservative")
        assert (
            analyze(trace, config).critical_path_length
            == twopass_analyze(trace, config).critical_path_length
        )

    def test_explicit_ddg_rejects(self):
        with pytest.raises(ValueError, match="perfect disambiguation"):
            build_ddg(random_trace(1, 10), conservative())
