"""Constraint-interplay tests: combinations of analyzer switches."""

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.trace.synthetic import TraceBuilder, independent_ops, random_trace


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestWindowWithResources:
    def test_both_limits_respected(self):
        trace = independent_ops(120)
        result = analyze(
            trace, unit(window_size=8, resources=ResourceModel(universal=3))
        )
        assert result.profile.max_width <= 3  # the tighter constraint wins

    def test_resources_tighter_than_window(self):
        trace = independent_ops(120)
        window_only = analyze(trace, unit(window_size=4))
        both = analyze(
            trace, unit(window_size=4, resources=ResourceModel(universal=2))
        )
        assert both.critical_path_length >= window_only.critical_path_length


class TestWindowWithSyscalls:
    def test_firewalls_compose(self):
        builder = TraceBuilder()
        for index in range(40):
            builder.ialu(1 + index % 8)
            if index % 10 == 9:
                builder.syscall()
        trace = builder.build()
        conservative = analyze(trace, unit(window_size=4))
        optimistic = analyze(
            trace, unit(window_size=4, syscall_policy="optimistic")
        )
        assert (
            conservative.critical_path_length >= optimistic.critical_path_length
        )
        assert conservative.firewalls == 4


class TestDisambiguationWithRenaming:
    def test_conservative_mem_dominates_memory_renaming(self):
        # with no alias information, renaming memory locations cannot
        # recover the store->load ordering
        builder = TraceBuilder()
        for i in range(20):
            builder.ialu(1)
            builder.store(1, 0x1000 + i)
            builder.load(2, 0x2000 + i)
        trace = builder.build()
        renamed = analyze(trace, unit(memory_disambiguation="conservative"))
        kept = analyze(
            trace,
            unit(memory_disambiguation="conservative", rename_data=False),
        )
        assert renamed.critical_path_length >= 2 * 20
        assert kept.critical_path_length >= renamed.critical_path_length


class TestPredictorWithWindow:
    def test_mispredictions_add_to_window_limits(self):
        trace = random_trace(99, 800)
        base = analyze(trace, AnalysisConfig(window_size=64))
        with_bp = analyze(
            trace, AnalysisConfig(window_size=64, branch_predictor="not-taken")
        )
        assert with_bp.critical_path_length >= base.critical_path_length

    def test_lifetimes_collected_under_all_constraints(self):
        trace = random_trace(7, 500)
        config = AnalysisConfig(
            window_size=16,
            branch_predictor="bimodal",
            resources=ResourceModel(universal=4),
            collect_lifetimes=True,
        )
        result = analyze(trace, config)
        assert result.lifetimes is not None
        assert result.lifetimes.values_created > 0
