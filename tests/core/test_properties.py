"""Hypothesis property tests: cross-validation and invariants.

The strongest correctness argument in this reproduction: four independent
implementations of the placement semantics (the optimized streaming
analyzer, the readable reference, the two-pass variant, and the explicit
networkx DDG) must agree record-for-record on arbitrary traces under
arbitrary configurations.
"""

from hypothesis import given, settings, strategies as st

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.ddg import build_ddg
from repro.core.latency import LatencyTable
from repro.core.reference import reference_analyze
from repro.core.twopass import twopass_analyze
from repro.trace.synthetic import random_trace

configs = st.builds(
    AnalysisConfig,
    syscall_policy=st.sampled_from(["conservative", "optimistic"]),
    rename_registers=st.booleans(),
    rename_stack=st.booleans(),
    rename_data=st.booleans(),
    window_size=st.one_of(st.none(), st.integers(1, 40)),
    latency=st.sampled_from([LatencyTable.default(), LatencyTable.unit()]),
    collect_lifetimes=st.booleans(),
)

traces = st.builds(
    random_trace,
    seed=st.integers(0, 1_000_000),
    length=st.integers(0, 300),
    memory_words=st.integers(1, 24),
)


@settings(max_examples=80, deadline=None)
@given(trace=traces, config=configs)
def test_analyzer_matches_reference(trace, config):
    fast = analyze(trace, config)
    slow = reference_analyze(trace, config)
    assert fast.critical_path_length == slow.critical_path_length
    assert fast.placed_operations == slow.placed_operations
    assert fast.profile.counts == slow.profile.counts
    assert fast.syscalls == slow.syscalls
    assert fast.firewalls == slow.firewalls
    assert fast.peak_live_well == slow.peak_live_well
    if config.collect_lifetimes:
        assert fast.lifetimes.lifetime_histogram == slow.lifetimes.lifetime_histogram
        assert fast.lifetimes.sharing_histogram == slow.lifetimes.sharing_histogram


@settings(max_examples=60, deadline=None)
@given(trace=traces, config=configs)
def test_analyzer_matches_twopass(trace, config):
    forward = analyze(trace, config)
    twopass = twopass_analyze(trace, config)
    assert forward.critical_path_length == twopass.critical_path_length
    assert forward.profile.counts == twopass.profile.counts
    assert twopass.peak_live_well <= max(forward.peak_live_well, 1)


@settings(max_examples=60, deadline=None)
@given(trace=traces, config=configs)
def test_analyzer_matches_explicit_ddg(trace, config):
    result = analyze(trace, config)
    ddg = build_ddg(trace, config)
    ddg.verify_levels()
    assert ddg.critical_path_length == result.critical_path_length
    assert ddg.placed_operations == result.placed_operations
    assert ddg.profile().counts == result.profile.counts


@settings(max_examples=50, deadline=None)
@given(trace=traces)
def test_profile_mass_equals_placed_operations(trace):
    result = analyze(trace, AnalysisConfig())
    assert result.profile.total_operations == result.placed_operations


@settings(max_examples=50, deadline=None)
@given(trace=traces)
def test_renaming_lattice_monotone(trace):
    """Removing fewer storage dependencies never shortens the critical path."""
    none = analyze(trace, AnalysisConfig.no_renaming()).critical_path_length
    regs = analyze(trace, AnalysisConfig.registers_renamed()).critical_path_length
    stack = analyze(
        trace, AnalysisConfig.registers_and_stack_renamed()
    ).critical_path_length
    full = analyze(trace, AnalysisConfig()).critical_path_length
    assert none >= regs >= stack >= full


@settings(max_examples=50, deadline=None)
@given(trace=traces, small=st.integers(1, 20), growth=st.integers(1, 30))
def test_window_growth_monotone(trace, small, growth):
    """A larger window never lengthens the critical path."""
    narrow = analyze(trace, AnalysisConfig(window_size=small))
    wide = analyze(trace, AnalysisConfig(window_size=small + growth))
    unbounded = analyze(trace, AnalysisConfig())
    assert narrow.critical_path_length >= wide.critical_path_length
    assert wide.critical_path_length >= unbounded.critical_path_length


@settings(max_examples=50, deadline=None)
@given(trace=traces, window=st.integers(1, 16))
def test_window_bounds_profile_width(trace, window):
    result = analyze(trace, AnalysisConfig(window_size=window))
    assert result.profile.max_width <= window


@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_conservative_never_faster_than_optimistic(trace):
    conservative = analyze(trace, AnalysisConfig.dataflow_limit("conservative"))
    optimistic = analyze(trace, AnalysisConfig.dataflow_limit("optimistic"))
    assert (
        conservative.critical_path_length >= optimistic.critical_path_length
    )


@settings(max_examples=40, deadline=None)
@given(trace=traces, k=st.integers(1, 8))
def test_resource_limit_never_shortens_cp(trace, k):
    from repro.core.resources import ResourceModel

    free = analyze(trace, AnalysisConfig())
    limited = analyze(trace, AnalysisConfig(resources=ResourceModel(universal=k)))
    assert limited.critical_path_length >= free.critical_path_length
    assert limited.profile.max_width <= k


@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_unit_latency_cp_bounded_by_placed_ops(trace):
    result = analyze(trace, AnalysisConfig(latency=LatencyTable.unit()))
    assert result.critical_path_length <= max(result.placed_operations, 0) + 1
