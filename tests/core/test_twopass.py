"""Two-pass (reverse lifetime) analysis: method 1 vs method 2."""

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.core.twopass import compute_kill_lists, twopass_analyze
from repro.trace.synthetic import TraceBuilder, random_trace


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestKillLists:
    def test_last_read_marked(self):
        builder = TraceBuilder()
        builder.ialu(1)       # 0: create v1
        builder.ialu(2, 1)    # 1: read v1
        builder.ialu(3, 1)    # 2: last read of v1
        kills = compute_kill_lists(builder.build().records)
        assert kills[1] == ()
        assert kills[2] == (1,)

    def test_read_before_rewrite_is_last(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)    # 1: last read (rewritten next)
        builder.ialu(1)
        builder.ialu(3, 1)    # 3: last read of the new value
        kills = compute_kill_lists(builder.build().records)
        assert kills[1] == (1,)
        assert kills[3] == (1,)

    def test_branch_reads_ignored_by_default(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)    # would be last read...
        builder.branch(1)     # ...branch read doesn't count
        kills = compute_kill_lists(builder.build().records)
        assert kills[1] == (1,)

    def test_branch_reads_counted_when_requested(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.branch(1)
        kills = compute_kill_lists(builder.build().records, branch_reads=True)
        assert kills[1] == ()  # the branch still reads v1 later

    def test_syscall_argument_not_a_read(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.syscall(1)
        kills = compute_kill_lists(builder.build().records)
        assert kills[1] == (1,)

    def test_optimistic_syscall_dest_is_not_a_rebind(self):
        """Regression: under the optimistic policy the forward pass skips
        syscall records entirely, so a syscall destination must not make
        an earlier read look like the last use (found by ``verify``)."""
        from repro.isa.opclasses import OpClass

        builder = TraceBuilder()
        builder.ialu(5)                       # 0: create v5
        builder.ialu(3, 5)                    # 1: read v5
        builder.op(OpClass.SYSCALL, (5,))     # 2: syscall "writing" r5
        builder.ialu(1, 5)                    # 3: still reads the value from 0
        records = builder.build().records
        conservative = compute_kill_lists(records)
        optimistic = compute_kill_lists(records, optimistic_syscalls=True)
        assert conservative[1] == (5,)  # the syscall really rebinds r5
        assert optimistic[1] == ()      # the record is ignored wholesale
        assert optimistic[3] == (5,)


class TestEquivalence:
    CONFIGS = [
        unit(),
        unit(syscall_policy="optimistic"),
        unit(rename_registers=False, rename_stack=False, rename_data=False),
        unit(rename_data=False),
        unit(window_size=8),
        AnalysisConfig(),  # Table 1 latencies
        AnalysisConfig(branch_predictor="bimodal"),
        unit(collect_lifetimes=True),
    ]

    def test_identical_results_on_random_traces(self):
        for seed in (1, 5, 9):
            trace = random_trace(seed, 600)
            for config in self.CONFIGS:
                forward = analyze(trace, config)
                twopass = twopass_analyze(trace, config)
                assert (
                    forward.critical_path_length == twopass.critical_path_length
                ), config.describe()
                assert forward.placed_operations == twopass.placed_operations
                if forward.profile is not None:
                    assert forward.profile.counts == twopass.profile.counts
                if forward.lifetimes is not None:
                    assert (
                        forward.lifetimes.lifetime_histogram
                        == twopass.lifetimes.lifetime_histogram
                    )
                    assert (
                        forward.lifetimes.sharing_histogram
                        == twopass.lifetimes.sharing_histogram
                    )

    def test_peak_live_well_not_larger(self):
        trace = random_trace(3, 2000)
        forward = analyze(trace, unit())
        twopass = twopass_analyze(trace, unit())
        assert twopass.peak_live_well <= forward.peak_live_well

    def test_optimistic_syscall_with_dests_matches_forward(self):
        """End-to-end shape of the same regression: legacy and twopass
        agree on a trace whose syscall carries destination registers."""
        from repro.isa.opclasses import OpClass

        builder = TraceBuilder()
        builder.op(OpClass.IALU, (5, 2))
        builder.ialu(3, 5, 4)
        builder.op(OpClass.SYSCALL, (5,), (1,))
        builder.ialu(1, 5, 1)
        trace = builder.build()
        for config in (
            unit(syscall_policy="optimistic"),
            unit(
                syscall_policy="optimistic",
                rename_registers=True,
                rename_stack=True,
                rename_data=True,
            ),
        ):
            forward = analyze(trace, config)
            twopass = twopass_analyze(trace, config)
            assert forward.critical_path_length == twopass.critical_path_length
            assert forward.profile.counts == twopass.profile.counts

    def test_reclamation_actually_shrinks_working_set(self):
        # A long loop over many distinct memory words: method 2 keeps every
        # word forever; method 1 reclaims each after its last read.
        builder = TraceBuilder()
        for i in range(500):
            builder.ialu(1)
            builder.store(1, 0x1000 + i)
            builder.load(2, 0x1000 + i)
        trace = builder.build()
        forward = analyze(trace, unit())
        twopass = twopass_analyze(trace, unit())
        assert forward.peak_live_well > 500
        assert twopass.peak_live_well < 50
