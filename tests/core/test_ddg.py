"""Explicit DDG construction."""

import pytest

from repro.core.config import AnalysisConfig
from repro.core.ddg import build_ddg
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.trace.synthetic import TraceBuilder, random_trace, serial_chain

DATA = 0x1000


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestStructure:
    def test_raw_edges(self):
        trace = TraceBuilder().ialu(1).ialu(2, 1).build()
        ddg = build_ddg(trace, unit())
        assert ddg.graph.edges[0, 1]["kind"] == "raw"

    def test_war_edges_from_consumers(self):
        builder = TraceBuilder()
        builder.ialu(1)       # 0: creates v1
        builder.ialu(2, 1)    # 1: consumes v1
        builder.ialu(1)       # 2: rewrites location 1
        ddg = build_ddg(builder.build(), unit(rename_registers=False))
        assert ddg.graph.edges[1, 2]["kind"] == "war"

    def test_no_war_edges_with_renaming(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.ialu(1)
        ddg = build_ddg(builder.build(), unit())
        kinds = {k for _, _, k in ddg.graph.edges(data="kind")}
        assert "war" not in kinds

    def test_syscall_fence_edge(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.syscall()
        builder.ialu(2)
        ddg = build_ddg(builder.build(), unit())
        assert ddg.graph.edges[0, 1]["kind"] == "fence"
        assert ddg.graph.edges[1, 2]["kind"] == "firewall"

    def test_optimistic_syscall_not_a_node(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.syscall()
        ddg = build_ddg(builder.build(), unit(syscall_policy="optimistic"))
        assert ddg.placed_operations == 1

    def test_branches_not_nodes(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.branch(1)
        ddg = build_ddg(builder.build(), unit())
        assert ddg.placed_operations == 1

    def test_node_attributes(self):
        trace = TraceBuilder().ialu(1).build()
        ddg = build_ddg(trace, unit())
        node = ddg.graph.nodes[0]
        assert node["level"] == 0
        assert node["top"] == 1
        assert node["kind"] == "op"


class TestCriticalPath:
    def test_serial_chain_path(self):
        ddg = build_ddg(serial_chain(10), unit())
        path = ddg.critical_path_nodes()
        assert path == list(range(10))

    def test_path_levels_strictly_increase(self):
        trace = random_trace(31, 400)
        ddg = build_ddg(trace, unit())
        path = ddg.critical_path_nodes()
        levels = [ddg.graph.nodes[n]["level"] for n in path]
        assert levels == sorted(levels)
        assert levels[-1] == ddg.critical_path_length - 1

    def test_empty_trace(self):
        ddg = build_ddg(TraceBuilder().build(), unit())
        assert ddg.critical_path_nodes() == []
        assert ddg.critical_path_length == 0


class TestVerification:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_verify_levels_random_traces(self, seed):
        trace = random_trace(seed, 500)
        for config in (
            unit(),
            unit(rename_registers=False, rename_stack=False, rename_data=False),
            unit(window_size=16),
            AnalysisConfig(),  # Table 1 latencies
        ):
            ddg = build_ddg(trace, config)
            ddg.verify_levels()

    def test_verify_detects_corruption(self):
        ddg = build_ddg(serial_chain(5), unit())
        ddg.graph.nodes[3]["level"] = 0
        with pytest.raises(AssertionError):
            ddg.verify_levels()


class TestGuards:
    def test_resources_rejected(self):
        with pytest.raises(ValueError, match="resource"):
            build_ddg(serial_chain(3), unit(resources=ResourceModel(universal=1)))

    def test_branch_predictor_rejected(self):
        with pytest.raises(ValueError, match="branch"):
            build_ddg(serial_chain(3), unit(branch_predictor="taken"))

    def test_max_records_enforced(self):
        with pytest.raises(ValueError, match="max_records"):
            build_ddg(serial_chain(100), unit(), max_records=50)

    def test_to_result_fields(self):
        result = build_ddg(serial_chain(5), unit()).to_result()
        assert result.placed_operations == 5
        assert result.critical_path_length == 5
        assert result.profile.total_operations == 5
