"""Streaming analyzer placement semantics."""

import pytest

from repro.core.analyzer import analyze
from repro.core.config import CONSERVATIVE, OPTIMISTIC, AnalysisConfig
from repro.core.latency import LatencyTable
from repro.isa.opclasses import OpClass
from repro.trace.synthetic import TraceBuilder, serial_chain

DATA = 0x1000
STACK = (1 << 20) - 16


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestBasicPlacement:
    def test_no_dependency_lands_in_top_level(self):
        trace = TraceBuilder().ialu(1).ialu(2).build()
        result = analyze(trace, unit())
        assert result.profile.counts == {0: 2}

    def test_raw_dependency_orders_levels(self):
        trace = TraceBuilder().ialu(1).ialu(2, 1).ialu(3, 2).build()
        result = analyze(trace, unit())
        assert result.critical_path_length == 3

    def test_preexisting_source_does_not_delay(self):
        # A value read before ever being written is pre-existing: consumers
        # still land in the topologically highest level (paper Figure 5).
        trace = TraceBuilder().ialu(2, 1).build()
        result = analyze(trace, unit())
        assert result.profile.counts == {0: 1}

    def test_latency_spans_levels(self):
        trace = TraceBuilder().op(OpClass.IMUL, (1,), ()).op(
            OpClass.IALU, (2,), (1,)
        ).build()
        result = analyze(trace)  # default Table 1 latencies
        # imul completes at level 5 (6 levels: 0..5), the add at 6.
        assert result.profile.counts == {5: 1, 6: 1}
        assert result.critical_path_length == 7

    def test_max_over_sources(self):
        builder = TraceBuilder()
        builder.op(OpClass.IDIV, (1,), ())   # completes at 11
        builder.ialu(2)                      # completes at 0
        builder.ialu(3, 1, 2)                # max(11, 0) + 1 = 12
        result = analyze(builder.build())
        assert result.profile.counts[12] == 1

    def test_branches_not_placed(self):
        trace = TraceBuilder().ialu(1).branch(1).jump().build()
        result = analyze(trace, unit())
        assert result.placed_operations == 1
        assert result.branches == 1
        assert result.records_processed == 3

    def test_empty_trace(self):
        result = analyze(TraceBuilder().build(), unit())
        assert result.critical_path_length == 0
        assert result.available_parallelism == 0.0


class TestSyscalls:
    def trace(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.syscall()
        builder.ialu(3)
        return builder.build()

    def test_conservative_firewall_delays_later_work(self):
        result = analyze(self.trace(), unit(syscall_policy=CONSERVATIVE))
        # levels: op1@0, op2@1, syscall@2 (after deepest), op3@3
        assert result.profile.counts == {0: 1, 1: 1, 2: 1, 3: 1}
        assert result.firewalls == 1
        assert result.placed_operations == 4

    def test_optimistic_ignores_syscall(self):
        result = analyze(self.trace(), unit(syscall_policy=OPTIMISTIC))
        assert result.placed_operations == 3
        assert result.profile.counts == {0: 2, 1: 1}
        assert result.firewalls == 0

    def test_syscall_counted_in_both_policies(self):
        for policy in (CONSERVATIVE, OPTIMISTIC):
            assert analyze(self.trace(), unit(syscall_policy=policy)).syscalls == 1

    def test_syscall_result_value_enters_live_well(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.syscall()  # placed at 1 by firewall
        # emulate read_int writing v0 (location 2)
        builder.op(OpClass.SYSCALL, (2,), ())
        builder.ialu(3, 2)
        result = analyze(builder.build(), unit())
        # second syscall at level 2 creates v0; consumer at level 3
        assert result.profile.counts[3] == 1

    def test_firewall_respected_by_preexisting_values(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.syscall()
        builder.ialu(2, 9)  # 9 is first touched *after* the firewall
        result = analyze(builder.build(), unit())
        # syscall at 1, so the op reading a pre-existing value lands at 2.
        assert result.profile.counts[2] == 1


class TestStorageDependencies:
    def test_register_war_blocks_rewrite(self):
        builder = TraceBuilder()
        builder.ialu(1)        # v1 @ 0
        builder.ialu(2, 1)     # consumer @ 1
        builder.ialu(1)        # rewrite: WAR -> level 2 (not 0)
        result = analyze(builder.build(), unit(rename_registers=False))
        assert result.profile.counts == {0: 1, 1: 1, 2: 1}

    def test_renaming_removes_war(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2, 1)
        builder.ialu(1)
        result = analyze(builder.build(), unit())
        assert result.profile.counts == {0: 2, 1: 1}

    def test_unread_value_rewrite_unconstrained(self):
        # Paper semantics: Ddest is the deepest *consumer*; overwriting a
        # never-read value imposes no constraint.
        builder = TraceBuilder()
        builder.op(OpClass.IMUL, (1,), ())  # v1 @ 5, never read
        builder.ialu(1)                     # rewrite lands at 0
        result = analyze(builder.build(), AnalysisConfig(rename_registers=False))
        assert result.profile.counts == {5: 1, 0: 1}

    def test_memory_war_chains_stores(self):
        builder = TraceBuilder()
        for _ in range(5):
            builder.ialu(1)
            builder.store(1, DATA)
            builder.load(2, DATA)
        full = analyze(builder.build(), unit())
        kept = analyze(builder.build(), unit(rename_data=False))
        assert full.critical_path_length == 3
        assert kept.critical_path_length == 3 + 4 * 2

    def test_stack_and_data_switches_independent(self):
        builder = TraceBuilder()
        for _ in range(4):
            builder.ialu(1)
            builder.store(1, STACK)
            builder.load(2, STACK)
        trace = builder.build()
        stack_kept = analyze(trace, unit(rename_stack=False))
        data_kept = analyze(trace, unit(rename_data=False))
        assert stack_kept.critical_path_length > data_kept.critical_path_length
        assert data_kept.critical_path_length == 3

    def test_war_uses_deepest_consumer(self):
        builder = TraceBuilder()
        builder.ialu(1)                       # v @ 0
        builder.ialu(2, 1)                    # consumer @ 1
        builder.op(OpClass.IDIV, (3,), (1,))  # consumer @ 12
        builder.ialu(1)                       # rewrite at 13
        result = analyze(builder.build(), AnalysisConfig(rename_registers=False))
        assert 13 in result.profile.counts

    def test_same_location_read_and_written(self):
        # i = i + 1 chains are true dependencies, with or without renaming.
        for rename in (True, False):
            result = analyze(
                serial_chain(20), unit(rename_registers=rename)
            )
            assert result.critical_path_length == 20


class TestWindow:
    def test_window_one_serializes(self):
        from repro.trace.synthetic import independent_ops

        result = analyze(independent_ops(30), unit(window_size=1))
        assert result.critical_path_length == 30

    def test_window_bounds_level_width(self):
        from repro.trace.synthetic import independent_ops

        for window in (2, 5, 8):
            result = analyze(independent_ops(64), unit(window_size=window))
            assert result.profile.max_width <= window

    def test_window_larger_than_trace_equals_unwindowed(self):
        from repro.trace.synthetic import random_trace

        trace = random_trace(11, 300)
        windowed = analyze(trace, unit(window_size=10_000))
        unwindowed = analyze(trace, unit())
        assert windowed.critical_path_length == unwindowed.critical_path_length
        assert windowed.profile.counts == unwindowed.profile.counts

    def test_window_counts_all_trace_records(self):
        # Branches occupy window slots even though they are not placed.
        builder = TraceBuilder()
        builder.ialu(1)
        for _ in range(4):
            builder.branch(1)
        builder.ialu(2)  # the ialu at distance 5 in the trace
        monotone = analyze(builder.build(), unit(window_size=3))
        # op 0 was displaced before op 5 entered: firewall applies.
        assert monotone.profile.counts == {0: 1, 1: 1}

    def test_window_monotone_parallelism(self):
        from repro.trace.synthetic import random_trace

        trace = random_trace(13, 500)
        previous = 0.0
        for window in (1, 4, 16, 64, None):
            ap = analyze(trace, unit(window_size=window)).available_parallelism
            assert ap >= previous - 1e-9
            previous = ap


class TestBookkeeping:
    def test_peak_live_well_counts_locations(self):
        builder = TraceBuilder()
        builder.ialu(1)
        builder.ialu(2)
        builder.ialu(3, 1, 2)
        result = analyze(builder.build(), unit())
        assert result.peak_live_well == 3

    def test_config_echoed_in_result(self):
        config = unit(window_size=7)
        result = analyze(TraceBuilder().ialu(1).build(), config)
        assert result.config is config

    def test_profile_disabled(self):
        config = unit(collect_profile=False)
        result = analyze(serial_chain(10), config)
        assert result.profile is None
        assert result.critical_path_length == 10

    def test_rejects_bad_syscall_policy(self):
        with pytest.raises(ValueError):
            AnalysisConfig(syscall_policy="sometimes")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            AnalysisConfig(window_size=0)
