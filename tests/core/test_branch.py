"""Branch predictor models."""

from repro.core.analyzer import analyze
from repro.core.branch import (
    PREDICTOR_NAMES,
    BimodalPredictor,
    GSharePredictor,
    StaticPredictor,
    make_predictor,
)
from repro.core.config import AnalysisConfig
from repro.core.latency import LatencyTable
from repro.trace.synthetic import TraceBuilder

import pytest


class TestFactories:
    def test_all_names_construct(self):
        for name in PREDICTOR_NAMES:
            predictor = make_predictor(name)
            predictor.update(0, True)
            assert isinstance(predictor.predict(0), bool)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown branch predictor"):
            make_predictor("oracle")


class TestStatic:
    def test_taken_always_taken(self):
        predictor = StaticPredictor(True)
        predictor.update(1, False)
        assert predictor.predict(1) is True

    def test_not_taken(self):
        assert StaticPredictor(False).predict(5) is False


class TestBimodal:
    def test_learns_strongly_taken_branch(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(100, True)
        assert predictor.predict(100) is True

    def test_learns_not_taken(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(100, False)
        assert predictor.predict(100) is False

    def test_hysteresis_survives_single_flip(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(7, True)
        predictor.update(7, False)
        assert predictor.predict(7) is True

    def test_distinct_pcs_independent(self):
        predictor = BimodalPredictor()
        for _ in range(4):
            predictor.update(1, True)
            predictor.update(2, False)
        assert predictor.predict(1) is True
        assert predictor.predict(2) is False

    def test_saturating_counters_bounded(self):
        predictor = BimodalPredictor(bits=4)
        for _ in range(100):
            predictor.update(3, True)
        assert max(predictor._counters) <= 3
        for _ in range(100):
            predictor.update(3, False)
        assert min(predictor._counters) >= 0


class TestGShare:
    def test_learns_alternating_pattern(self):
        # T,N,T,N ... is hard for bimodal but trivial for gshare history.
        predictor = GSharePredictor(bits=8)
        outcome = True
        for _ in range(200):
            predictor.update(9, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(50):
            if predictor.predict(9) == outcome:
                hits += 1
            predictor.update(9, outcome)
            outcome = not outcome
        assert hits >= 45


class TestAnalyzerIntegration:
    def _trace(self, takens):
        builder = TraceBuilder()
        builder.ialu(1)
        for taken in takens:
            builder.branch(1, taken=taken, pc=5)
            builder.ialu(2)
        return builder.build()

    def test_perfect_prediction_no_firewalls(self):
        trace = self._trace([True, False] * 10)
        result = analyze(trace, AnalysisConfig(latency=LatencyTable.unit()))
        assert result.mispredictions == 0

    def test_static_taken_mispredicts_not_taken(self):
        trace = self._trace([True, False, False])
        config = AnalysisConfig(latency=LatencyTable.unit(), branch_predictor="taken")
        result = analyze(trace, config)
        assert result.mispredictions == 2

    def test_mispredictions_lower_parallelism(self):
        trace = self._trace([True, False] * 50)
        base = AnalysisConfig(latency=LatencyTable.unit())
        perfect = analyze(trace, base)
        mispredicted = analyze(trace, base.derive(branch_predictor="not-taken"))
        assert (
            mispredicted.available_parallelism <= perfect.available_parallelism
        )
        assert mispredicted.mispredictions == 50
