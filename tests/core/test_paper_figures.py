"""The paper's worked examples (Figures 1-4) as executable ground truth.

Register ids 1..7 stand in for the figures' r0..r6; A, B, C, D, S are data
segment words. All figure traces use unit operation latencies.
"""

from repro.core.analyzer import analyze
from repro.core.config import AnalysisConfig
from repro.core.ddg import build_ddg
from repro.core.latency import LatencyTable
from repro.core.resources import ResourceModel
from repro.trace.synthetic import TraceBuilder

DATA = 0x1000


def unit(**kwargs):
    return AnalysisConfig(latency=LatencyTable.unit(), **kwargs)


class TestFigure1:
    """True data dependencies only: critical path 4, profile 4/2/1/1."""

    def test_critical_path(self, figure1_trace, unit_config):
        result = analyze(figure1_trace, unit_config)
        assert result.critical_path_length == 4

    def test_profile(self, figure1_trace, unit_config):
        result = analyze(figure1_trace, unit_config)
        assert [result.profile.counts[i] for i in range(4)] == [4, 2, 1, 1]

    def test_all_eight_operations_placed(self, figure1_trace, unit_config):
        assert analyze(figure1_trace, unit_config).placed_operations == 8

    def test_available_parallelism(self, figure1_trace, unit_config):
        assert analyze(figure1_trace, unit_config).available_parallelism == 2.0

    def test_explicit_ddg_agrees(self, figure1_trace, unit_config):
        ddg = build_ddg(figure1_trace, unit_config)
        ddg.verify_levels()
        assert ddg.critical_path_length == 4
        assert ddg.levels() == [0, 0, 1, 0, 0, 1, 2, 3]


class TestFigure2:
    """Storage dependencies from r0/r1 reuse: critical path 6, profile
    2/1/2/1/1/1 (the paper's section 2.3 numbers)."""

    def config(self):
        return unit(rename_registers=False, rename_stack=False, rename_data=False)

    def test_critical_path(self, figure2_trace):
        assert analyze(figure2_trace, self.config()).critical_path_length == 6

    def test_profile(self, figure2_trace):
        result = analyze(figure2_trace, self.config())
        assert [result.profile.counts[i] for i in range(6)] == [2, 1, 2, 1, 1, 1]

    def test_renaming_recovers_figure1_shape(self, figure2_trace, unit_config):
        # With full renaming the same trace collapses back to CP 4.
        assert analyze(figure2_trace, unit_config).critical_path_length == 4

    def test_explicit_ddg_agrees(self, figure2_trace):
        ddg = build_ddg(figure2_trace, self.config())
        ddg.verify_levels()
        assert ddg.critical_path_length == 6
        war_edges = [
            (u, v) for u, v, k in ddg.graph.edges(data="kind") if k == "war"
        ]
        assert war_edges  # the storage dependencies exist as explicit edges


class TestFigure3:
    """Control dependency: a firewall after the unpredictable branch delays
    the later loads below the branch's resolution level."""

    def test_branch_misprediction_firewall(self):
        # load r0,A ; (read r1 modelled as a load) ; cmp ; mispredicted ble ;
        # r2 <- r0 - r1 ; store ; load r3,C ; load r4,D ; r5 <- r3 + r4
        builder = TraceBuilder()
        builder.load(1, DATA + 0)              # r0 := A           level 0
        builder.load(2, DATA + 1)              # r1 := input       level 0
        builder.ialu(3, 2)                     # cmp r1            level 1
        builder.branch(3, taken=True, pc=3)    # mispredicted ble
        builder.ialu(4, 1, 2)                  # r2 := r0 - r1
        builder.store(4, DATA + 8)             # store r2, S
        builder.load(5, DATA + 2)              # load r3, C
        builder.load(6, DATA + 3)              # load r4, D
        builder.ialu(7, 5, 6)                  # r5 := r3 + r4
        trace = builder.build()
        # Perfect prediction: C+D loads sit at level 0, CP set by the
        # dependent chain (cmp at 1, r2 at 2, store at 3 -> CP 4).
        perfect = analyze(trace, unit())
        assert perfect.profile.counts[0] == 4  # A, input, C, D loads together
        # "not-taken" static prediction mispredicts the taken branch: the
        # firewall delays everything after it below the branch resolution.
        mispredicted = analyze(trace, unit(branch_predictor="not-taken"))
        assert mispredicted.mispredictions == 1
        assert mispredicted.firewalls == 1
        assert mispredicted.profile.counts[0] == 2  # only A and input loads
        # The delayed C/D loads land below the branch resolution (level 2,
        # after the compare at level 1), as in the figure.
        assert mispredicted.profile.counts[2] >= 2
        assert (
            mispredicted.critical_path_length >= perfect.critical_path_length
        )


class TestFigure4:
    """Resource dependencies: two universal FUs allow at most two
    operations per level, stretching Figure 1's CP from 4 to 5."""

    def test_two_functional_units(self, figure1_trace):
        config = unit(resources=ResourceModel(universal=2))
        result = analyze(figure1_trace, config)
        assert result.profile.max_width <= 2
        # The figure's hand schedule reaches CP 5; greedy first-fit in trace
        # order (load A, load B, r4, load C, ...) places r4 before load C
        # and ends at 6. Both respect the 2-ops-per-level constraint.
        assert result.critical_path_length == 6

    def test_single_functional_unit_serializes(self, figure1_trace):
        config = unit(resources=ResourceModel(universal=1))
        result = analyze(figure1_trace, config)
        assert result.critical_path_length == 8
        assert result.profile.max_width == 1

    def test_unlimited_recovers_figure1(self, figure1_trace):
        config = unit(resources=ResourceModel())
        assert analyze(figure1_trace, config).critical_path_length == 4
